"""AST node definitions for the SQL frontend.

Nodes are plain frozen dataclasses.  Expression nodes share the
:class:`Expr` base; statement nodes share :class:`Statement`.  The planner
(:mod:`repro.engine.planner`) consumes these, and the printer
(:mod:`repro.sql.printer`) renders them back to SQL — which is how QFusor's
query rewriting emits its fused queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..types import SqlType

__all__ = [
    "Expr", "Literal", "ColumnRef", "Star", "PositionRef", "BinaryOp", "UnaryOp",
    "FunctionCall", "CaseExpr", "Between", "InList", "IsNull", "Cast",
    "SelectItem", "TableRef", "SubqueryRef", "TableFunctionRef", "Join",
    "OrderItem", "Select", "SetOp", "Insert", "Update", "Delete",
    "CreateTableAs", "DropTable", "Explain", "Statement", "FromItem",
    "walk_expr", "rewrite_children",
]


class Node:
    """Base for all AST nodes."""


class Expr(Node):
    """Base for expression nodes."""


class Statement(Node):
    """Base for statement nodes."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: number, string, boolean, or NULL."""

    value: Any

    @property
    def sql_type(self) -> Optional[SqlType]:
        from ..types import sql_type_of_value

        return sql_type_of_value(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``table.*`` in a select list."""

    table: Optional[str] = None


@dataclass(frozen=True)
class PositionRef(Expr):
    """Internal-only: a positional input-column reference.

    Never produced by the parser; the planner uses it where name-based
    resolution would be ambiguous (e.g. re-projecting a sort result whose
    select list contains duplicate output names).
    """

    index: int


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: arithmetic, comparison, logical, LIKE, ``||``."""

    op: str  # one of + - * / % = != < <= > >= AND OR LIKE ||
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: NOT or numeric negation."""

    op: str  # NOT or -
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A function call — builtin scalar/aggregate or a registered UDF.

    Resolution of what the name refers to (builtin vs scalar/aggregate/
    table UDF) happens at planning time against the function registry.
    """

    name: str
    args: Tuple[Expr, ...] = ()
    distinct: bool = False

    @property
    def lowered_name(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    whens: Tuple[Tuple[Expr, Expr], ...]
    operand: Optional[Expr] = None
    else_result: Optional[Expr] = None


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    expr: Expr
    low: Expr
    high: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (item, ...)``."""

    expr: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    expr: Expr
    negated: bool = False


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    expr: Expr
    target: SqlType


# ----------------------------------------------------------------------
# Query structure
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    """One select-list entry: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


class FromItem(Node):
    """Base for FROM clause items."""


@dataclass(frozen=True)
class TableRef(FromItem):
    """A base table (or CTE) reference with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(FromItem):
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "Select"
    alias: str


@dataclass(frozen=True)
class TableFunctionRef(FromItem):
    """A table UDF in FROM: ``tudf(args...) AS alias``.

    Arguments may include scalar expressions or nested subqueries (passed
    as :class:`SubqueryRef`-wrapped selects in ``subquery_args``).
    """

    call: FunctionCall
    alias: str
    subquery_args: Tuple["Select", ...] = ()


@dataclass(frozen=True)
class Join(FromItem):
    """An explicit join between two FROM items."""

    kind: str  # INNER | LEFT | CROSS
    left: FromItem
    right: FromItem
    condition: Optional[Expr] = None


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select(Statement):
    """A SELECT statement (possibly with CTEs and set operations)."""

    items: Tuple[SelectItem, ...]
    from_items: Tuple[FromItem, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False
    ctes: Tuple[Tuple[str, "Select"], ...] = ()
    set_op: Optional["SetOp"] = None


@dataclass(frozen=True)
class SetOp(Node):
    """A set operation chained onto a SELECT."""

    op: str  # UNION | UNION ALL | INTERSECT | EXCEPT
    right: Select


# ----------------------------------------------------------------------
# DML / DDL
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Insert(Statement):
    """``INSERT INTO table [(cols)] VALUES ... | SELECT ...``."""

    table: str
    columns: Tuple[str, ...] = ()
    values: Tuple[Tuple[Expr, ...], ...] = ()
    query: Optional[Select] = None


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE table SET col = expr, ... [WHERE ...]``."""

    table: str
    assignments: Tuple[Tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateTableAs(Statement):
    """``CREATE [TEMP] TABLE name AS SELECT ...``."""

    name: str
    query: Select
    temporary: bool = False


@dataclass(frozen=True)
class DropTable(Statement):
    """``DROP TABLE [IF EXISTS] name``."""

    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN stmt`` — returns the plan instead of executing."""

    statement: Statement


# ----------------------------------------------------------------------
# Traversal
# ----------------------------------------------------------------------


def rewrite_children(expr: Expr, fn) -> Expr:
    """Rebuild ``expr`` with ``fn`` applied to each child expression.

    Leaves (literals, column refs, stars) are returned unchanged; ``fn``
    itself decides whether to recurse further.
    """
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, fn(expr.left), fn(expr.right))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, fn(expr.operand))
    if isinstance(expr, FunctionCall):
        return FunctionCall(expr.name, tuple(fn(a) for a in expr.args), expr.distinct)
    if isinstance(expr, CaseExpr):
        return CaseExpr(
            tuple((fn(c), fn(r)) for c, r in expr.whens),
            fn(expr.operand) if expr.operand is not None else None,
            fn(expr.else_result) if expr.else_result is not None else None,
        )
    if isinstance(expr, Between):
        return Between(fn(expr.expr), fn(expr.low), fn(expr.high), expr.negated)
    if isinstance(expr, InList):
        return InList(fn(expr.expr), tuple(fn(i) for i in expr.items), expr.negated)
    if isinstance(expr, IsNull):
        return IsNull(fn(expr.expr), expr.negated)
    if isinstance(expr, Cast):
        return Cast(fn(expr.expr), expr.target)
    return expr


def walk_expr(expr: Optional[Expr]):
    """Yield ``expr`` and every sub-expression, pre-order."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, BinaryOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, FunctionCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, CaseExpr):
        if expr.operand is not None:
            yield from walk_expr(expr.operand)
        for cond, result in expr.whens:
            yield from walk_expr(cond)
            yield from walk_expr(result)
        if expr.else_result is not None:
            yield from walk_expr(expr.else_result)
    elif isinstance(expr, Between):
        yield from walk_expr(expr.expr)
        yield from walk_expr(expr.low)
        yield from walk_expr(expr.high)
    elif isinstance(expr, InList):
        yield from walk_expr(expr.expr)
        for item in expr.items:
            yield from walk_expr(item)
    elif isinstance(expr, IsNull):
        yield from walk_expr(expr.expr)
    elif isinstance(expr, Cast):
        yield from walk_expr(expr.expr)
