"""The two UDO-paper pipelines (Q17, Q18) on synthetic data.

These deliberately contain *no fusion opportunities* (a single UDF
each), so — as in the paper's section 6.3.4 — the comparison isolates
QFusor's JIT-compiled execution against UDO's out-of-the-box operator
execution (modelled by :mod:`repro.baselines.udo_like`).
"""

from __future__ import annotations

from typing import List

from ..errors import UdfRegistrationError
from ..storage import serde
from ..storage.table import Table
from ..types import SqlType
from ..udf import scalar_udf, table_udf
from . import datagen
from .datagen import scale_rows

__all__ = ["ALL_UDFS", "QUERIES", "build_tables", "setup"]


@table_udf(output=("value",), types=(int,), deterministic=True)
def split_values(inp_datagen):
    """Q17's operator: split each JSON integer array into rows."""
    for (values,) in inp_datagen:
        if values is None:
            continue
        for value in values:
            yield (value,)


@scalar_udf(deterministic=True)
def contains_database(text: str) -> bool:
    """Q18's operator: does the text mention 'database'?"""
    return "database" in text.lower()


ALL_UDFS = [split_values, contains_database]


def build_events(rows: int, seed: int = 53) -> Table:
    r = datagen.rng(seed)
    ids, arrays = [], []
    for i in range(rows):
        ids.append(i)
        arrays.append(
            serde.serialize([r.randint(0, 1000) for _ in range(r.randint(1, 8))])
        )
    return Table.from_dict(
        "events",
        {"id": (SqlType.INT, ids), "vals": (SqlType.JSON, arrays)},
    )


def build_docs(rows: int, seed: int = 59) -> Table:
    r = datagen.rng(seed)
    ids, texts = [], []
    for i in range(rows):
        ids.append(i)
        texts.append(datagen.sentence(r, r.randint(10, 25)))
    return Table.from_dict(
        "docs",
        {"id": (SqlType.INT, ids), "text": (SqlType.TEXT, texts)},
    )


def build_tables(scale="small", seed: int = 53) -> List[Table]:
    rows = scale_rows(scale)
    return [build_events(rows, seed), build_docs(rows, seed + 2)]


def setup(adapter, scale="small", seed: int = 53) -> None:
    for table in build_tables(scale, seed):
        adapter.register_table(table, replace=True)
    for udf in ALL_UDFS:
        try:
            adapter.register_udf(udf, replace=True)
        except UdfRegistrationError:
            # Engines without table-UDF support (stdlib sqlite) skip those;
            # anything else — including governance interrupts — propagates.
            pass


Q17 = "SELECT value FROM split_values((SELECT vals FROM events)) AS s"

Q18 = "SELECT id FROM docs WHERE contains_database(text) = TRUE"

QUERIES = {"Q17": Q17.strip(), "Q18": Q18.strip()}
