"""Benchmark workloads: synthetic stand-ins for the paper's datasets.

* :mod:`repro.workloads.udfbench` — UDFBench-like publication/funding
  data with the paper's cleansing UDF library (queries Q1-Q10);
* :mod:`repro.workloads.zillow` — the string-heavy Zillow listing
  pipeline (Q11-Q14);
* :mod:`repro.workloads.weld_wl` — the two Weld-paper queries (Q15, Q16);
* :mod:`repro.workloads.udo_wl` — the two UDO-paper pipelines (Q17, Q18).

All generators are deterministic under a seed, so benchmark runs and
correctness tests see identical data.
"""

from .datagen import SCALES, scale_rows
from . import datagen, udfbench, zillow, weld_wl, udo_wl

__all__ = [
    "datagen", "udfbench", "zillow", "weld_wl", "udo_wl", "SCALES",
    "scale_rows",
]
