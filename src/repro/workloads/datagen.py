"""Deterministic synthetic data primitives shared by all workloads."""

from __future__ import annotations

import random
import string
from typing import List, Optional, Sequence

__all__ = [
    "rng", "person_name", "messy_date", "words", "sentence", "SCALES",
    "scale_rows",
    "FIRST_NAMES", "LAST_NAMES", "FUNDERS", "CLASSES", "VENUES", "CITIES",
]

#: Row counts per named scale; tuned so the full benchmark suite runs in
#: minutes on a laptop while preserving the paper's relative effects.
SCALES = {
    "tiny": 500,
    "small": 2_000,
    "medium": 8_000,
    "large": 20_000,
}


def scale_rows(scale) -> int:
    """Resolve a scale name (or an explicit row count) to a row count."""
    if isinstance(scale, int):
        return scale
    return SCALES[scale]

FIRST_NAMES = [
    "Maria", "Yannis", "Konstantinos", "Alkis", "Theoni", "Nikos", "Eleni",
    "Giorgos", "Anna", "Petros", "Sofia", "Dimitris", "Katerina", "Christos",
    "Ioanna", "Vasilis", "Zoe", "Andreas", "Despina", "Michalis", "li", "Al",
]

LAST_NAMES = [
    "Papadopoulos", "Ioannidis", "Simitsis", "Foufoulas", "Chasialis",
    "Georgiou", "Nikolaou", "Economou", "Vlachos", "Karagiannis",
    "Makris", "Alexiou", "Pappas", "Stamatogiannakis", "Palaiologou", "Wu",
]

FUNDERS = ["EC", "NSF", "NIH", "ERC", "DFG", "EPSRC", "GSRT"]
CLASSES = ["H2020", "HorizonEurope", "FP7", "CAREER", "R01", "StG", "AdG"]
VENUES = [
    "EDBT", "VLDB", "SIGMOD", "ICDE", "CIDR", "TKDE", "PVLDB", "DaWaK",
    "SSDBM", "arXiv", "Zenodo", "PubMed Central",
]
CITIES = [
    "Athens", "Tampere", "Berlin", "Paris", "Lisbon", "Vienna", "Zurich",
    "Amsterdam", "Prague", "Madrid", "Helsinki", "Dublin",
]

_DATE_FORMATS = [
    "{y:04d}-{m:02d}-{d:02d}",
    "{y:04d}/{m:02d}/{d:02d}",
    "{d:02d}-{m:02d}-{y:04d}",
    "{d:02d}/{m:02d}/{y:04d}",
    "{y:04d}{m:02d}{d:02d}",
    "{y:04d}-{m}-{d}",
    " {y:04d}-{m:02d}-{d:02d} ",
]


def rng(seed: int) -> random.Random:
    """A fresh deterministic generator."""
    return random.Random(seed)


def person_name(r: random.Random) -> str:
    """A mixed-case author name (workloads lower/normalize these)."""
    first = r.choice(FIRST_NAMES)
    last = r.choice(LAST_NAMES)
    if r.random() < 0.25:
        first = first.upper()
    if r.random() < 0.15:
        last = last.lower()
    return f"{first} {last}"


def messy_date(
    r: random.Random, year_lo: int = 2008, year_hi: int = 2023
) -> str:
    """A date rendered in one of several inconsistent formats — the input
    the ``cleandate`` UDF standardizes."""
    y = r.randint(year_lo, year_hi)
    m = r.randint(1, 12)
    d = r.randint(1, 28)
    return r.choice(_DATE_FORMATS).format(y=y, m=m, d=d)


def words(r: random.Random, count: int, pool: Optional[Sequence[str]] = None) -> List[str]:
    pool = pool or _WORD_POOL
    return [r.choice(pool) for _ in range(count)]


def sentence(r: random.Random, length: int = 12) -> str:
    return " ".join(words(r, length))


_WORD_POOL = [
    "data", "query", "fusion", "udf", "engine", "jit", "trace", "loop",
    "operator", "scan", "join", "filter", "aggregate", "of", "in", "the",
    "an", "to", "vectorized", "columnar", "pipeline", "optimizer",
    "compile", "python", "sql", "database", "analysis", "benchmark",
    "at", "is", "on", "speedup", "overhead", "wrapper", "boundary",
]
