"""Zillow-like workload: the string-heavy listing pipeline (Q11-Q14).

Synthetic stand-in for the Zillow dataset from Tuplex's repository,
"enhanced with aggregations and group-bys" as in the paper.  Every
interesting column is a dirty string ("3 bds", "$450,000", "1,250 sqft"),
so the pipeline is dominated by Python string processing — the regime
where the paper's Figure 4 (middle) shows QFusor's largest wins.
"""

from __future__ import annotations

import re
from typing import List

from ..storage.table import Table
from ..types import SqlType
from ..udf import scalar_udf
from . import datagen
from .datagen import scale_rows

__all__ = ["ALL_UDFS", "QUERIES", "build_tables", "setup"]


# ----------------------------------------------------------------------
# UDFs (the extractBd/extractBa/extractSqft/extractPrice family)
# ----------------------------------------------------------------------


_DIGITS = re.compile(r"(\d+)")


@scalar_udf(deterministic=True)
def extract_bd(val: str) -> int:
    """'3 bds' -> 3."""
    m = _DIGITS.search(val)
    return int(m.group(1)) if m else 0


@scalar_udf(deterministic=True)
def extract_ba(val: str) -> float:
    """'2.5 ba' -> 2.5."""
    m = re.search(r"(\d+(?:\.\d+)?)", val)
    return float(m.group(1)) if m else 0.0


@scalar_udf(deterministic=True)
def extract_sqft(val: str) -> int:
    """'1,250 sqft' -> 1250."""
    m = _DIGITS.search(val.replace(",", ""))
    return int(m.group(1)) if m else 0


@scalar_udf(deterministic=True)
def extract_price(val: str) -> int:
    """'$450,000' -> 450000."""
    m = _DIGITS.search(val.replace(",", "").replace("$", ""))
    return int(m.group(1)) if m else 0


@scalar_udf(deterministic=True)
def extract_offer(val: str) -> str:
    """'House For Sale' -> 'sale' (offer kind from the type string)."""
    s = val.lower()
    if "sale" in s:
        return "sale"
    if "rent" in s:
        return "rent"
    if "sold" in s:
        return "sold"
    return "other"


@scalar_udf(deterministic=True)
def extract_type(val: str) -> str:
    """'House For Sale' -> 'house'."""
    s = val.lower()
    if "house" in s:
        return "house"
    if "condo" in s:
        return "condo"
    if "apartment" in s:
        return "apartment"
    return "other"


@scalar_udf(deterministic=True)
def clean_city(val: str) -> str:
    return val.strip().title()


@scalar_udf(deterministic=True)
def lower(val: str) -> str:
    return val.lower()


@scalar_udf(deterministic=True)
def strip_params(url: str) -> str:
    """Drop the query string of a URL."""
    cut = url.find("?")
    return url if cut < 0 else url[:cut]


@scalar_udf(deterministic=True)
def url_depth(url: str) -> int:
    """Number of path segments in a URL."""
    path = url.split("://", 1)[-1]
    return sum(1 for part in path.split("/")[1:] if part)


@scalar_udf(deterministic=True)
def extract_domain(url: str) -> str:
    return url.split("://", 1)[-1].split("/", 1)[0]


ALL_UDFS = [
    extract_bd, extract_ba, extract_sqft, extract_price, extract_offer,
    extract_type, clean_city, lower, strip_params, url_depth, extract_domain,
]


# ----------------------------------------------------------------------
# Data
# ----------------------------------------------------------------------

_TYPES = [
    "House For Sale", "Condo for sale", "Apartment For Rent",
    "HOUSE FOR RENT", "House Sold", "Townhouse for sale",
]


def build_listings(rows: int, seed: int = 29) -> Table:
    r = datagen.rng(seed)
    urls, addresses, cities, beds, baths = [], [], [], [], []
    sqfts, prices, types, years = [], [], [], []
    for i in range(rows):
        city = r.choice(datagen.CITIES)
        street = r.choice(["Main", "Oak", "Elm", "Lake", "Hill", "Park"])
        urls.append(
            f"https://www.zillow.com/homedetails/{city.lower()}/"
            f"{street.lower()}-st-{i}/?rid={r.randint(1000, 9999)}"
            f"&src={r.choice(['search', 'email', 'ad'])}"
        )
        addresses.append(f"{r.randint(1, 999)} {street} St, {city}")
        cities.append(r.choice([city, city.lower(), city.upper(), f" {city} "]))
        beds.append(f"{r.randint(1, 7)} bds")
        baths.append(f"{r.choice([1, 1.5, 2, 2.5, 3, 3.5])} ba")
        sqfts.append(f"{r.randint(400, 6000):,} sqft")
        prices.append(f"${r.randint(80, 1500) * 1000:,}")
        types.append(r.choice(_TYPES))
        years.append(r.randint(1950, 2023))
    return Table.from_dict(
        "listings",
        {
            "url": (SqlType.TEXT, urls),
            "address": (SqlType.TEXT, addresses),
            "city": (SqlType.TEXT, cities),
            "bedrooms": (SqlType.TEXT, beds),
            "bathrooms": (SqlType.TEXT, baths),
            "sqft": (SqlType.TEXT, sqfts),
            "price": (SqlType.TEXT, prices),
            "type": (SqlType.TEXT, types),
            "year": (SqlType.INT, years),
        },
    )


def build_tables(scale="small", seed: int = 29) -> List[Table]:
    return [build_listings(scale_rows(scale), seed)]


def setup(adapter, scale="small", seed: int = 29) -> None:
    for table in build_tables(scale, seed):
        adapter.register_table(table, replace=True)
    for udf in ALL_UDFS:
        adapter.register_udf(udf, replace=True)


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------

# The Tuplex Zillow pipeline, enhanced with aggregation and group-by.
Q11 = """
SELECT clean_city(city) AS c,
       count(*) AS n,
       sum(extract_price(price)) AS total_price,
       avg(extract_sqft(sqft)) AS avg_sqft
FROM listings
WHERE extract_type(type) = 'house'
  AND extract_offer(type) = 'sale'
  AND extract_bd(bedrooms) BETWEEN 1 AND 6
  AND extract_price(price) < 900000
GROUP BY c
ORDER BY n DESC
"""

# Three chained UDFs on the url column (the pluggability test, Figure 8).
Q12 = "SELECT url_depth(strip_params(lower(url))) AS d FROM listings"

# A short query (compilation-latency test, Figure 6d / section 6.4.5).
Q13 = """
SELECT extract_bd(bedrooms) AS bd FROM listings
WHERE extract_bd(bedrooms) >= 3
"""

# A complex query for the same test.
Q14 = """
SELECT extract_type(type) AS t,
       count(*) AS n,
       sum(CASE WHEN extract_price(price) > 500000 THEN 1 ELSE 0 END)
           AS expensive,
       avg(extract_ba(bathrooms)) AS avg_ba,
       max(extract_sqft(sqft)) AS max_sqft
FROM listings
WHERE extract_offer(type) != 'sold'
  AND extract_bd(bedrooms) BETWEEN 1 AND 6
GROUP BY t
ORDER BY n DESC
"""

QUERIES = {
    "Q11": Q11.strip(),
    "Q12": Q12.strip(),
    "Q13": Q13.strip(),
    "Q14": Q14.strip(),
}
