"""The UDFBench-style UDF library (the paper's cleansing functions).

Naming follows the paper's running example (Figure 1); one deviation:
the paper overloads ``lower`` for both plain strings and JSON author
lists — SQL functions here are not overloaded, so the list variant is
``jlower`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import itertools
import re

from ...udf import aggregate_udf, scalar_udf, table_udf

__all__ = ["ALL_UDFS"]


# ----------------------------------------------------------------------
# Scalar UDFs — strings
# ----------------------------------------------------------------------


@scalar_udf(deterministic=True)
def lower(val: str) -> str:
    return val.lower()


_WS = re.compile(r"\s+")


@scalar_udf(deterministic=True)
def normalize(val: str) -> str:
    """Collapse runs of whitespace and trim."""
    return _WS.sub(" ", val).strip()


_SHORT = re.compile(r"\b\w{1,2}\b")


@scalar_udf(deterministic=True)
def removeshortterms_text(val: str) -> str:
    """Drop 1-2 character tokens from a plain string (regex based)."""
    return _WS.sub(" ", _SHORT.sub("", val)).strip()


_DMY = re.compile(r"^(\d{1,2})[-/](\d{1,2})[-/](\d{4})$")
_YMD = re.compile(r"^(\d{4})[-/]?(\d{1,2})[-/]?(\d{1,2})$")


@scalar_udf(deterministic=True)
def cleandate(val: str) -> str:
    """Standardize a messy date string to ISO ``YYYY-MM-DD``."""
    s = val.strip()
    m = _DMY.match(s)
    if m:
        d, month, y = m.groups()
        return f"{y}-{int(month):02d}-{int(d):02d}"
    m = _YMD.match(s)
    if m:
        y, month, d = m.groups()
        return f"{int(y):04d}-{int(month):02d}-{int(d):02d}"
    return s


@scalar_udf(deterministic=True)
def extractmonth(val: str) -> int:
    """Month number from a (possibly messy) date string."""
    s = val.strip()
    m = _DMY.match(s)
    if m:
        return int(m.group(2))
    m = _YMD.match(s)
    if m:
        return int(m.group(2))
    return 0


@scalar_udf(deterministic=True)
def extractyear(val: str) -> int:
    s = val.strip()
    m = _DMY.match(s)
    if m:
        return int(m.group(3))
    m = _YMD.match(s)
    if m:
        return int(m.group(1))
    return 0


# ----------------------------------------------------------------------
# Scalar UDFs — JSON author lists and project records
# ----------------------------------------------------------------------


@scalar_udf(deterministic=True)
def jlower(values: list) -> list:
    """Lower-case every author name in a JSON list."""
    return [v.lower() for v in values]


@scalar_udf(deterministic=True)
def removeshortterms(values: list) -> list:
    """Remove 1-2 character tokens from every name in a JSON list."""
    return [_WS.sub(" ", _SHORT.sub("", v)).strip() for v in values]


@scalar_udf(deterministic=True)
def jsortvalues(values: list) -> list:
    """Sort the tokens *within* each element of a JSON list."""
    return [" ".join(sorted(v.split())) for v in values]


@scalar_udf(deterministic=True)
def jsort(values: list) -> list:
    """Sort a JSON list."""
    return sorted(values)


@scalar_udf(deterministic=True)
def extractid(project: dict) -> str:
    return project.get("id")


@scalar_udf(deterministic=True)
def extractfunder(project: dict) -> str:
    return project.get("funder")


@scalar_udf(deterministic=True)
def extractclass(project: dict) -> str:
    return project.get("class")


# ----------------------------------------------------------------------
# Complex-type round trips (Q10)
# ----------------------------------------------------------------------


@scalar_udf(deterministic=True)
def jpack(text: str) -> list:
    """Tokenize a string into a JSON array (serialized by the wrapper)."""
    return text.split()


@scalar_udf(deterministic=True)
def jsoncount(values: list) -> int:
    """Count elements of a JSON array (deserialized by the wrapper)."""
    return len(values)


# ----------------------------------------------------------------------
# Aggregate UDFs
# ----------------------------------------------------------------------


@aggregate_udf(deterministic=True)
class countvals:
    """Count non-NULL inputs (init-step-final)."""

    def __init__(self):
        self.count = 0

    def step(self, value: str):
        self.count += 1

    def final(self) -> int:
        return self.count


@aggregate_udf(deterministic=True)
class countauthors:
    """Total number of author names across JSON lists."""

    def __init__(self):
        self.count = 0

    def step(self, values: list):
        self.count += len(values)

    def final(self) -> int:
        return self.count


@aggregate_udf(deterministic=True)
class avglen:
    """Average string length."""

    def __init__(self):
        self.total = 0
        self.count = 0

    def step(self, value: str):
        self.total += len(value)
        self.count += 1

    def final(self) -> float:
        return self.total / self.count if self.count else 0.0


@aggregate_udf(materializes_input=True, deterministic=True)
class medianlen:
    """Median string length — a *blocking* aggregate (materializes its
    input), so loop fusion does not apply (Table 2)."""

    def __init__(self):
        self.lengths = []

    def step(self, value: str):
        self.lengths.append(len(value))

    def final(self) -> float:
        if not self.lengths:
            return 0.0
        ordered = sorted(self.lengths)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2.0


# ----------------------------------------------------------------------
# Table UDFs
# ----------------------------------------------------------------------


@table_udf(output=("authorpair",), types=(str,), deterministic=True)
def combinations(inp_datagen, k: int):
    """All k-combinations of a JSON list, one row per combination.

    The paper's author-pair generator: consumes one author list per input
    row (expand-style) and yields ``'a | b'`` pair strings.
    """
    for (values,) in inp_datagen:
        if values is None:
            continue
        for combo in itertools.combinations(values, k):
            yield (" | ".join(combo),)


@table_udf(output=("token",), types=(str,), deterministic=True)
def tokens(inp_datagen):
    """Split each input string into one row per token."""
    for (text,) in inp_datagen:
        if text is None:
            continue
        for token in text.split():
            yield (token,)


@table_udf(output=("year", "month", "day"), types=(int, int, int), deterministic=True)
def splitdate(inp_datagen):
    """Split a clean ISO date into numeric components (3-column output)."""
    for (text,) in inp_datagen:
        if text is None:
            continue
        parts = text.split("-")
        if len(parts) == 3:
            yield (int(parts[0]), int(parts[1]), int(parts[2]))


#: Everything a benchmark needs to register, in one list.
ALL_UDFS = [
    lower, normalize, removeshortterms_text, cleandate, extractmonth,
    extractyear, jlower, removeshortterms, jsortvalues, jsort, extractid,
    extractfunder, extractclass, jpack, jsoncount, countvals, countauthors,
    avglen, medianlen, combinations, tokens, splitdate,
]
