"""UDFBench-like workload: publication/funding analytics (queries Q1-Q10).

Synthetic stand-in for the UDFBench datasets the paper evaluates on:
publications with JSON author lists, messy dates, and embedded project
funding records, plus an ``artifacts`` table used by the UDF-type fusion
micro-queries (Q4-Q7).
"""

from . import data, udfs, queries
from .data import build_tables, setup
from .queries import QUERIES, q8_selectivity

__all__ = [
    "data", "udfs", "queries", "build_tables", "setup", "QUERIES",
    "q8_selectivity",
]
