"""Synthetic UDFBench-like tables.

``pubs`` carries publication records with JSON author lists, messy date
strings, and an embedded project-funding JSON record (pre-joined, as the
paper's running example assumes); ``projects`` the funding registry; and
``artifacts`` a generic table for the UDF-type micro-queries Q4-Q7.
"""

from __future__ import annotations

from typing import List

from ...errors import UdfRegistrationError
from ...storage import serde
from ...storage.table import Table
from ...types import SqlType
from .. import datagen
from ..datagen import scale_rows

__all__ = ["build_tables", "setup"]


def build_pubs(rows: int, seed: int = 11) -> Table:
    r = datagen.rng(seed)
    pubids, titles, authors, pubdates = [], [], [], []
    projects, starts, ends, venues, abstracts = [], [], [], [], []
    for i in range(rows):
        pubids.append(i)
        titles.append(datagen.sentence(r, r.randint(4, 9)).title())
        author_list = [
            datagen.person_name(r) for _ in range(r.randint(2, 4))
        ]
        authors.append(serde.serialize(author_list))
        pubdates.append(datagen.messy_date(r))
        if r.random() < 0.75:
            project = {
                "id": f"P{r.randint(1, max(rows // 50, 5)):05d}",
                "funder": r.choice(datagen.FUNDERS),
                "class": r.choice(datagen.CLASSES),
            }
        else:
            project = {"id": None, "funder": None, "class": None}
        projects.append(serde.serialize(project))
        start_year = r.randint(2010, 2018)
        starts.append(f"{start_year:04d}-01-01")
        ends.append(f"{start_year + r.randint(2, 4):04d}-12-31")
        venues.append(r.choice(datagen.VENUES))
        abstracts.append(datagen.sentence(r, r.randint(15, 30)))
    return Table.from_dict(
        "pubs",
        {
            "pubid": (SqlType.INT, pubids),
            "title": (SqlType.TEXT, titles),
            "authors": (SqlType.JSON, authors),
            "pubdate": (SqlType.TEXT, pubdates),
            "project": (SqlType.JSON, projects),
            "projectstart": (SqlType.TEXT, starts),
            "projectend": (SqlType.TEXT, ends),
            "venue": (SqlType.TEXT, venues),
            "abstract": (SqlType.TEXT, abstracts),
        },
    )


def build_projects(rows: int, seed: int = 13) -> Table:
    r = datagen.rng(seed)
    count = max(rows // 50, 5)
    ids = [f"P{i + 1:05d}" for i in range(count)]
    funders = [r.choice(datagen.FUNDERS) for _ in range(count)]
    classes = [r.choice(datagen.CLASSES) for _ in range(count)]
    starts, ends = [], []
    for _ in range(count):
        start_year = r.randint(2010, 2018)
        starts.append(f"{start_year:04d}-01-01")
        ends.append(f"{start_year + r.randint(2, 4):04d}-12-31")
    return Table.from_dict(
        "projects",
        {
            "projectid": (SqlType.TEXT, ids),
            "funder": (SqlType.TEXT, funders),
            "class": (SqlType.TEXT, classes),
            "projectstart": (SqlType.TEXT, starts),
            "projectend": (SqlType.TEXT, ends),
        },
    )


def build_artifacts(rows: int, seed: int = 17) -> Table:
    r = datagen.rng(seed)
    aids, names, tags, payloads, scores, groups = [], [], [], [], [], []
    for i in range(rows):
        aids.append(i)
        names.append(datagen.sentence(r, 3).title())
        tags.append(serde.serialize(datagen.words(r, r.randint(2, 5))))
        payloads.append(datagen.sentence(r, r.randint(8, 16)))
        scores.append(round(r.random() * 100, 3))
        groups.append(f"g{r.randint(0, 9)}")
    return Table.from_dict(
        "artifacts",
        {
            "aid": (SqlType.INT, aids),
            "name": (SqlType.TEXT, names),
            "tags": (SqlType.JSON, tags),
            "payload": (SqlType.TEXT, payloads),
            "score": (SqlType.FLOAT, scores),
            "grp": (SqlType.TEXT, groups),
        },
    )


def build_tables(scale="small", seed: int = 11) -> List[Table]:
    """All udfbench tables at the given scale."""
    rows = scale_rows(scale)
    return [
        build_pubs(rows, seed),
        build_projects(rows, seed + 2),
        build_artifacts(rows, seed + 4),
    ]


def setup(adapter, scale="small", seed: int = 11) -> None:
    """Register the udfbench tables and UDF library on an adapter."""
    from .udfs import ALL_UDFS

    for table in build_tables(scale, seed):
        adapter.register_table(table, replace=True)
    for udf in ALL_UDFS:
        try:
            adapter.register_udf(udf, replace=True)
        except UdfRegistrationError:
            # Engines without table-UDF support (stdlib sqlite) skip those;
            # anything else — including governance interrupts — propagates.
            pass
