"""The udfbench query suite (paper queries Q1-Q10).

* Q1 — QC-1: three independent scalar UDFs, no beneficial fusion
  opportunity (JIT-only gains).
* Q2 — QC-2: complex relational logic (join, LIKE, group-by, order-by)
  blended with scalar UDFs.
* Q3 — QC-3: the paper's running example (Figure 1): the author-pair
  collaboration analysis with JSON cleansing, a table-UDF expansion, a
  self-join, and UDF-heavy conditional aggregation.
* Q4-Q7 — UDF-type fusion pairs (Figure 6e): scalar-scalar,
  scalar-aggregate, scalar-table, table-aggregate.
* Q8 — the operator-offloading selectivity sweep (Figure 6b).
* Q9/Q10 — the physical-optimization queries (Figure 6c): lightweight
  UDFs over a large table, and complex-type (de-)serialization.
"""

from __future__ import annotations

__all__ = ["QUERIES", "q8_selectivity"]

Q1 = """
SELECT cleandate(pubdate) AS cd,
       lower(venue) AS lv,
       extractmonth(pubdate) AS em
FROM pubs
"""

Q2 = """
SELECT pr.funder, count(*) AS n,
       sum(CASE WHEN cleandate(p.pubdate) >= '2015-01-01'
                THEN 1 ELSE 0 END) AS recent
FROM pubs AS p INNER JOIN projects AS pr
     ON extractid(p.project) = pr.projectid
WHERE lower(p.venue) LIKE '%db%' OR length(p.title) > 30
GROUP BY pr.funder
ORDER BY n DESC
LIMIT 10
"""

# The running example (Figure 1).  ``jlower`` is the JSON-list variant of
# the paper's ``lower`` (SQL functions are not overloaded here).
Q3 = """
WITH pairs AS (
    SELECT pubid, pubdate, projectstart, projectend,
           extractid(project) AS projectid,
           extractfunder(project) AS funder,
           extractclass(project) AS class,
           combinations(jsort(jsortvalues(removeshortterms(jlower(authors)))), 2)
               AS authorpair
    FROM pubs
)
SELECT projectpairs.funder, projectpairs.class, projectpairs.projectid,
       SUM(CASE WHEN cleandate(pairs.pubdate)
                     BETWEEN projectpairs.projectstart
                         AND projectpairs.projectend
                THEN 1 ELSE NULL END) AS authors_during,
       SUM(CASE WHEN cleandate(pairs.pubdate) < projectpairs.projectstart
                THEN 1 ELSE NULL END) AS authors_before,
       SUM(CASE WHEN cleandate(pairs.pubdate) > projectpairs.projectend
                THEN 1 ELSE NULL END) AS authors_after
FROM (
    SELECT * FROM pairs WHERE projectid IS NOT NULL
) AS projectpairs, pairs
WHERE projectpairs.authorpair = pairs.authorpair
GROUP BY projectpairs.funder, projectpairs.class, projectpairs.projectid
"""

# UDF-type fusion pairs (Figure 6e).
Q4 = "SELECT normalize(lower(payload)) AS p FROM artifacts"

Q5 = "SELECT grp, avglen(lower(name)) AS al FROM artifacts GROUP BY grp"

Q6 = "SELECT aid, tokens(lower(payload)) AS token FROM artifacts"

Q7 = """
SELECT countvals(token) AS n
FROM tokens((SELECT payload FROM artifacts)) AS t
"""

Q9 = """
SELECT cleandate(pubdate) AS cd, extractmonth(pubdate) AS m FROM pubs
"""

Q10 = "SELECT jsoncount(jpack(abstract)) AS n FROM pubs"

QUERIES = {
    "Q1": Q1.strip(),
    "Q2": Q2.strip(),
    "Q3": Q3.strip(),
    "Q4": Q4.strip(),
    "Q5": Q5.strip(),
    "Q6": Q6.strip(),
    "Q7": Q7.strip(),
    "Q9": Q9.strip(),
    "Q10": Q10.strip(),
}


def q8_selectivity(threshold_year: int) -> str:
    """Q8 (Figure 6b): ``cleandate`` before a range filter whose pass
    fraction is controlled by ``threshold_year`` (dates span 2008-2023,
    so e.g. 2009 keeps ~6 % and 2023 keeps ~100 %)."""
    return (
        "SELECT cleandate(pubdate) AS cd FROM pubs "
        f"WHERE cleandate(pubdate) <= '{threshold_year}-12-31'"
    )
