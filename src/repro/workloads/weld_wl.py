"""The two Weld-paper queries (Q15, Q16) on synthetic data.

* Q15 ``get_population_stats`` — numeric aggregation over a population
  table after scaling/filtering;
* Q16 ``data_cleaning`` — dirty numeric strings cleaned into integers,
  invalid entries dropped, results aggregated.

Weld itself only supports numpy-native operations; the baseline
(:mod:`repro.baselines.weld_like`) executes these through its two-phase
read/execute model, QFusor through fused Python UDFs.
"""

from __future__ import annotations

import re
from typing import List

from ..storage.table import Table
from ..types import SqlType
from ..udf import scalar_udf
from . import datagen
from .datagen import scale_rows

__all__ = ["ALL_UDFS", "QUERIES", "build_tables", "setup"]


@scalar_udf(deterministic=True)
def scale_pop(value: int) -> float:
    """Normalize a raw population count to thousands."""
    return value / 1000.0


@scalar_udf(deterministic=True)
def log_area(value: float) -> float:
    """A cheap numeric transform over the area column."""
    return value ** 0.5


_NUM = re.compile(r"-?\d+")


@scalar_udf(deterministic=True)
def clean_int(val: str) -> int:
    """Extract the integer from a dirty string (' 012a' -> 12); 0 when
    nothing numeric is present."""
    m = _NUM.search(val)
    return int(m.group(0)) if m else 0


@scalar_udf(deterministic=True)
def is_valid_code(val: str) -> bool:
    """A dirty string is valid when it contains any digits."""
    return _NUM.search(val) is not None


ALL_UDFS = [scale_pop, log_area, clean_int, is_valid_code]


def build_population(rows: int, seed: int = 41) -> Table:
    r = datagen.rng(seed)
    cities, populations, areas, states = [], [], [], []
    for i in range(rows):
        cities.append(f"{r.choice(datagen.CITIES)}-{i}")
        populations.append(r.randint(5_000, 9_000_000))
        areas.append(round(r.uniform(10.0, 2500.0), 2))
        states.append(f"S{r.randint(0, 19):02d}")
    return Table.from_dict(
        "population",
        {
            "city": (SqlType.TEXT, cities),
            "population": (SqlType.INT, populations),
            "area": (SqlType.FLOAT, areas),
            "state": (SqlType.TEXT, states),
        },
    )


_DIRT = ["", " ", "a", "x-", "#", "??"]


def build_dirty_codes(rows: int, seed: int = 43) -> Table:
    r = datagen.rng(seed)
    ids, codes, groups = [], [], []
    for i in range(rows):
        ids.append(i)
        if r.random() < 0.85:
            code = f"{r.choice(_DIRT)}{r.randint(0, 99999):05d}{r.choice(_DIRT)}"
        else:
            code = r.choice(["n/a", "missing", "--", "?"])
        codes.append(code)
        groups.append(f"b{r.randint(0, 7)}")
    return Table.from_dict(
        "dirty_codes",
        {
            "id": (SqlType.INT, ids),
            "code": (SqlType.TEXT, codes),
            "grp": (SqlType.TEXT, groups),
        },
    )


def build_tables(scale="small", seed: int = 41) -> List[Table]:
    rows = scale_rows(scale)
    return [build_population(rows, seed), build_dirty_codes(rows, seed + 2)]


def setup(adapter, scale="small", seed: int = 41) -> None:
    for table in build_tables(scale, seed):
        adapter.register_table(table, replace=True)
    for udf in ALL_UDFS:
        adapter.register_udf(udf, replace=True)


Q15 = """
SELECT state,
       sum(scale_pop(population)) AS total_k,
       avg(scale_pop(population)) AS mean_k,
       max(log_area(area)) AS max_root_area
FROM population
WHERE population > 100000
GROUP BY state
ORDER BY state
"""

Q16 = """
SELECT grp, count(*) AS n, sum(clean_int(code)) AS total
FROM dirty_codes
WHERE is_valid_code(code) = TRUE AND clean_int(code) > 100
GROUP BY grp
ORDER BY grp
"""

QUERIES = {"Q15": Q15.strip(), "Q16": Q16.strip()}
