"""Compiled-trace cache.

The paper's Figure 6d shows "QFusor cache": re-using previously compiled
fused UDFs across queries yields zero compilation cost on repeat
workloads.  The cache is keyed by the pipeline's structural signature
(stage kinds, UDF names, argument wiring, types), so two textually
different queries that fuse the same pipeline hit the same entry.

The cache is a bounded LRU: ``capacity`` caps the number of live traces
(the Fig. 6d 100-short-query scenario must not grow memory without
bound), and :meth:`TraceCache.invalidate` evicts a single entry — the
de-optimization path uses it so a trace that failed at runtime is never
served again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, List, Optional, Tuple

from ..cache.fingerprint import trace_key
from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from .codegen import FusedUdf, PipelineSpec, generate_fused_udf

__all__ = ["TraceCache"]


def _compile(spec: PipelineSpec) -> FusedUdf:
    """Generate + compile one fused trace, under a jit_compile span."""
    sp = (
        obs_tracer.span_start("jit_compile", udf=spec.name)
        if OBS.tracing else None
    )
    fused = generate_fused_udf(spec)
    if sp is not None:
        obs_tracer.span_end(sp, stages=len(spec.stages))
    return fused


class TraceCache:
    """A bounded in-memory LRU cache of compiled fused UDFs."""

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None):
        self.enabled = enabled
        #: Maximum live entries; ``None`` means unbounded.
        self.capacity = capacity if capacity is None else max(1, int(capacity))
        self._entries: "OrderedDict[Tuple, FusedUdf]" = OrderedDict()
        #: Registered-name -> cache key, so the de-optimization path can
        #: find (and invalidate) the trace behind a failing fused UDF.
        self._key_by_name: Dict[str, Tuple] = {}
        # Concurrent governed queries share one cache; RLock because
        # compilation inside get_or_compile may re-enter helpers.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get_or_compile(self, spec: PipelineSpec) -> Tuple[FusedUdf, bool]:
        """Return ``(fused_udf, was_cached)`` for the pipeline.

        On a hit, the cached artifact is returned under its original
        registration name; the name->key map is refreshed either way.
        """
        key = _cache_key(spec)
        with self._lock:
            if not self.enabled:
                self.misses += 1
                if OBS.metrics:
                    METRICS.counter(
                        "repro_cache_misses_total", tier="trace"
                    ).inc()
                fused = _compile(spec)
                self._key_by_name[fused.definition.name] = key
                return fused, False
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                if OBS.metrics:
                    METRICS.counter(
                        "repro_cache_hits_total", tier="trace"
                    ).inc()
                self._entries.move_to_end(key)
                self._key_by_name[entry.definition.name] = key
                return entry, True
            self.misses += 1
            if OBS.metrics:
                METRICS.counter("repro_cache_misses_total", tier="trace").inc()
            fused = _compile(spec)
            self._entries[key] = fused
            self._key_by_name[fused.definition.name] = key
            if self.capacity is not None and len(self._entries) > self.capacity:
                old_key, old_entry = self._entries.popitem(last=False)
                self.evictions += 1
                if OBS.metrics:
                    METRICS.counter(
                        "repro_cache_evictions_total", tier="trace"
                    ).inc()
                if self._key_by_name.get(old_entry.definition.name) == old_key:
                    del self._key_by_name[old_entry.definition.name]
            return fused, False

    # ------------------------------------------------------------------
    # Invalidation (runtime de-optimization support)
    # ------------------------------------------------------------------

    def key_for(self, name: str) -> Optional[Tuple]:
        """The cache key of the trace registered under ``name``."""
        with self._lock:
            return self._key_by_name.get(name.lower())

    def invalidate(self, key: Hashable) -> bool:
        """Drop one entry; returns True when something was evicted."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.invalidations += 1
            if OBS.metrics:
                METRICS.counter(
                    "repro_cache_invalidations_total", tier="trace"
                ).inc()
            return True

    def invalidate_name(self, name: str) -> bool:
        """Drop the entry behind the fused UDF registered as ``name``."""
        key = self.key_for(name)
        return self.invalidate(key) if key is not None else False

    # ------------------------------------------------------------------
    # Inspection / testing support
    # ------------------------------------------------------------------

    def entries(self) -> List[Tuple[Tuple, FusedUdf]]:
        """Snapshot of ``(key, fused_udf)`` pairs, LRU order."""
        with self._lock:
            return list(self._entries.items())

    def replace(self, key: Hashable, fused: FusedUdf) -> bool:
        """Swap the artifact behind ``key`` (fault-injection harness)."""
        with self._lock:
            if key not in self._entries:
                return False
            self._entries[key] = fused
            self._key_by_name[fused.definition.name] = key
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._key_by_name.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries


def _cache_key(spec: PipelineSpec) -> Tuple:
    # The name is excluded: identical pipelines under different generated
    # names must share one compiled trace.  The key derivation is shared
    # with the fusion blocklist (repro.cache.fingerprint.trace_key), so a
    # blocklisted section and its trace can never disagree on identity.
    return trace_key(spec.signature_key)
