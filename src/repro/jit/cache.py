"""Compiled-trace cache.

The paper's Figure 6d shows "QFusor cache": re-using previously compiled
fused UDFs across queries yields zero compilation cost on repeat
workloads.  The cache is keyed by the pipeline's structural signature
(stage kinds, UDF names, argument wiring, types), so two textually
different queries that fuse the same pipeline hit the same entry.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .codegen import FusedUdf, PipelineSpec, generate_fused_udf

__all__ = ["TraceCache"]


class TraceCache:
    """An in-memory cache of compiled fused UDFs."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._entries: Dict[Tuple, FusedUdf] = {}
        self.hits = 0
        self.misses = 0

    def get_or_compile(self, spec: PipelineSpec) -> Tuple[FusedUdf, bool]:
        """Return ``(fused_udf, was_cached)`` for the pipeline.

        On a hit, the cached artifact is re-labelled with the requested
        name so the caller can register it under a fresh identifier.
        """
        if not self.enabled:
            self.misses += 1
            return generate_fused_udf(spec), False
        key = _cache_key(spec)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            return entry, True
        self.misses += 1
        fused = generate_fused_udf(spec)
        self._entries[key] = fused
        return fused, False

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)


def _cache_key(spec: PipelineSpec) -> Tuple:
    # The name is excluded: identical pipelines under different generated
    # names must share one compiled trace.
    key = list(spec.signature_key)
    return tuple(key)
