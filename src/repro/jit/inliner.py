"""AST-based function inlining.

A tracing JIT inlines function calls along hot traces.  This module does
the equivalent ahead of time: if a scalar UDF's body is a single
``return`` of an expression (optionally guarded by a ternary), its body is
substituted textually into the fused loop, eliminating the call frame.
UDFs with loops, multiple statements, or closures fall back to a direct
call through a name bound in the generated code's namespace — still inside
the same loop, still without wrapper-layer conversions.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

__all__ = ["InlineResult", "function_ast", "try_inline", "render_stage_call"]


def function_ast(func: Callable) -> Optional[ast.FunctionDef]:
    """Parse ``func``'s source into its ``FunctionDef`` node, or None.

    Shared by the JIT inliner and the Froid-style UDF-to-SQL translator
    (:mod:`repro.sql.translate`): both work on the function's AST rather
    than its bytecode.  Returns None when the source is unavailable
    (builtins, C extensions, functions defined in a REPL without a
    ``linecache`` entry) or does not parse to a plain function.
    """
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    if not tree.body or not isinstance(tree.body[0], ast.FunctionDef):
        return None
    return tree.body[0]


@dataclass(frozen=True)
class InlineResult:
    """Outcome of an inlining attempt.

    ``expression`` is a Python expression template over the function's
    parameter names; :func:`substitute` rewrites parameter names to the
    caller's argument variable names.
    """

    param_names: tuple
    expression: str

    def substitute(self, arg_names: Sequence[str]) -> str:
        """Render the inlined body with arguments substituted."""
        tree = ast.parse(self.expression, mode="eval")
        mapping = dict(zip(self.param_names, arg_names))
        renamed = _RenameParams(mapping).visit(tree)
        ast.fix_missing_locations(renamed)
        return ast.unparse(renamed)


class _RenameParams(ast.NodeTransformer):
    def __init__(self, mapping: Dict[str, str]):
        self.mapping = mapping

    def visit_Name(self, node: ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id in self.mapping:
            return ast.copy_location(
                ast.Name(id=self.mapping[node.id], ctx=ast.Load()), node
            )
        return node


def try_inline(func: Callable) -> Optional[InlineResult]:
    """Attempt to extract ``func``'s body as a single inlinable expression.

    Supported shapes::

        def f(x): return <expr>
        def f(x):
            if <cond>:
                return <expr1>
            return <expr2>          # folded into a ternary

    Returns ``None`` when the body is too complex to inline (the fused
    code then calls the function directly instead).
    """
    fdef = function_ast(func)
    if fdef is None:
        return None
    params = tuple(a.arg for a in fdef.args.args)
    if fdef.args.vararg or fdef.args.kwarg or fdef.args.kwonlyargs:
        return None

    body = [s for s in fdef.body if not _is_docstring(s)]
    expression = _body_to_expression(body)
    if expression is None:
        return None
    if _uses_free_names(expression, set(params)):
        return None
    return InlineResult(params, ast.unparse(expression))


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _body_to_expression(body: List[ast.stmt]) -> Optional[ast.expr]:
    if len(body) == 1 and isinstance(body[0], ast.Return):
        return body[0].value if body[0].value is not None else ast.Constant(None)
    # if <cond>: return A \n return B   ->   A if <cond> else B
    if (
        len(body) == 2
        and isinstance(body[0], ast.If)
        and not body[0].orelse
        and len(body[0].body) == 1
        and isinstance(body[0].body[0], ast.Return)
        and isinstance(body[1], ast.Return)
    ):
        then_value = body[0].body[0].value or ast.Constant(None)
        else_value = body[1].value or ast.Constant(None)
        return ast.IfExp(test=body[0].test, body=then_value, orelse=else_value)
    return None


_SAFE_GLOBALS = {
    "len", "str", "int", "float", "bool", "abs", "min", "max", "round",
    "sorted", "sum", "tuple", "list", "dict", "set", "repr", "range",
    "enumerate", "zip", "any", "all", "None", "True", "False",
}


def _uses_free_names(expression: ast.expr, params: set) -> bool:
    """True if the expression references names that would not resolve in
    the generated namespace (module globals of the UDF, closures, ...).

    Names bound *inside* the expression (comprehension variables, lambda
    parameters) are not free.
    """
    bound = set(params)
    for node in ast.walk(expression):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, ast.Lambda):
            bound.update(a.arg for a in node.args.args)
    for node in ast.walk(expression):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id not in bound and node.id not in _SAFE_GLOBALS:
                return True
    return False


def render_stage_call(bound_name: str, arg_names: Sequence[str]) -> str:
    """Fallback rendering: a direct call through a bound name."""
    return f"{bound_name}({', '.join(arg_names)})"
