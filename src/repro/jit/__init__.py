"""Tracing-JIT stand-in: inlining, fused-UDF code generation, trace cache.

The paper runs UDFs on PyPy, whose tracing JIT inlines function calls
inside hot loops and compiles the resulting long traces.  What fusion buys
it is *longer traces*: the whole UDF pipeline becomes one loop body.

This package reproduces that effect for CPython: given a fused pipeline,
:mod:`repro.jit.codegen` emits one specialized Python function whose body
contains the whole pipeline — with simple scalar UDF bodies *textually
inlined* by :mod:`repro.jit.inliner` — and compiles it once.  The
compiled artifacts are cached by pipeline signature
(:mod:`repro.jit.cache`), reproducing the "QFusor cache" variant of the
paper's Figure 6d.
"""

from .inliner import InlineResult, try_inline
from .codegen import (
    PipelineSpec, ScalarUdfStage, ExprStage, FilterStage, TableUdfStage,
    AggregateStage, DistinctStage, generate_fused_udf, FusedUdf,
)
from .cache import TraceCache

__all__ = [
    "InlineResult", "try_inline", "PipelineSpec", "ScalarUdfStage",
    "ExprStage", "FilterStage", "TableUdfStage", "AggregateStage",
    "DistinctStage", "generate_fused_udf", "FusedUdf", "TraceCache",
]
