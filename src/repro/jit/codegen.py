"""Fused-UDF code generation — the paper's loop-fusion templates TF1-TF8.

A fused pipeline is described by a :class:`PipelineSpec`: named inputs,
a sequence of stages wired through variable names, and the output
variables.  :func:`generate_fused_udf` compiles the spec into a *new UDF
that itself follows the design specifications of section 4.2*, so the
ordinary registration mechanism (wrapper generation, CREATE FUNCTION)
applies to fused UDFs unchanged — exactly the paper's architecture.

The fused UDF's type follows Table 2:

====================  ==========================  =================
pipeline content       result kind                 template(s)
====================  ==========================  =================
scalar stages only     scalar UDF                  TF1
ends in aggregate      aggregate UDF (class)       TF2, TF6, TF7
filter/distinct/table  table UDF (generator)       TF3, TF4, TF5
aggregate then table   table UDF w/ inner agg      TF8
====================  ==========================  =================

Loop fusion: all stages execute inside one loop body; simple scalar UDF
bodies are textually inlined (:mod:`repro.jit.inliner`), complex ones are
called directly through namespace bindings — either way no wrapper-layer
boundary crossing happens between stages.

NULL semantics are preserved: scalar stages are strict (NULL in, NULL
out, no call), filters drop rows whose predicate is NULL, and aggregate
steps skip NULL inputs — matching the unfused wrapper semantics so fusion
never changes results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import JitError
from ..types import SqlType
from ..udf.definition import UdfDefinition, UdfKind
from ..udf.signature import UdfSignature
from ..udf.wrappers import SourceBuilder
from .inliner import try_inline

__all__ = [
    "ScalarUdfStage", "ExprStage", "FilterStage", "TableUdfStage",
    "AggregateStage", "DistinctStage", "PipelineSpec", "FusedUdf",
    "generate_fused_udf",
]


def _record_fused_batch(name: str, size: int) -> None:
    """Once-per-batch metrics hook bound into generated wrappers."""
    from ..obs import DEFAULT_SIZE_BUCKETS, METRICS

    METRICS.histogram(
        "repro_fused_batch_rows", DEFAULT_SIZE_BUCKETS, udf=name
    ).observe(size)


# ----------------------------------------------------------------------
# Stage model
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarUdfStage:
    """Apply a scalar UDF: ``out = udf(*args)`` (strict in NULLs)."""

    udf: UdfDefinition
    args: Tuple[str, ...]
    out: str


@dataclass(frozen=True)
class ExprStage:
    """An offloaded relational scalar operation (case, arithmetic,
    comparison, is-null test) as a Python expression over variables.

    ``src`` references variables by name.  When ``strict`` (default), any
    NULL argument yields NULL without evaluating ``src``; CASE and IS
    NULL expressions set ``strict=False`` and handle NULLs inside
    ``src`` themselves.  ``bindings`` are extra names the source needs in
    the generated namespace (compiled LIKE regexes, cast helpers, ...).
    """

    src: str
    args: Tuple[str, ...]
    out: str
    strict: bool = True
    bindings: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class FilterStage:
    """An offloaded relational filter: rows where ``src`` is not truthy
    (or any argument is NULL) are dropped."""

    src: str
    args: Tuple[str, ...]
    bindings: Tuple[Tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class TableUdfStage:
    """Apply a table UDF: consumes the stream of ``args`` tuples, emits
    ``outs`` tuples (zero or more per input row)."""

    udf: UdfDefinition
    args: Tuple[str, ...]
    const_args: Tuple[Any, ...]
    outs: Tuple[str, ...]


@dataclass(frozen=True)
class AggregateStage:
    """Terminal (or pre-table) aggregation: either an aggregate UDF class
    or a builtin aggregate named in :data:`BUILTIN_AGG_STATES`."""

    args: Tuple[str, ...]
    out: str
    udf: Optional[UdfDefinition] = None
    builtin: Optional[str] = None

    def __post_init__(self):
        if (self.udf is None) == (self.builtin is None):
            raise JitError("AggregateStage needs exactly one of udf/builtin")


@dataclass(frozen=True)
class DistinctStage:
    """An offloaded DISTINCT over the given key variables."""

    args: Tuple[str, ...]


Stage = Union[
    ScalarUdfStage, ExprStage, FilterStage, TableUdfStage,
    AggregateStage, DistinctStage,
]


@dataclass
class PipelineSpec:
    """A fused pipeline: inputs, stages, and outputs.

    ``inputs`` are the fused UDF's parameters (in order); every stage's
    argument names must be inputs or earlier stage outputs.
    """

    name: str
    inputs: Tuple[Tuple[str, SqlType], ...]
    stages: Tuple[Stage, ...]
    outputs: Tuple[str, ...]
    output_types: Tuple[SqlType, ...]
    output_names: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.output_names:
            self.output_names = tuple(f"c{i}" for i in range(len(self.outputs)))
        self._validate()

    def _validate(self) -> None:
        defined = {name for name, _ in self.inputs}
        for stage in self.stages:
            for arg in getattr(stage, "args", ()):
                if arg not in defined:
                    raise JitError(
                        f"pipeline {self.name!r}: stage argument {arg!r} "
                        f"is not defined yet"
                    )
            for out in _stage_outs(stage):
                defined.add(out)
        for out in self.outputs:
            if out not in defined:
                raise JitError(
                    f"pipeline {self.name!r}: output {out!r} is not defined"
                )

    @property
    def result_kind(self) -> UdfKind:
        """The fused UDF's type per Table 2."""
        stages = self.stages
        agg_positions = [
            i for i, s in enumerate(stages) if isinstance(s, AggregateStage)
        ]
        table_after_agg = agg_positions and any(
            isinstance(s, TableUdfStage) for s in stages[agg_positions[-1]:]
        )
        if agg_positions and not table_after_agg:
            return UdfKind.AGGREGATE
        if any(
            isinstance(s, (FilterStage, TableUdfStage, DistinctStage))
            for s in stages
        ) or table_after_agg:
            return UdfKind.TABLE
        return UdfKind.SCALAR

    @property
    def signature_key(self) -> Tuple:
        """A structural identity used by the trace cache: two pipelines
        with the same key compile to the same code.

        UDF stages are identified by name *plus* definition-content
        fingerprint (:func:`repro.cache.fingerprint.definition_fingerprint`),
        so re-registering a UDF with a changed body can never hit the
        trace compiled from the old body."""
        from ..cache.fingerprint import definition_fingerprint

        parts: List[Tuple] = [tuple(self.inputs), self.outputs, self.output_types]
        for stage in self.stages:
            if isinstance(stage, ScalarUdfStage):
                parts.append(
                    ("scalar", stage.udf.name,
                     definition_fingerprint(stage.udf),
                     stage.args, stage.out)
                )
            elif isinstance(stage, ExprStage):
                parts.append(("expr", stage.src, stage.args, stage.out, stage.strict))
            elif isinstance(stage, FilterStage):
                parts.append(("filter", stage.src, stage.args))
            elif isinstance(stage, TableUdfStage):
                parts.append(
                    ("table", stage.udf.name,
                     definition_fingerprint(stage.udf),
                     stage.args, stage.const_args, stage.outs)
                )
            elif isinstance(stage, AggregateStage):
                parts.append(
                    ("agg", stage.udf.name if stage.udf else stage.builtin,
                     definition_fingerprint(stage.udf) if stage.udf else "",
                     stage.args, stage.out)
                )
            elif isinstance(stage, DistinctStage):
                parts.append(("distinct", stage.args))
        return tuple(parts)


def _stage_outs(stage: Stage) -> Tuple[str, ...]:
    if isinstance(stage, TableUdfStage):
        return stage.outs
    out = getattr(stage, "out", None)
    return (out,) if out is not None else ()


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


@dataclass
class FusedUdf:
    """A generated fused UDF: its definition, source, and compile time."""

    definition: UdfDefinition
    source: str
    compile_seconds: float
    inlined_stages: int
    called_stages: int

    @property
    def trace_length(self) -> int:
        """Number of fused stages — the paper's "longer traces" metric."""
        return self.inlined_stages + self.called_stages


def generate_fused_udf(spec: PipelineSpec) -> FusedUdf:
    """Generate, compile, and wrap the fused UDF for ``spec``."""
    start = time.perf_counter()
    kind = spec.result_kind
    generator = _Generator(spec)
    if kind is UdfKind.SCALAR:
        source, entry_name = generator.scalar_source()
    elif kind is UdfKind.AGGREGATE:
        source, entry_name = generator.aggregate_source()
    else:
        source, entry_name = generator.table_source()

    namespace = dict(generator.namespace)
    code = compile(source, f"<fused:{spec.name}>", "exec")
    exec(code, namespace)
    func = namespace[entry_name]
    lineage_func = namespace.get(f"{entry_name}__lineage")
    expand_batch_func = namespace.get(f"{entry_name}__expand_batch")
    scalar_batch_func = namespace.get(f"{entry_name}__scalar_batch")
    if scalar_batch_func is not None:
        # Fused scalar traces are row-wise pure (each output row depends
        # only on its input row), so the morsel executor may shard their
        # batches freely.
        scalar_batch_func.morsel_safe = True

    arg_names = tuple(name for name, _ in spec.inputs)
    arg_types = tuple(sql_type for _, sql_type in spec.inputs)
    signature = UdfSignature(arg_names, arg_types, tuple(spec.output_types))
    definition = UdfDefinition(
        name=spec.name,
        kind=kind,
        func=func,
        signature=signature,
        out_columns=tuple(spec.output_names),
        # Fused bodies implement exact per-stage NULL semantics, so the
        # wrapper must not short-circuit NULL inputs (e.g. a fused CASE
        # may map NULL to its ELSE value).
        strict=False,
        fused_from=tuple(_fused_from(spec)),
        lineage_func=lineage_func,
        expand_batch_func=expand_batch_func,
        scalar_batch_func=scalar_batch_func,
    )
    elapsed = time.perf_counter() - start
    return FusedUdf(
        definition, source, elapsed, generator.inlined, generator.called
    )


def _fused_from(spec: PipelineSpec) -> List[str]:
    names: List[str] = []
    for stage in spec.stages:
        if isinstance(stage, (ScalarUdfStage, TableUdfStage)):
            names.append(stage.udf.name)
        elif isinstance(stage, AggregateStage):
            names.append(stage.udf.name if stage.udf else stage.builtin)
        elif isinstance(stage, FilterStage):
            names.append("filter")
        elif isinstance(stage, DistinctStage):
            names.append("distinct")
        elif isinstance(stage, ExprStage):
            names.append("expr")
    return names


class _Generator:
    """Emits the fused source for one pipeline."""

    def __init__(self, spec: PipelineSpec):
        from ..obs import OBS as _obs_state
        from ..resilience import governor as _governor
        from ..resilience import runtime as _resilience

        self.spec = spec
        self.namespace: Dict[str, Any] = {"BUILTIN_AGG_STATES": None}
        self.inlined = 0
        self.called = 0
        self._bind_builtin_aggregates()
        # Resilience runtime: row-level exception policies and the
        # fault-injection hook checked inside generated batch loops.
        udf_names = tuple(
            s.udf.name
            for s in spec.stages
            if isinstance(s, (ScalarUdfStage, TableUdfStage, AggregateStage))
            and getattr(s, "udf", None) is not None
        )
        self.namespace.update(
            _FAULTS=_resilience.FAULTS,
            _rt_policy=_resilience.policy,
            _rt_row_error=_resilience.handle_scalar_row_error,
            _rt_expand_row_error=_resilience.handle_expand_row_error,
            _gov_check=_governor.checkpoint,
            _NAME=spec.name,
            _NAMES=(spec.name,) + udf_names,
            # Observability: one branch + at most one call per *batch*
            # (never per row) keeps the disabled path a single branch.
            _obs=_obs_state,
            _obs_batch=_record_fused_batch,
        )

    def _bind_builtin_aggregates(self) -> None:
        from ..engine import functions as engine_functions

        for stage in self.spec.stages:
            if isinstance(stage, AggregateStage) and stage.builtin:
                builtin = engine_functions.BUILTIN_AGGREGATES.get(stage.builtin)
                if builtin is None:
                    raise JitError(f"unknown builtin aggregate {stage.builtin!r}")
                self.namespace[f"_aggstate_{stage.builtin}"] = builtin.make_state

    # ------------------------------------------------------------------
    # Shared stage emission
    # ------------------------------------------------------------------

    def _null_guard(self, args: Sequence[str]) -> str:
        return " or ".join(f"{a} is None" for a in args)

    def _emit_scalar(
        self,
        builder: SourceBuilder,
        stage: ScalarUdfStage,
        force_call: bool = False,
    ) -> None:
        inline = None if force_call else try_inline(stage.udf.func)
        if inline is not None:
            expression = inline.substitute(stage.args)
            self.inlined += 1
        else:
            bound = f"_f_{stage.udf.name}"
            self.namespace[bound] = stage.udf.func
            expression = f"{bound}({', '.join(stage.args)})"
            self.called += 1
        guard = self._null_guard(stage.args)
        if guard:
            builder.line(f"{stage.out} = None if ({guard}) else ({expression})")
        else:
            builder.line(f"{stage.out} = {expression}")

    def _emit_expr(self, builder: SourceBuilder, stage: ExprStage) -> None:
        self.inlined += 1
        for bound_name, value in stage.bindings:
            self.namespace[bound_name] = value
        guard = self._null_guard(stage.args) if stage.strict else ""
        if guard:
            builder.line(f"{stage.out} = None if ({guard}) else ({stage.src})")
        else:
            builder.line(f"{stage.out} = {stage.src}")

    def _emit_filter_condition(self, stage: FilterStage) -> str:
        self.inlined += 1
        for bound_name, value in stage.bindings:
            self.namespace[bound_name] = value
        guard = self._null_guard(stage.args)
        if guard:
            return f"(False if ({guard}) else bool({stage.src}))"
        return f"bool({stage.src})"

    # ------------------------------------------------------------------
    # Scalar result (TF1)
    # ------------------------------------------------------------------

    def scalar_source(self) -> Tuple[str, str]:
        spec = self.spec
        builder = SourceBuilder()
        params = ", ".join(name for name, _ in spec.inputs)
        entry = f"{spec.name}"
        with builder.block(f"def {entry}({params}):"):
            builder.line(
                f'"""JIT-fused scalar UDF '
                f'({" -> ".join(_fused_from(spec)) or "identity"})."""'
            )
            for stage in spec.stages:
                if isinstance(stage, ScalarUdfStage):
                    self._emit_scalar(builder, stage)
                elif isinstance(stage, ExprStage):
                    self._emit_expr(builder, stage)
                else:
                    raise JitError(
                        f"stage {type(stage).__name__} in scalar pipeline"
                    )
            builder.line(f"return {spec.outputs[0]}")
        builder.line()
        # The JIT-generated scalar wrapper: one batch loop with inline
        # boundary conversions — no per-row Python call into the fused
        # function (section 4.1's loop-fused wrapper generation).
        from ..udf import boundary as _boundary

        self.namespace["c_to_python"] = _boundary.c_to_python
        self.namespace["python_to_c"] = _boundary.python_to_c
        self.namespace["_IN_TYPES"] = tuple(t for _, t in spec.inputs)
        self.namespace["_OUT_TYPE"] = spec.output_types[0]
        counters = (self.inlined, self.called)  # batch re-emission is not
        # an extra trace: restore counters afterwards.
        with builder.block(f"def {entry}__scalar_batch(c_inputs, size):"):
            builder.line('"""Fused scalar wrapper: inline conversions."""')
            builder.line("if _obs.metrics: _obs_batch(_NAME, size)")
            builder.line("result = [None] * size")
            for i in range(len(spec.inputs)):
                builder.line(f"_c{i} = c_inputs[{i}]")
            builder.line("_policy = _rt_policy()")
            with builder.block("for _idx in range(size):"):
                builder.line("if not (_idx & 255): _gov_check()")
                with builder.block("try:"):
                    with builder.block("if _FAULTS.armed:"):
                        builder.line(
                            "_FAULTS.injector.fire_row(_NAMES, _idx, 'fused')"
                        )
                    for i, (name, _) in enumerate(spec.inputs):
                        builder.line(
                            f"{name} = c_to_python(_c{i}[_idx], _IN_TYPES[{i}])"
                        )
                    for stage in spec.stages:
                        if isinstance(stage, ScalarUdfStage):
                            self._emit_scalar(builder, stage)
                        else:
                            self._emit_expr(builder, stage)
                    builder.line(
                        f"result[_idx] = python_to_c({spec.outputs[0]}, _OUT_TYPE)"
                    )
                with builder.block("except Exception as _exc:"):
                    builder.line(
                        f"result[_idx] = _rt_row_error(_NAME, _policy, _exc, "
                        f"_idx, (lambda _i=_idx: "
                        f"{entry}__reinterp(c_inputs, _i)))"
                    )
            builder.line("return result")
        builder.line()
        # Per-row replay through the *called* (not inlined) UDF chain —
        # the interpreted fallback the reinterpret policy executes when
        # one fused row raises.
        with builder.block(f"def {entry}__reinterp(c_inputs, _idx):"):
            builder.line('"""Interpreted single-row replay (deopt path)."""')
            for i, (name, _) in enumerate(spec.inputs):
                builder.line(
                    f"{name} = c_to_python(c_inputs[{i}][_idx], _IN_TYPES[{i}])"
                )
            for stage in spec.stages:
                if isinstance(stage, ScalarUdfStage):
                    self._emit_scalar(builder, stage, force_call=True)
                else:
                    self._emit_expr(builder, stage)
            builder.line(f"return python_to_c({spec.outputs[0]}, _OUT_TYPE)")
        self.inlined, self.called = counters
        return builder.source(), entry

    # ------------------------------------------------------------------
    # Aggregate result (TF2, TF6, TF7)
    # ------------------------------------------------------------------

    def aggregate_source(self) -> Tuple[str, str]:
        spec = self.spec
        agg_index = max(
            i for i, s in enumerate(spec.stages) if isinstance(s, AggregateStage)
        )
        # Multiple aggregate stages in one pipeline are not fusible.
        if sum(isinstance(s, AggregateStage) for s in spec.stages) > 1:
            raise JitError("a fused pipeline may contain one aggregate stage")
        agg_stage = spec.stages[agg_index]
        assert isinstance(agg_stage, AggregateStage)
        pre = spec.stages[:agg_index]
        post = spec.stages[agg_index + 1:]

        if agg_stage.udf is not None:
            self.namespace[f"_agg_{agg_stage.udf.name}"] = agg_stage.udf.func
            state_expr = f"_agg_{agg_stage.udf.name}()"
        else:
            state_expr = f"_aggstate_{agg_stage.builtin}()"

        builder = SourceBuilder()
        entry = spec.name
        with builder.block(f"class {entry}:"):
            builder.line(
                f'"""JIT-fused aggregate UDF '
                f'({" -> ".join(_fused_from(spec))})."""'
            )
            with builder.block("def __init__(self):"):
                builder.line(f"self._state = {state_expr}")
                if any(isinstance(s, DistinctStage) for s in pre):
                    builder.line("self._seen = set()")
            params = ", ".join(name for name, _ in spec.inputs)
            has_table_pre = any(isinstance(s, TableUdfStage) for s in pre)

            def _step_tail(b: SourceBuilder) -> None:
                guard = self._null_guard(agg_stage.args)
                skip = "continue" if has_table_pre else "return"
                if guard:
                    with b.block(f"if {guard}:"):
                        b.line(skip)
                b.line(f"self._state.step({', '.join(agg_stage.args)})")

            with builder.block(f"def step(self, {params}):"):
                self._emit_stream_stages(
                    builder, pre, early_exit="return", seen="self._seen",
                    tail=_step_tail,
                )
            with builder.block("def final(self):"):
                builder.line(f"{agg_stage.out} = self._state.final()")
                for stage in post:
                    if isinstance(stage, ScalarUdfStage):
                        self._emit_scalar(builder, stage)
                    elif isinstance(stage, ExprStage):
                        self._emit_expr(builder, stage)
                    else:
                        raise JitError(
                            "only scalar stages may follow an aggregate "
                            "in an aggregate-kind pipeline (TF7)"
                        )
                builder.line(f"return {spec.outputs[0]}")
        return builder.source(), entry

    # ------------------------------------------------------------------
    # Table result (TF3, TF4, TF5, TF8)
    # ------------------------------------------------------------------

    def table_source(self) -> Tuple[str, str]:
        spec = self.spec
        builder = SourceBuilder()
        entry = spec.name
        agg_stages = [s for s in spec.stages if isinstance(s, AggregateStage)]
        if agg_stages:
            return self._table_after_aggregate_source()

        input_tuple = ", ".join(name for name, _ in spec.inputs)
        trailing = "," if len(spec.inputs) == 1 else ""
        with builder.block(f"def {entry}(inp_datagen):"):
            builder.line(
                f'"""JIT-fused table UDF '
                f'({" -> ".join(_fused_from(spec))})."""'
            )
            if any(isinstance(s, DistinctStage) for s in spec.stages):
                builder.line("_seen = set()")
            self._emit_table_loop(
                builder,
                f"for ({input_tuple}{trailing}) in inp_datagen:",
                list(spec.stages),
            )
        builder.line()
        # The lineage variant: one generator over the whole input stream
        # that tags each output with its input row index — the fast path
        # for expand-mode execution of fused pipelines.
        with builder.block(f"def {entry}__lineage(inp_datagen):"):
            builder.line(
                '"""Batch expand variant: yields (input_index, outputs...)."""'
            )
            if any(isinstance(s, DistinctStage) for s in spec.stages):
                builder.line("_seen = set()")
            self._emit_table_loop(
                builder,
                f"for _idx, ({input_tuple}{trailing}) in enumerate(inp_datagen):",
                list(spec.stages),
                yield_prefix="_idx, ",
            )
        builder.line()
        self._emit_expand_batch(builder, entry)
        return builder.source(), entry

    def _emit_expand_batch(self, builder: SourceBuilder, entry: str) -> None:
        """The JIT-generated *wrapper* for expand-mode execution: one
        batch loop with boundary conversions inlined (the paper's
        section 4.1 — the registration mechanism generates loop-fused
        wrapper functions, not just UDF bodies)."""
        spec = self.spec
        self.namespace.setdefault("c_to_python", None)
        self.namespace.setdefault("python_to_c", None)
        from ..udf import boundary as _boundary

        self.namespace["c_to_python"] = _boundary.c_to_python
        self.namespace["python_to_c"] = _boundary.python_to_c
        self.namespace["_OUT_TYPES"] = tuple(spec.output_types)
        counters = (self.inlined, self.called)
        # Row-level exception capture is unsound across a DistinctStage:
        # its _seen set may already contain the failed row's key, so a
        # replay could wrongly drop later rows.  Distinct pipelines keep
        # batch-level semantics (a failure de-optimizes the whole query).
        capture = not any(isinstance(s, DistinctStage) for s in spec.stages)
        with builder.block(
            f"def {entry}__expand_batch(c_inputs, size, in_types):"
        ):
            builder.line(
                '"""Fused expand wrapper: inline conversions, no '
                'per-row generators."""'
            )
            builder.line("if _obs.metrics: _obs_batch(_NAME, size)")
            builder.line("lineage = []")
            for i in range(len(spec.outputs)):
                builder.line(f"_o{i} = []")
            if not capture:
                builder.line("_seen = set()")
            for i in range(len(spec.inputs)):
                builder.line(f"_c{i} = c_inputs[{i}]")
                builder.line(f"_t{i} = in_types[{i}]")

            def _batch_tail(b: SourceBuilder) -> None:
                b.line("lineage.append(_idx)")
                for i, out in enumerate(spec.outputs):
                    b.line(f"_o{i}.append(python_to_c({out}, _OUT_TYPES[{i}]))")

            if capture:
                builder.line("_policy = _rt_policy()")
                with builder.block("for _idx in range(size):"):
                    builder.line("if not (_idx & 255): _gov_check()")
                    with builder.block("try:"):
                        with builder.block("if _FAULTS.armed:"):
                            builder.line(
                                "_FAULTS.injector.fire_row(_NAMES, _idx, "
                                "'fused')"
                            )
                        for i, (name, _) in enumerate(spec.inputs):
                            builder.line(
                                f"{name} = c_to_python(_c{i}[_idx], _t{i})"
                            )
                        self._emit_stream_stages(
                            builder, list(spec.stages), early_exit="continue",
                            seen="_seen", tail=_batch_tail,
                        )
                    with builder.block("except Exception as _exc:"):
                        # Roll back partial outputs of the failed row
                        # (lineage is non-decreasing, so its tail holds
                        # exactly this row's entries).
                        with builder.block(
                            "while lineage and lineage[-1] == _idx:"
                        ):
                            builder.line("lineage.pop()")
                            for i in range(len(spec.outputs)):
                                builder.line(f"_o{i}.pop()")
                        builder.line(
                            f"_rres = _rt_expand_row_error(_NAME, _policy, "
                            f"_exc, _idx, (lambda _i=_idx: "
                            f"{entry}__reinterp_expand(c_inputs, in_types, "
                            f"_i)))"
                        )
                        with builder.block("if _rres is None:"):
                            builder.line("lineage.append(_idx)")
                            for i in range(len(spec.outputs)):
                                builder.line(f"_o{i}.append(None)")
                        with builder.block("else:"):
                            with builder.block("for _row in _rres:"):
                                builder.line("lineage.append(_idx)")
                                for i in range(len(spec.outputs)):
                                    builder.line(f"_o{i}.append(_row[{i}])")
            else:
                with builder.block("for _idx in range(size):"):
                    builder.line("if not (_idx & 255): _gov_check()")
                    for i, (name, _) in enumerate(spec.inputs):
                        builder.line(f"{name} = c_to_python(_c{i}[_idx], _t{i})")
                    self._emit_stream_stages(
                        builder, list(spec.stages), early_exit="continue",
                        seen="_seen", tail=_batch_tail,
                    )
            outs = ", ".join(f"_o{i}" for i in range(len(spec.outputs)))
            builder.line(f"return lineage, [{outs}]")
        if capture:
            builder.line()
            with builder.block(
                f"def {entry}__reinterp_expand(c_inputs, in_types, _idx):"
            ):
                builder.line(
                    '"""Interpreted single-row replay (deopt path): '
                    'returns converted out-row tuples."""'
                )
                builder.line("_rows = []")
                for i, (name, _) in enumerate(spec.inputs):
                    builder.line(
                        f"{name} = c_to_python(c_inputs[{i}][_idx], "
                        f"in_types[{i}])"
                    )

                def _reinterp_tail(b: SourceBuilder) -> None:
                    parts = ", ".join(
                        f"python_to_c({out}, _OUT_TYPES[{i}])"
                        for i, out in enumerate(spec.outputs)
                    )
                    trailing = "," if len(spec.outputs) == 1 else ""
                    b.line(f"_rows.append(({parts}{trailing}))")

                self._emit_stream_stages(
                    builder, list(spec.stages), early_exit="return _rows",
                    seen="_seen", tail=_reinterp_tail, force_call=True,
                )
                builder.line("return _rows")
        self.inlined, self.called = counters

    def _emit_table_loop(
        self, builder: SourceBuilder, loop_header: str, stages: List[Stage],
        yield_prefix: str = "",
    ) -> None:
        spec = self.spec
        with builder.block(loop_header):
            self._emit_stream_stages(
                builder, stages, early_exit="continue", seen="_seen",
                yield_outputs=True, yield_prefix=yield_prefix,
            )

    def _emit_stream_stages(
        self,
        builder: SourceBuilder,
        stages: Sequence[Stage],
        *,
        early_exit: str,
        seen: str,
        yield_outputs: bool = False,
        yield_prefix: str = "",
        tail=None,
        force_call: bool = False,
    ) -> None:
        """Emit a run of stream stages inside a per-row context.

        Table UDF stages open nested ``for`` loops (generator composition
        driven per input row — the expand-style pipelining of section
        4.2.3), so everything downstream of a table stage nests inside
        its loop.  ``tail`` (a callback receiving the builder) is emitted
        inside the deepest loop, after all stages.
        """
        spec = self.spec
        depth_opened = 0
        for stage in stages:
            if isinstance(stage, ScalarUdfStage):
                self._emit_scalar(builder, stage, force_call=force_call)
            elif isinstance(stage, ExprStage):
                self._emit_expr(builder, stage)
            elif isinstance(stage, FilterStage):
                condition = self._emit_filter_condition(stage)
                with builder.block(f"if not {condition}:"):
                    builder.line(early_exit)
            elif isinstance(stage, DistinctStage):
                key = ", ".join(stage.args)
                builder.line(f"_key = ({key}{',' if len(stage.args) == 1 else ''})")
                with builder.block(f"if _key in {seen}:"):
                    builder.line(early_exit)
                builder.line(f"{seen}.add(_key)")
            elif isinstance(stage, TableUdfStage):
                bound = f"_t_{stage.udf.name}"
                self.namespace[bound] = stage.udf.func
                self.called += 1
                row = ", ".join(stage.args)
                row_trailing = "," if len(stage.args) == 1 else ""
                consts = "".join(f", {c!r}" for c in stage.const_args)
                outs = ", ".join(stage.outs)
                outs_trailing = "," if len(stage.outs) == 1 else ""
                builder.line(
                    f"_gen = {bound}(iter([({row}{row_trailing})]){consts})"
                )
                builder.line(f"for ({outs}{outs_trailing}) in _gen:")
                builder.indent()
                depth_opened += 1
                # early exits inside a table loop skip that row only
                early_exit = "continue"
            elif isinstance(stage, AggregateStage):
                raise JitError("aggregate stage in stream context")
        if yield_outputs:
            out = ", ".join(spec.outputs)
            trailing = "," if len(spec.outputs) == 1 else ""
            builder.line(f"yield ({yield_prefix}{out}{trailing})")
        if tail is not None:
            tail(builder)
        for _ in range(depth_opened):
            builder.dedent()

    def _table_after_aggregate_source(self) -> Tuple[str, str]:
        """TF8: aggregate followed by a table UDF -> table-kind pipeline
        that aggregates the whole input, then expands the final value."""
        spec = self.spec
        agg_index = next(
            i for i, s in enumerate(spec.stages) if isinstance(s, AggregateStage)
        )
        agg_stage = spec.stages[agg_index]
        assert isinstance(agg_stage, AggregateStage)
        pre = list(spec.stages[:agg_index])
        post = list(spec.stages[agg_index + 1:])
        if not any(isinstance(s, TableUdfStage) for s in post):
            raise JitError("TF8 pipelines need a table stage after the aggregate")

        if agg_stage.udf is not None:
            self.namespace[f"_agg_{agg_stage.udf.name}"] = agg_stage.udf.func
            state_expr = f"_agg_{agg_stage.udf.name}()"
        else:
            state_expr = f"_aggstate_{agg_stage.builtin}()"

        builder = SourceBuilder()
        entry = spec.name
        with builder.block(f"def {entry}(inp_datagen):"):
            builder.line(
                f'"""JIT-fused table UDF with inner aggregation (TF8: '
                f'{" -> ".join(_fused_from(spec))})."""'
            )
            builder.line(f"_state = {state_expr}")
            if any(isinstance(s, DistinctStage) for s in pre):
                builder.line("_seen = set()")
            input_tuple = ", ".join(name for name, _ in spec.inputs)
            trailing = "," if len(spec.inputs) == 1 else ""
            def _agg_tail(b: SourceBuilder) -> None:
                guard = self._null_guard(agg_stage.args)
                if guard:
                    with b.block(f"if {guard}:"):
                        b.line("continue")
                b.line(f"_state.step({', '.join(agg_stage.args)})")

            with builder.block(f"for ({input_tuple}{trailing}) in inp_datagen:"):
                self._emit_stream_stages(
                    builder, pre, early_exit="continue", seen="_seen",
                    tail=_agg_tail,
                )
            builder.line(f"{agg_stage.out} = _state.final()")
            self._emit_stream_stages(
                builder, post, early_exit="continue", seen="_seen",
                yield_outputs=True,
            )
        return builder.source(), entry
