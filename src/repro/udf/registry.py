"""The UDF registry — the engine-facing half of the registration mechanism.

Registering a UDF (a) builds its wrapper via :mod:`repro.udf.wrappers`,
(b) stores the definition for name resolution during planning, and (c)
produces the engine-specific ``CREATE FUNCTION`` statement through the
dialect layer (section 5.5).  Invocation goes through the registry so that
execution statistics are recorded into the stateful
:class:`~repro.udf.state.StatsStore` (section 5.2.2).

QFusor registers its runtime-generated *fused* UDFs through exactly the
same path (section 5.3), so the registry is also the fused-UDF registry.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import (
    QueryBudgetExceededError,
    QueryCancelledError,
    UDF_INVOCATION_ERRORS,
    UdfRegistrationError,
)
from ..obs import DEFAULT_BYTES_BUCKETS, DEFAULT_SIZE_BUCKETS, METRICS, OBS
from ..obs import tracer as obs_tracer
from ..cache.fingerprint import definition_fingerprint
from ..resilience.breaker import BreakerBoard
from ..resilience.governor import udf_batch_guard
from ..storage.column import Column
from ..types import SqlType
from . import boundary
from .definition import UdfDefinition, UdfKind
from .state import StatsStore
from .wrappers import GeneratedWrapper, build_wrapper

__all__ = ["UdfRegistry", "RegisteredUdf"]


class RegisteredUdf:
    """A UDF plus its compiled wrapper and the registry that owns it."""

    __slots__ = (
        "definition", "wrapper", "_registry",
        "_obs_calls", "_obs_latency", "_obs_rows",
    )

    def __init__(self, definition: UdfDefinition, wrapper: GeneratedWrapper, registry):
        self.definition = definition
        self.wrapper = wrapper
        self._registry = registry
        # Lazily-bound metric instruments (one dict lookup saved per call).
        self._obs_calls = None
        self._obs_latency = None
        self._obs_rows = None

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def kind(self) -> UdfKind:
        return self.definition.kind

    @property
    def version(self) -> int:
        """The definition version (bumped on changed re-registration)."""
        return self._registry.version_of(self.definition.name)

    # ------------------------------------------------------------------
    # Engine-facing invocation (columns in, columns out).  All stats
    # observation happens here — this is the "stateful" part.
    # ------------------------------------------------------------------

    def _cross(self, payload):
        """Round-trip a payload through the out-of-process channel."""
        channel = self._registry.channel
        return payload if channel is None else channel.transfer(payload)

    def _pool(self):
        """The adapter's process-isolation worker pool, when routing.

        When a pool is attached the batch executes in a real worker
        process (the pipe *is* the serialization boundary), so the
        modeled pickle channel is skipped; the pool's degrade paths fall
        back to plain in-process execution through the ``fallback``
        closures below.
        """
        return self._registry.workers

    def _guarded(self, runner: Callable[[], Any], size: int,
                 arm_cap: bool = True) -> Tuple[Any, float]:
        """Run one boundary invocation under governance.

        Publishes the UDF to the watchdog (arming the per-batch deadline
        when one is configured), times the call, and feeds the outcome to
        the per-UDF circuit breaker.  Cancellation and budget interrupts
        are *not* charged as breaker failures — the UDF did nothing
        wrong — but batch timeouts and ordinary exceptions are.
        """
        board = self._registry.breakers
        # Spans cover vectorized batches only (size > 1): the
        # tuple-at-a-time path crosses this boundary once per row, which
        # would bloat traces by orders of magnitude — per-row calls are
        # aggregated into the metrics instead.
        sp = (
            obs_tracer.span_start(f"udf:{self.name}", "udf_batch", rows=size)
            if OBS.tracing and size > 1 else None
        )
        start = time.perf_counter()
        try:
            with udf_batch_guard(self.name, self.definition.fused_from,
                                 arm_cap=arm_cap):
                result = runner()
        except BaseException as exc:
            elapsed = time.perf_counter() - start
            if not isinstance(exc, (QueryCancelledError, QueryBudgetExceededError)):
                board.record_failure(
                    self.name,
                    elapsed,
                    tuples=size,
                    fused_from=self.definition.fused_from,
                )
            self._observe(elapsed, size, error=type(exc).__name__)
            if sp is not None:
                obs_tracer.span_end(sp, error=type(exc).__name__)
            raise
        elapsed = time.perf_counter() - start
        board.record_success(self.name, elapsed, tuples=size,
                             fused_from=self.definition.fused_from)
        self._observe(elapsed, size)
        if sp is not None:
            obs_tracer.span_end(sp)
        return result, elapsed

    def _observe(self, elapsed: float, size: int,
                 error: Optional[str] = None) -> None:
        """Record one boundary invocation into the metrics registry."""
        if not OBS.metrics:
            return
        if self._obs_calls is None:
            self._obs_calls = METRICS.counter(
                "repro_udf_calls_total", udf=self.name
            )
            self._obs_latency = METRICS.histogram(
                "repro_udf_call_seconds", udf=self.name
            )
            self._obs_rows = METRICS.histogram(
                "repro_udf_batch_rows", DEFAULT_SIZE_BUCKETS, udf=self.name
            )
        self._obs_calls.inc()
        self._obs_latency.observe(elapsed)
        self._obs_rows.observe(size)
        if error is not None:
            METRICS.counter(
                "repro_udf_errors_total", udf=self.name, error=error
            ).inc()

    def call_scalar(self, inputs: Sequence[Column], size: int) -> Column:
        """Run a scalar UDF over aligned input columns."""
        memo = self._registry.memo
        memo_key = None
        if memo is not None:
            memo_key = memo.batch_key(self, inputs, size)
            if memo_key is not None:
                hit, cached = memo.lookup(memo_key)
                if hit:
                    return cached
        pool = self._pool()
        policy = self._registry.columnar
        if (
            policy is not None
            and policy.enabled
            and pool is None
            and self._registry.channel is None
        ):
            from ..columnar import kernels

            if kernels.eligible(self.definition):
                column, elapsed = self._guarded(
                    lambda: kernels.scalar_batch(
                        self.definition, inputs, size,
                        chunk=policy.morsel_size,
                    ),
                    size,
                )
                if column is not None:
                    self._registry.stats.observe(self.name, size, size, elapsed)
                    if memo_key is not None:
                        memo.put(memo_key, column)
                    return column
                # Kernel deopt: re-run the batch on the classic path below
                # (row-error policies and exact error semantics live there).
        if pool is not None:
            raw = [boundary.column_to_c(col) for col in inputs]
            c_result, elapsed = self._guarded(
                lambda: pool.run_batch(
                    self.definition, "scalar", (raw, size),
                    fallback=lambda: self._cross(
                        self.wrapper.entry(self._cross(raw), size)
                    ),
                    size=size,
                ),
                size,
                arm_cap=False,
            )
        else:
            c_inputs = self._cross(
                [boundary.column_to_c(col) for col in inputs]
            )
            c_result, elapsed = self._guarded(
                lambda: self._cross(self.wrapper.entry(c_inputs, size)), size
            )
        self._registry.stats.observe(self.name, size, size, elapsed)
        column = boundary.c_values_to_column(
            self.name, self.definition.signature.return_types[0], c_result
        )
        if memo_key is not None:
            memo.put(memo_key, column)
        return column

    def call_scalar_value(self, args: Sequence[Any]) -> Any:
        """Run a scalar UDF once on already-converted Python values.

        This is the tuple-at-a-time invocation path: the caller performs
        the per-value boundary crossings, so each row pays the full FFI
        round trip (the SQLite-style overhead the paper measures).
        """
        from ..resilience import runtime

        memo = self._registry.memo
        memo_key = None
        if memo is not None:
            memo_key = memo.value_key(self, args)
            if memo_key is not None:
                hit, cached = memo.lookup(memo_key)
                if hit:
                    return cached
        pool = self._pool()

        def invoke() -> Any:
            if pool is not None:
                return pool.run_batch(
                    self.definition, "value", tuple(args),
                    fallback=lambda: self.definition.func(*args),
                )
            return self.definition.func(*args)

        def run() -> Any:
            try:
                if runtime.FAULTS.armed:
                    runtime.FAULTS.injector.fire_row(
                        (self.name,) + tuple(self.definition.fused_from),
                        None,
                        "fused" if self.definition.is_fused else "interp",
                    )
                return invoke()
            except UDF_INVOCATION_ERRORS as exc:
                return runtime.handle_value_error(
                    self.name,
                    runtime.policy(),
                    exc,
                    lambda: self.definition.func(*args),
                    args,
                )

        result, elapsed = self._guarded(run, 1, arm_cap=pool is None)
        self._registry.stats.observe(self.name, 1, 1, elapsed)
        if memo_key is not None:
            memo.put(memo_key, result)
        return result

    def call_aggregate(
        self,
        inputs: Sequence[Column],
        size: int,
        group_ids: Sequence[int],
        num_groups: int,
    ) -> List[Any]:
        """Run an aggregate UDF over grouped input columns.

        Returns one engine-side value per group.
        """
        pool = self._pool()
        policy = self._registry.columnar
        if (
            policy is not None
            and policy.enabled
            and pool is None
            and self._registry.channel is None
        ):
            from ..columnar import kernels

            if kernels.aggregate_eligible(self.definition):
                values, elapsed = self._guarded(
                    lambda: kernels.aggregate_batch(
                        self.definition, inputs, size, group_ids,
                        num_groups, chunk=policy.morsel_size,
                    ),
                    size,
                )
                if values is not None:
                    self._registry.stats.observe(
                        self.name, size, num_groups, elapsed
                    )
                    return values
                # Kernel deopt: classic path below owns error semantics.
        if pool is not None:
            raw = [boundary.column_to_c(col) for col in inputs]
            c_result, elapsed = self._guarded(
                lambda: pool.run_batch(
                    self.definition, "aggregate",
                    (raw, size, tuple(group_ids), num_groups),
                    fallback=lambda: self._cross(
                        self.wrapper.entry(
                            self._cross(raw), size, group_ids, num_groups
                        )
                    ),
                    size=size,
                ),
                size,
                arm_cap=False,
            )
        else:
            c_inputs = self._cross(
                [boundary.column_to_c(col) for col in inputs]
            )
            c_result, elapsed = self._guarded(
                lambda: self._cross(
                    self.wrapper.entry(c_inputs, size, group_ids, num_groups)
                ),
                size,
            )
        self._registry.stats.observe(self.name, size, num_groups, elapsed)
        out_type = self.definition.signature.return_types[0]
        return [boundary.c_to_engine(v, out_type) for v in c_result]

    def call_table(
        self, inputs: Sequence[Column], size: int, const_args: Sequence[Any] = ()
    ) -> List[Column]:
        """Run a table UDF in relation mode; returns its output columns."""
        in_types = tuple(col.sql_type for col in inputs)
        pool = self._pool()
        if pool is not None:
            raw = [boundary.column_to_c(col) for col in inputs]
            c_columns, elapsed = self._guarded(
                lambda: pool.run_batch(
                    self.definition, "table",
                    (raw, size, in_types, tuple(const_args)),
                    fallback=lambda: self._cross(
                        self.wrapper.entry(
                            self._cross(raw), size, in_types,
                            tuple(const_args),
                        )
                    ),
                    size=size,
                ),
                size,
                arm_cap=False,
            )
        else:
            c_inputs = self._cross(
                [boundary.column_to_c(col) for col in inputs]
            )
            c_columns, elapsed = self._guarded(
                lambda: self._cross(
                    self.wrapper.entry(
                        c_inputs, size, in_types, tuple(const_args)
                    )
                ),
                size,
            )
        out_rows = len(c_columns[0]) if c_columns else 0
        self._registry.stats.observe(self.name, size, out_rows, elapsed)
        return [
            boundary.c_values_to_column(name, sql_type, values)
            for name, sql_type, values in zip(
                self.definition.out_columns,
                self.definition.signature.return_types,
                c_columns,
            )
        ]

    def call_table_expand(
        self, inputs: Sequence[Column], size: int, const_args: Sequence[Any] = ()
    ) -> Tuple[List[int], List[Column]]:
        """Run a table UDF in expand mode; returns (row lineage, columns)."""
        in_types = tuple(col.sql_type for col in inputs)
        pool = self._pool()
        if pool is not None:
            raw = [boundary.column_to_c(col) for col in inputs]
            (lineage, c_columns), elapsed = self._guarded(
                lambda: pool.run_batch(
                    self.definition, "table_expand",
                    (raw, size, in_types, tuple(const_args)),
                    fallback=lambda: self._cross(
                        self.wrapper.expand_entry(
                            self._cross(raw), size, in_types,
                            tuple(const_args),
                        )
                    ),
                    size=size,
                ),
                size,
                arm_cap=False,
            )
        else:
            c_inputs = self._cross(
                [boundary.column_to_c(col) for col in inputs]
            )
            (lineage, c_columns), elapsed = self._guarded(
                lambda: self._cross(
                    self.wrapper.expand_entry(
                        c_inputs, size, in_types, tuple(const_args)
                    )
                ),
                size,
            )
        self._registry.stats.observe(self.name, size, len(lineage), elapsed)
        columns = [
            boundary.c_values_to_column(name, sql_type, values)
            for name, sql_type, values in zip(
                self.definition.out_columns,
                self.definition.signature.return_types,
                c_columns,
            )
        ]
        return list(lineage), columns


class ProcessChannel:
    """Models an out-of-process UDF boundary (PostgreSQL PL/Python style).

    Every batch of arguments and results crosses a serialized channel —
    a real ``pickle`` round trip — reproducing the inter-process
    communication overhead the paper measures on engines that run UDFs
    in separate processes.
    """

    def __init__(self):
        import pickle

        self._dumps = pickle.dumps
        self._loads = pickle.loads
        self.crossings = 0

    def transfer(self, payload: Any) -> Any:
        self.crossings += 1
        blob = self._dumps(payload)
        if OBS.metrics:
            METRICS.histogram(
                "repro_boundary_bytes", DEFAULT_BYTES_BUCKETS, channel="pickle"
            ).observe(len(blob))
        return self._loads(blob)


class UdfRegistry:
    """Registry of user and fused UDFs for one engine connection.

    ``channel`` (optional) models an out-of-process execution boundary:
    when set, every UDF invocation's inputs and outputs take a serialized
    round trip through it.
    """

    def __init__(
        self,
        stats: Optional[StatsStore] = None,
        channel: Optional[ProcessChannel] = None,
        workers: Optional[Any] = None,
    ):
        self._udfs: Dict[str, RegisteredUdf] = {}
        self.stats = stats if stats is not None else StatsStore()
        self.channel = channel
        #: Definition versions: bumped when a re-registration changes the
        #: definition's content fingerprint (body, signature, flags).
        #: Versions survive drops so a drop+re-add of a *changed* body
        #: still rotates memo/result cache keys.
        self._versions: Dict[str, int] = {}
        self._def_fps: Dict[str, str] = {}
        self._version_listeners: List[Callable[[str, int], None]] = []
        #: UDF memoization cache (:class:`repro.cache.memo.UdfMemoCache`),
        #: attached by the CacheManager when the tier is enabled.
        self.memo: Optional[Any] = None
        #: Process-isolation worker pool
        #: (:class:`repro.resilience.workers.WorkerPool`); when set, UDF
        #: batches execute in supervised worker processes instead of
        #: round-tripping the modeled pickle channel.
        self.workers = workers
        #: Columnar-plane policy (:class:`repro.columnar.ColumnarPolicy`);
        #: when attached and enabled, eligible scalar batches run on the
        #: batch-at-a-time kernel path instead of the per-row wrapper.
        self.columnar: Optional[Any] = None
        #: Per-UDF circuit breakers (disabled until configured by QFusor).
        self.breakers = BreakerBoard()
        #: CREATE FUNCTION statements issued so far (for inspection).
        self.create_statements: List[str] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(
        self,
        udf: Any,
        *,
        replace: bool = False,
        dialect: Optional[Any] = None,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> RegisteredUdf:
        """Register a decorated UDF (or a raw :class:`UdfDefinition`).

        Accepts the object produced by the ``@scalar_udf`` /
        ``@aggregate_udf`` / ``@table_udf`` decorators.  Builds the
        wrapper, records the CREATE FUNCTION statement, and makes the UDF
        resolvable by the planner.

        ``deterministic`` overrides the decorator's annotation at
        registration time (the CREATE FUNCTION ... DETERMINISTIC clause);
        passing it counts as an explicit annotation for cache
        eligibility.  ``version`` pins the definition version; without
        it, versions advance automatically whenever a re-registration
        changes the definition's content fingerprint.
        """
        definition = self._definition_of(udf)
        if deterministic is not None:
            definition = dataclasses.replace(
                definition,
                deterministic=bool(deterministic),
                deterministic_annotated=bool(deterministic),
            )
        key = definition.name
        if key in self._udfs and not replace:
            raise UdfRegistrationError(f"UDF {definition.name!r} already registered")
        wrapper = build_wrapper(definition)
        registered = RegisteredUdf(definition, wrapper, self)
        self._udfs[key] = registered
        self._advance_version(key, definition, version)
        if dialect is not None:
            self.create_statements.append(dialect.create_function_sql(definition))
        else:
            self.create_statements.append(_generic_create_function(definition))
        return registered

    def register_many(self, udfs: Sequence[Any], *, replace: bool = False) -> None:
        """Register several decorated UDFs."""
        for udf in udfs:
            self.register(udf, replace=replace)

    # ------------------------------------------------------------------
    # Definition versioning
    # ------------------------------------------------------------------

    def _advance_version(
        self, key: str, definition: UdfDefinition, pinned: Optional[int]
    ) -> None:
        fp = definition_fingerprint(definition)
        old_fp = self._def_fps.get(key)
        old_version = self._versions.get(key)
        if pinned is not None:
            new_version = pinned
        elif old_version is None:
            new_version = 1
        elif fp != old_fp:
            new_version = old_version + 1
        else:
            new_version = old_version
        self._def_fps[key] = fp
        if new_version != old_version:
            self._versions[key] = new_version
            for listener in self._version_listeners:
                listener(key, new_version)

    def version_of(self, name: str) -> int:
        """The current definition version (0 for never-registered names)."""
        return self._versions.get(name.lower(), 0)

    def add_version_listener(self, callback: Callable[[str, int], None]) -> None:
        """Subscribe to version bumps: ``callback(name, new_version)``."""
        self._version_listeners.append(callback)

    def fingerprint_of(self, name: str) -> Optional[str]:
        """The current definition content fingerprint, or None."""
        return self._def_fps.get(name.lower())

    def restore_version(self, name: str, version: int, fingerprint: str) -> None:
        """Install a recovered definition version without firing
        listeners (recovery replays history, it doesn't make new).

        Re-registering the same body afterwards keeps the restored
        version (fingerprints match); re-registering a *changed* body
        advances past it — exactly the pre-crash behaviour, so cache
        keys never regress across a restart.
        """
        key = name.lower()
        if version > self._versions.get(key, 0):
            self._versions[key] = version
            self._def_fps[key] = fingerprint

    @staticmethod
    def _definition_of(udf: Any) -> UdfDefinition:
        if isinstance(udf, UdfDefinition):
            return udf
        definition = getattr(udf, "__udf__", None)
        if definition is None:
            raise UdfRegistrationError(
                f"{udf!r} is not a decorated UDF (use @scalar_udf / "
                f"@aggregate_udf / @table_udf)"
            )
        return definition

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, name: str) -> RegisteredUdf:
        try:
            return self._udfs[name.lower()]
        except KeyError:
            raise UdfRegistrationError(f"unknown UDF {name!r}") from None

    def lookup(self, name: str) -> Optional[RegisteredUdf]:
        return self._udfs.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._udfs

    def __iter__(self) -> Iterator[RegisteredUdf]:
        return iter(self._udfs.values())

    def names(self) -> List[str]:
        return list(self._udfs)

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._udfs:
            raise UdfRegistrationError(f"unknown UDF {name!r}")
        del self._udfs[key]


def _generic_create_function(definition: UdfDefinition) -> str:
    """A generic CREATE FUNCTION rendering used when no dialect is bound."""
    args = ", ".join(
        f"{name} {sql_type}"
        for name, sql_type in zip(
            definition.signature.arg_names, definition.signature.arg_types
        )
    )
    if definition.kind is UdfKind.TABLE:
        returns = "TABLE (" + ", ".join(
            f"{name} {sql_type}"
            for name, sql_type in zip(
                definition.out_columns, definition.signature.return_types
            )
        ) + ")"
    else:
        returns = str(definition.signature.return_types[0])
    return (
        f"CREATE FUNCTION {definition.name}({args}) RETURNS {returns} "
        f"LANGUAGE C AS 'qfusor_wrapper_{definition.name}'"
    )
