"""UDF definition objects — the unit the registry, optimizer and JIT share."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

from .signature import UdfSignature

__all__ = ["UdfKind", "UdfDefinition"]


class UdfKind(enum.Enum):
    """The three UDF types the paper supports (section 4.2)."""

    SCALAR = "scalar"
    AGGREGATE = "aggregate"
    TABLE = "table"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class UdfDefinition:
    """Everything the system knows about one registered UDF.

    Attributes
    ----------
    name:
        Registration name (lower-cased; SQL resolves case-insensitively).
    kind:
        Scalar, aggregate, or table.
    func:
        The user's Python callable: a function for scalar/table UDFs, a
        class implementing ``step``/``final`` for aggregate UDFs.
    signature:
        Input/output types.
    materializes_input:
        True when the UDF contains a blocking operation (e.g. a median, a
        transpose) that requires its whole input at once.  Blocks loop
        fusion per Table 2.
    out_columns:
        Output column names for table UDFs.
    strict:
        Strict scalar UDFs (the default) return NULL for NULL arguments
        without being invoked (PostgreSQL STRICT semantics).  QFusor's
        fused scalar pipelines register non-strict: their generated
        bodies implement exact per-stage NULL semantics — a fused CASE
        may map NULL inputs to a value.
    deterministic:
        Allows the optimizer to reorder the UDF (F3) and cache traces.
    cost_hint:
        Optional developer-supplied cost-per-tuple hint (the
        CREATE FUNCTION cost option some engines offer, section 5.2.2).
    fused_from:
        For fused UDFs produced by QFusor: names of the original operators
        in pipeline order.  Empty for user-registered UDFs.
    """

    name: str
    kind: UdfKind
    func: Callable
    signature: UdfSignature
    materializes_input: bool = False
    out_columns: Tuple[str, ...] = ()
    strict: bool = True
    deterministic: bool = True
    #: True only when the author *explicitly* declared determinism
    #: (``deterministic=True`` at the decorator or at registration).
    #: ``deterministic`` above defaults True for legacy reordering
    #: behaviour, so memo/result caching gates on this stricter flag —
    #: unannotated UDFs are conservatively treated as impure for caching.
    deterministic_annotated: bool = False
    #: For generated (fused) table UDFs: a batch generator yielding
    #: ``(input_row_index, out...)`` tuples, letting expand-mode
    #: execution stream the whole input through one generator instead of
    #: instantiating one generator per row.
    lineage_func: Optional[Callable] = None
    #: For generated (fused) table UDFs: the fully JIT-generated expand
    #: wrapper ``(c_inputs, size, in_types) -> (lineage, out_lists)``
    #: with boundary conversions inlined into the fused loop.
    expand_batch_func: Optional[Callable] = None
    #: For generated (fused) scalar UDFs: the JIT-generated batch
    #: wrapper ``(c_inputs, size) -> result_list``.
    scalar_batch_func: Optional[Callable] = None
    cost_hint: Optional[float] = None
    fused_from: Tuple[str, ...] = ()

    def __post_init__(self):
        self.name = self.name.lower()
        if self.kind is UdfKind.TABLE and not self.out_columns:
            count = len(self.signature.return_types)
            self.out_columns = tuple(f"c{i}" for i in range(count))

    @property
    def is_fused(self) -> bool:
        return bool(self.fused_from)

    @property
    def arity(self) -> int:
        return self.signature.arity

    def __repr__(self) -> str:
        return f"UdfDefinition({self.name!r}, {self.kind}, {self.signature})"
