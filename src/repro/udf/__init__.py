"""UDF runtime: decorators, signatures, registry, boundary, wrappers, stats.

This package implements the paper's section 4 — the two key enablers of
QFusor: the UDF registration mechanism (4.1) and the UDF design
specifications (4.2) for scalar, aggregate (init-step-final classes), and
table (generator) UDFs, including complex data types handled at the
wrapper layer (4.2.4).
"""

from .decorators import scalar_udf, aggregate_udf, table_udf
from .definition import UdfDefinition, UdfKind
from .registry import UdfRegistry
from .signature import UdfSignature
from . import boundary

__all__ = [
    "scalar_udf", "aggregate_udf", "table_udf",
    "UdfDefinition", "UdfKind", "UdfRegistry", "UdfSignature", "boundary",
]
