"""The engine <-> UDF data boundary (CFFI stand-in).

The paper's wrappers cross a C <-> Python boundary: engine values must be
converted into Python objects before a UDF can touch them, and results
converted back (section 4.1); complex types additionally pay JSON
(de-)serialization (section 4.2.4).  QFusor's fusion removes the *interior*
crossings of a UDF pipeline.

This module is the reproduction of that boundary.  "C data" is modelled
as UTF-8 ``bytes`` for strings and serialized-then-encoded JSON for
complex values, so every crossing is real CPU work:

========  =======================  ==========================
SQL type  engine -> C              C -> Python
========  =======================  ==========================
TEXT      ``str.encode('utf-8')``  ``bytes.decode('utf-8')``
JSON      encode serialized text   decode + ``json.loads``
numeric   passthrough (counted)    passthrough (counted)
========  =======================  ==========================

Every crossing is counted in :data:`counters` so tests and the Figure 6c
benchmark can verify exactly which conversions fusion eliminated.

SQL NULL (``None``) passes through every conversion unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..resilience.runtime import FAULTS as _FAULTS
from ..storage import serde
from ..storage.column import Column
from ..types import SqlType

__all__ = [
    "counters", "BoundaryCounters",
    "engine_to_c", "c_to_python", "python_to_c", "c_to_engine",
    "column_to_c", "c_values_to_column",
    "column_to_python_batch", "python_batch_to_column",
]


@dataclass
class BoundaryCounters:
    """Counts of boundary crossings since the last reset."""

    engine_to_c: int = 0
    c_to_python: int = 0
    python_to_c: int = 0
    c_to_engine: int = 0
    serializations: int = 0
    deserializations: int = 0

    def reset(self) -> None:
        self.engine_to_c = 0
        self.c_to_python = 0
        self.python_to_c = 0
        self.c_to_engine = 0
        self.serializations = 0
        self.deserializations = 0

    @property
    def total_conversions(self) -> int:
        return (
            self.engine_to_c + self.c_to_python + self.python_to_c + self.c_to_engine
        )

    def snapshot(self) -> dict:
        """Copy of the counters as a plain dict."""
        return {
            "engine_to_c": self.engine_to_c,
            "c_to_python": self.c_to_python,
            "python_to_c": self.python_to_c,
            "c_to_engine": self.c_to_engine,
            "serializations": self.serializations,
            "deserializations": self.deserializations,
        }


#: Global crossing counters (reset in tests/benchmarks as needed).
counters = BoundaryCounters()


def engine_to_c(value: Any, sql_type: SqlType) -> Any:
    """Convert one engine-side value into its C buffer form."""
    counters.engine_to_c += 1
    if value is None:
        return None
    if sql_type is SqlType.TEXT or sql_type is SqlType.JSON:
        return value.encode("utf-8")
    return value


def c_to_python(value: Any, sql_type: SqlType) -> Any:
    """Convert one C buffer value into the Python object a UDF expects."""
    counters.c_to_python += 1
    if _FAULTS.armed:
        _FAULTS.injector.fire_boundary(sql_type)
    if value is None:
        return None
    if sql_type is SqlType.TEXT:
        return value.decode("utf-8")
    if sql_type is SqlType.JSON:
        counters.deserializations += 1
        return serde.deserialize(value.decode("utf-8"))
    return value


def python_to_c(value: Any, sql_type: SqlType) -> Any:
    """Convert a UDF result back into its C buffer form."""
    counters.python_to_c += 1
    if value is None:
        return None
    if sql_type is SqlType.TEXT:
        return value.encode("utf-8")
    if sql_type is SqlType.JSON:
        counters.serializations += 1
        return serde.serialize(value).encode("utf-8")
    return value


def c_to_engine(value: Any, sql_type: SqlType) -> Any:
    """Convert one C buffer value into the engine's storage form."""
    counters.c_to_engine += 1
    if value is None:
        return None
    if sql_type is SqlType.TEXT or sql_type is SqlType.JSON:
        return value.decode("utf-8")
    return value


def column_to_c(column: Column) -> List[Any]:
    """Bulk-convert a column into a list of C buffer values."""
    sql_type = column.sql_type
    values = column.to_list()
    counters.engine_to_c += len(values)
    if sql_type is SqlType.TEXT or sql_type is SqlType.JSON:
        return [None if v is None else v.encode("utf-8") for v in values]
    return values


def c_values_to_column(name: str, sql_type: SqlType, values: Sequence[Any]) -> Column:
    """Bulk-convert C buffer values back into an engine column."""
    counters.c_to_engine += len(values)
    if sql_type is SqlType.TEXT or sql_type is SqlType.JSON:
        decoded = [None if v is None else v.decode("utf-8") for v in values]
        return Column(name, sql_type, decoded, validate=False)
    return Column(name, sql_type, list(values), validate=True)


# ----------------------------------------------------------------------
# Columnar batch crossings (the typed-buffer data plane)
# ----------------------------------------------------------------------
#
# The kernel path crosses the boundary once per *column* instead of once
# per value: the whole typed buffer is handed over in one crossing.
# TEXT's classic encode→decode round trip is the identity, so values
# pass straight through; JSON still pays its real per-value serde work —
# batching removes crossings, never the modeled serialization cost.


def column_to_python_batch(column: Column) -> List[Any]:
    """One engine→Python crossing for a whole column."""
    counters.engine_to_c += 1
    counters.c_to_python += 1
    values = column.to_list()
    if column.sql_type is SqlType.JSON:
        counters.deserializations += sum(1 for v in values if v is not None)
        return serde.deserialize_values(values)
    return values


def python_batch_to_column(
    name: str, sql_type: SqlType, values: List[Any]
) -> Optional[Column]:
    """One Python→engine crossing for a whole result column.

    Returns ``None`` when the values fail the trusted type scan of
    :func:`repro.columnar.buffer.page_from_values` — the caller must
    re-run on the classic path, whose per-value coercion owns the error
    semantics.
    """
    from ..columnar.buffer import PageTypeError, page_from_values

    counters.python_to_c += 1
    counters.c_to_engine += 1
    if sql_type is SqlType.JSON:
        counters.serializations += sum(1 for v in values if v is not None)
        values = serde.serialize_values(values)
    try:
        return page_from_values(name, sql_type, values).to_column()
    except PageTypeError:
        return None
