"""The developer-facing UDF decorators (paper section 4.1).

Example::

    @scalar_udf
    def lower(val: str) -> str:
        return val.lower()

    @aggregate_udf
    class sumint:
        def __init__(self):
            self.total = 0
        def step(self, value: int):
            self.total += value
        def final(self) -> int:
            return self.total

    @table_udf(output=("token",), types=(str,))
    def tokens(inp_datagen):
        for (text,) in inp_datagen:
            for token in text.split():
                yield (token,)

Decorating does *not* register the UDF with an engine; it attaches a
:class:`~repro.udf.definition.UdfDefinition` (as ``__udf__``) that any
:class:`~repro.udf.registry.UdfRegistry` can pick up.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Optional, Sequence, Tuple, Union

from ..errors import UdfRegistrationError
from ..types import SqlType
from .definition import UdfDefinition, UdfKind
from .signature import UdfSignature, infer_signature

__all__ = ["scalar_udf", "aggregate_udf", "table_udf"]


def scalar_udf(
    func: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    args: Optional[Sequence[Any]] = None,
    returns: Optional[Any] = None,
    deterministic: Optional[bool] = None,
    cost: Optional[float] = None,
):
    """Mark a function as a scalar UDF: one output value per input row.

    ``deterministic`` is tri-state: ``True`` declares purity (enables
    reordering *and* memo/result caching), ``False`` forbids reordering,
    and the default ``None`` keeps the legacy reorder-friendly behaviour
    while leaving the UDF ineligible for caching.
    """

    def wrap(target: Callable) -> Callable:
        return_types = None if returns is None else _as_sequence(returns)
        signature = infer_signature(target, arg_types=args, return_types=return_types)
        det, annotated = _resolve_deterministic(deterministic)
        target.__udf__ = UdfDefinition(
            name=name or target.__name__,
            kind=UdfKind.SCALAR,
            func=target,
            signature=signature,
            deterministic=det,
            deterministic_annotated=annotated,
            cost_hint=cost,
        )
        return target

    return wrap if func is None else wrap(func)


def aggregate_udf(
    cls: Optional[type] = None,
    *,
    name: Optional[str] = None,
    args: Optional[Sequence[Any]] = None,
    returns: Optional[Any] = None,
    materializes_input: bool = False,
    deterministic: Optional[bool] = None,
    cost: Optional[float] = None,
):
    """Mark a class as an aggregate UDF using the init-step-final model.

    The class must define ``step(self, *values)`` and ``final(self)``;
    ``__init__`` plays the role of ``init``.  Set ``materializes_input``
    for blocking aggregates (e.g. median) — this disables loop fusion
    with upstream table UDFs (Table 2).
    """

    def wrap(target: type) -> type:
        if not inspect.isclass(target):
            raise UdfRegistrationError("aggregate UDFs must be classes")
        step = getattr(target, "step", None)
        final = getattr(target, "final", None)
        if not callable(step) or not callable(final):
            raise UdfRegistrationError(
                f"aggregate UDF {target.__name__!r} must define step() and final()"
            )
        return_types = None
        if returns is not None:
            return_types = _as_sequence(returns)
        signature = _aggregate_signature(target, args, return_types)
        det, annotated = _resolve_deterministic(deterministic)
        target.__udf__ = UdfDefinition(
            name=name or target.__name__,
            kind=UdfKind.AGGREGATE,
            func=target,
            signature=signature,
            materializes_input=materializes_input,
            deterministic=det,
            deterministic_annotated=annotated,
            cost_hint=cost,
        )
        return target

    return wrap if cls is None else wrap(cls)


def table_udf(
    func: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    args: Optional[Sequence[Any]] = None,
    output: Optional[Sequence[str]] = None,
    types: Optional[Sequence[Any]] = None,
    materializes_input: bool = False,
    deterministic: Optional[bool] = None,
    cost: Optional[float] = None,
):
    """Mark a generator function as a table UDF.

    The function receives an input generator (``inp_datagen``) yielding
    input rows as tuples, followed by any constant arguments, and must
    ``yield`` output rows as tuples — the fully pipelined model of
    section 4.2.3.  ``output`` names the output columns and ``types``
    gives their SQL types.
    """

    def wrap(target: Callable) -> Callable:
        if not inspect.isgeneratorfunction(target):
            raise UdfRegistrationError(
                f"table UDF {target.__name__!r} must be a generator function "
                f"(use yield, not return)"
            )
        parameters = list(inspect.signature(target).parameters.values())
        if not parameters:
            raise UdfRegistrationError(
                f"table UDF {target.__name__!r} must accept an input generator "
                f"as its first parameter"
            )
        const_params = parameters[1:]
        arg_names = tuple(p.name for p in const_params)
        if args is not None:
            declared = tuple(_to_sql_type(t) for t in args)
        else:
            declared = tuple(
                _to_sql_type(p.annotation) if p.annotation is not p.empty else SqlType.TEXT
                for p in const_params
            )
        if types is not None:
            return_types = tuple(_to_sql_type(t) for t in types)
        else:
            return_types = (SqlType.TEXT,)
        out_columns = tuple(output) if output else tuple(
            f"c{i}" for i in range(len(return_types))
        )
        if len(out_columns) != len(return_types):
            raise UdfRegistrationError(
                f"table UDF {target.__name__!r}: {len(out_columns)} output names "
                f"but {len(return_types)} output types"
            )
        signature = UdfSignature(arg_names, declared, return_types)
        det, annotated = _resolve_deterministic(deterministic)
        target.__udf__ = UdfDefinition(
            name=name or target.__name__,
            kind=UdfKind.TABLE,
            func=target,
            signature=signature,
            materializes_input=materializes_input,
            deterministic=det,
            deterministic_annotated=annotated,
            out_columns=out_columns,
            cost_hint=cost,
        )
        return target

    return wrap if func is None else wrap(func)


def _resolve_deterministic(flag: Optional[bool]) -> Tuple[bool, bool]:
    """Map the tri-state ``deterministic`` flag to ``(deterministic,
    deterministic_annotated)``: None keeps the legacy reorderable default
    without opting into caching."""
    if flag is None:
        return True, False
    return bool(flag), bool(flag)


def _as_sequence(value: Any) -> Sequence[Any]:
    if isinstance(value, (list, tuple)):
        return value
    return (value,)


def _to_sql_type(annotation: Any) -> SqlType:
    from ..types import sql_type_for_python

    return sql_type_for_python(annotation)


def _aggregate_signature(
    cls: type,
    args: Optional[Sequence[Any]],
    return_types: Optional[Sequence[Any]],
) -> UdfSignature:
    step = cls.step
    parameters = list(inspect.signature(step).parameters.values())[1:]  # drop self
    names = tuple(p.name for p in parameters)
    if args is not None:
        arg_types = tuple(_to_sql_type(t) for t in args)
    else:
        arg_types = tuple(
            _to_sql_type(p.annotation) if p.annotation is not p.empty else SqlType.TEXT
            for p in parameters
        )
    if return_types is not None:
        returns = tuple(_to_sql_type(t) for t in return_types)
    else:
        annotation = getattr(cls.final, "__annotations__", {}).get("return")
        returns = (
            (_to_sql_type(annotation),) if annotation is not None else (SqlType.TEXT,)
        )
    return UdfSignature(names, arg_types, returns)
