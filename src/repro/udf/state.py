"""Stateful UDF execution statistics (paper section 5.2.2).

The fusion optimizer needs per-UDF cost estimates, but engines expose
little about UDF internals.  QFusor therefore keeps a *lightweight
dictionary of average execution statistics* for each UDF — execution time
per tuple and selectivity — refined after every execution thanks to the
stateful UDF mechanism, and coarsened into *estimate buckets* rather than
precise values.

The profiler below follows the CherryPick-inspired Bayesian scheme the
paper describes: each UDF's per-tuple cost is modelled as a Gaussian
posterior updated from noisy observations, balancing the prior (a cold
start heuristic) against accumulated evidence.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["UdfRuntimeStats", "BayesianCostModel", "StatsStore", "COST_BUCKETS"]

#: Coarse-grained cost buckets (seconds/tuple): the optimizer reasons in
#: buckets, not exact values (section 5.2.2).
COST_BUCKETS: Tuple[float, ...] = (1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2)


def bucketize(cost_per_tuple: float) -> float:
    """Snap a measured per-tuple cost onto the nearest coarse bucket."""
    if cost_per_tuple <= 0:
        return COST_BUCKETS[0]
    best = min(COST_BUCKETS, key=lambda b: abs(math.log10(b) - math.log10(cost_per_tuple)))
    return best


@dataclass
class UdfRuntimeStats:
    """Accumulated execution statistics for one UDF."""

    calls: int = 0
    tuples_in: int = 0
    tuples_out: int = 0
    total_time: float = 0.0

    @property
    def time_per_tuple(self) -> Optional[float]:
        if self.tuples_in == 0:
            return None
        return self.total_time / self.tuples_in

    @property
    def selectivity(self) -> Optional[float]:
        """Output rows per input row (``None`` before any observation)."""
        if self.tuples_in == 0:
            return None
        return self.tuples_out / self.tuples_in

    def observe(self, tuples_in: int, tuples_out: int, elapsed: float) -> None:
        self.calls += 1
        self.tuples_in += tuples_in
        self.tuples_out += tuples_out
        self.total_time += elapsed


class BayesianCostModel:
    """Gaussian posterior over a UDF's per-tuple cost.

    Works in log10 space (costs span orders of magnitude).  The prior is
    the cold-start heuristic; each observation shrinks the variance, so
    the model smoothly shifts from exploration (trust the prior) to
    exploitation (trust the measurements), the CherryPick-style behaviour
    the paper cites.
    """

    def __init__(self, prior_cost: float = 1e-5, prior_weight: float = 1.0):
        self._prior_mean = math.log10(prior_cost)
        self._prior_weight = prior_weight
        self._sum = 0.0
        self._sum_sq = 0.0
        self._count = 0

    def observe(self, cost_per_tuple: float) -> None:
        if cost_per_tuple <= 0:
            return
        value = math.log10(cost_per_tuple)
        self._sum += value
        self._sum_sq += value * value
        self._count += 1

    @property
    def observations(self) -> int:
        return self._count

    def posterior_mean(self) -> float:
        """Posterior mean of log10(cost/tuple)."""
        weight = self._prior_weight
        total = weight * self._prior_mean + self._sum
        return total / (weight + self._count)

    def posterior_std(self) -> float:
        """Posterior standard deviation of log10(cost/tuple)."""
        if self._count < 2:
            return 1.0 / math.sqrt(1.0 + self._count)
        mean = self._sum / self._count
        var = max(self._sum_sq / self._count - mean * mean, 1e-12)
        return math.sqrt(var / self._count)

    def expected_cost(self) -> float:
        """Posterior-mean cost per tuple in seconds, snapped to a bucket."""
        return bucketize(10 ** self.posterior_mean())

    def raw_expected_cost(self) -> float:
        """Posterior-mean cost per tuple without bucketing."""
        return 10 ** self.posterior_mean()


class StatsStore:
    """The per-registry store of UDF statistics and cost posteriors.

    Persisted on the registry, hence *stateful* across queries (the paper's
    adaptive process "facilitated by the stateful implementation of the
    UDF mechanism").
    """

    def __init__(self, prior_cost: float = 1e-5):
        self._prior_cost = prior_cost
        self._stats: Dict[str, UdfRuntimeStats] = {}
        self._models: Dict[str, BayesianCostModel] = {}
        # Concurrent governed queries observe through one store; the lock
        # keeps read-modify-write updates from losing observations.
        self._lock = threading.Lock()

    def stats(self, name: str) -> UdfRuntimeStats:
        return self._stats.setdefault(name.lower(), UdfRuntimeStats())

    def model(self, name: str) -> BayesianCostModel:
        return self._models.setdefault(
            name.lower(), BayesianCostModel(self._prior_cost)
        )

    def observe(
        self, name: str, tuples_in: int, tuples_out: int, elapsed: float
    ) -> None:
        """Record one execution of a UDF."""
        with self._lock:
            self.stats(name).observe(tuples_in, tuples_out, elapsed)
            if tuples_in > 0 and elapsed > 0:
                self.model(name).observe(elapsed / tuples_in)

    def expected_cost(self, name: str) -> float:
        """Bucketed expected cost/tuple (prior-driven before observations)."""
        return self.model(name).expected_cost()

    def selectivity(self, name: str, default: float = 1.0) -> float:
        observed = self.stats(name).selectivity
        return default if observed is None else observed

    def known(self, name: str) -> bool:
        """True once the UDF has at least one observation."""
        return self.stats(name).calls > 0

    def clear(self) -> None:
        self._stats.clear()
        self._models.clear()
