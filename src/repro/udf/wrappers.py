"""Wrapper-function generation (paper section 4.1).

When a UDF is registered, the registration mechanism generates a *wrapper
function* that (a) converts engine C data into Python objects, (b) calls
the user's UDF, and (c) converts results back into C data.  The wrapper is
generated as Python source (kept on the wrapper object for inspection,
mirroring the paper's examples), compiled, and invoked by the engine's
executors.

Semantics implemented here:

* Scalar UDFs are *strict*: a NULL in any argument yields NULL without
  invoking the UDF (PostgreSQL ``STRICT`` semantics).
* Aggregate UDFs follow SQL semantics and skip rows whose arguments are
  all NULL (this is what makes ``SUM(CASE WHEN ... THEN 1 ELSE NULL END)``
  count matching rows).
* Table UDFs come in two modes: *relation* mode (the UDF consumes a whole
  input relation through a generator, FROM-clause usage) and *expand* mode
  (one input tuple at a time, multiple output rows per tuple, select-list
  usage — the paper's Expand variant), which also returns row lineage so
  sibling columns can be replicated.
* The UDF body runs inside try/except; failures re-raise as
  :class:`~repro.errors.UdfExecutionError` (section 5.3.2 robustness).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import UdfExecutionError
from ..types import SqlType
from . import boundary
from .definition import UdfDefinition, UdfKind

__all__ = ["GeneratedWrapper", "build_wrapper", "SourceBuilder"]


class SourceBuilder:
    """Tiny helper for emitting correctly indented Python source."""

    INDENT = "    "

    def __init__(self):
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str = "") -> "SourceBuilder":
        self._lines.append(self.INDENT * self._depth + text if text else "")
        return self

    def lines(self, texts: Sequence[str]) -> "SourceBuilder":
        for text in texts:
            self.line(text)
        return self

    def indent(self) -> "SourceBuilder":
        self._depth += 1
        return self

    def dedent(self) -> "SourceBuilder":
        self._depth -= 1
        return self

    def block(self, header: str) -> "_Block":
        self.line(header)
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, builder: SourceBuilder):
        self._builder = builder

    def __enter__(self):
        self._builder.indent()
        return self._builder

    def __exit__(self, *exc_info):
        self._builder.dedent()
        return False


class GeneratedWrapper:
    """A compiled wrapper plus its generated source."""

    __slots__ = ("udf", "source", "entry", "expand_entry")

    def __init__(
        self,
        udf: UdfDefinition,
        source: str,
        entry: Callable,
        expand_entry: Optional[Callable] = None,
    ):
        self.udf = udf
        self.source = source
        self.entry = entry
        self.expand_entry = expand_entry

    def __call__(self, *args, **kwargs):
        return self.entry(*args, **kwargs)


def build_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    """Generate, compile, and return the wrapper for ``udf``."""
    if udf.kind is UdfKind.SCALAR:
        return _build_scalar_wrapper(udf)
    if udf.kind is UdfKind.AGGREGATE:
        return _build_aggregate_wrapper(udf)
    return _build_table_wrapper(udf)


def _base_namespace(udf: UdfDefinition) -> Dict[str, Any]:
    return {
        "c_to_python": boundary.c_to_python,
        "python_to_c": boundary.python_to_c,
        "IN_TYPES": tuple(udf.signature.arg_types),
        "OUT_TYPES": tuple(udf.signature.return_types),
        "OUT_TYPE": udf.signature.return_types[0],
        "SqlType": SqlType,
        "UdfExecutionError": UdfExecutionError,
    }


def _compile(source: str, namespace: Dict[str, Any], entry_name: str) -> Callable:
    code = compile(source, f"<wrapper:{entry_name}>", "exec")
    exec(code, namespace)
    return namespace[entry_name]


# ----------------------------------------------------------------------
# Scalar
# ----------------------------------------------------------------------


def _build_scalar_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    arity = udf.arity
    builder = SourceBuilder()
    if udf.scalar_batch_func is not None:
        # Fully JIT-generated wrapper from the fusion codegen: conversions
        # run inside the fused loop itself (section 4.1).
        with builder.block(f"def wrapper_{udf.name}(c_inputs, size):"):
            builder.line(
                f'"""JIT loop-fused wrapper for fused scalar UDF '
                f'{udf.name!r}."""'
            )
            with builder.block("try:"):
                builder.line("return batch_udf(c_inputs, size)")
            with builder.block("except Exception as exc:"):
                builder.line(
                    f"raise UdfExecutionError({udf.name!r}, exc) from exc"
                )
        source = builder.source()
        namespace = _base_namespace(udf)
        namespace["batch_udf"] = udf.scalar_batch_func
        entry = _compile(source, namespace, f"wrapper_{udf.name}")
        return GeneratedWrapper(udf, source, entry)
    with builder.block(f"def wrapper_{udf.name}(c_inputs, size):"):
        builder.line(f'"""Auto-generated wrapper for scalar UDF {udf.name!r}."""')
        for i in range(arity):
            builder.line(f"col{i} = c_inputs[{i}]")
        builder.line("result = [None] * size")
        with builder.block("try:"):
            with builder.block("for i in range(size):"):
                if arity and udf.strict:
                    null_check = " or ".join(
                        f"col{i}[i] is None" for i in range(arity)
                    )
                    with builder.block(f"if {null_check}:"):
                        builder.line("continue")
                for i in range(arity):
                    builder.line(f"v{i} = c_to_python(col{i}[i], IN_TYPES[{i}])")
                call_args = ", ".join(f"v{i}" for i in range(arity))
                builder.line(f"r = udf({call_args})")
                builder.line("result[i] = python_to_c(r, OUT_TYPE)")
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        builder.line("return result")
    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["udf"] = udf.func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    return GeneratedWrapper(udf, source, entry)


# ----------------------------------------------------------------------
# Aggregate
# ----------------------------------------------------------------------


def _build_aggregate_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    arity = udf.arity
    builder = SourceBuilder()
    with builder.block(
        f"def wrapper_{udf.name}(c_inputs, size, group_ids, num_groups):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for aggregate UDF {udf.name!r} '
            f'(init-step-final over aggr_group_data)."""'
        )
        for i in range(arity):
            builder.line(f"col{i} = c_inputs[{i}]")
        builder.line("aggrs = [agg_class() for _ in range(num_groups)]")
        with builder.block("try:"):
            with builder.block("for i in range(size):"):
                if arity:
                    null_check = " and ".join(
                        f"col{i}[i] is None" for i in range(arity)
                    )
                    with builder.block(f"if {null_check}:"):
                        builder.line("continue")
                for i in range(arity):
                    builder.line(f"v{i} = c_to_python(col{i}[i], IN_TYPES[{i}])")
                call_args = ", ".join(f"v{i}" for i in range(arity))
                builder.line(f"aggrs[group_ids[i]].step({call_args})")
            builder.line(
                "return [python_to_c(a.final(), OUT_TYPE) for a in aggrs]"
            )
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["agg_class"] = udf.func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    return GeneratedWrapper(udf, source, entry)


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------


def _build_table_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    # The input relation's arity and types are only known at query time
    # (the paper's ``*args`` model, section 4.2.3), so the wrapper receives
    # ``in_types`` at call time and decodes rows dynamically.
    num_out = len(udf.signature.return_types)
    out_names = ", ".join(f"out{i}" for i in range(num_out))

    builder = SourceBuilder()
    with builder.block("def _inp_datagen(c_inputs, size, in_types):"):
        builder.line(
            '"""Input generator: decodes one input row per iteration '
            'without materializing the input (section 4.2.3)."""'
        )
        builder.line("n = len(c_inputs)")
        with builder.block("for i in range(size):"):
            builder.line(
                "yield tuple("
                "c_to_python(c_inputs[j][i], in_types[j]) for j in range(n))"
            )
    builder.line()

    with builder.block(
        f"def wrapper_{udf.name}(c_inputs, size, in_types, const_args):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for table UDF {udf.name!r} '
            f'(relation mode)."""'
        )
        for i in range(num_out):
            builder.line(f"out{i} = []")
        with builder.block("try:"):
            with builder.block(
                "for row in udf(_inp_datagen(c_inputs, size, in_types), "
                "*const_args):"
            ):
                for i in range(num_out):
                    builder.line(
                        f"out{i}.append(python_to_c(row[{i}], OUT_TYPES[{i}]))"
                    )
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        builder.line(f"return [{out_names}]")
    builder.line()

    with builder.block(
        f"def wrapper_{udf.name}_expand(c_inputs, size, in_types, const_args):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for table UDF {udf.name!r} '
            f'(expand mode, with row lineage)."""'
        )
        builder.line("lineage = []")
        for i in range(num_out):
            builder.line(f"out{i} = []")
        builder.line("n = len(c_inputs)")
        with builder.block("try:"):
            if udf.expand_batch_func is not None:
                # Fully JIT-generated wrapper: conversions live inside
                # the fused loop itself (section 4.1).
                builder.line(
                    "return batch_udf(c_inputs, size, in_types)"
                )
            elif udf.lineage_func is not None:
                # Fast path for generated pipelines: one batch generator
                # tagging outputs with input indices.
                with builder.block(
                    "for row in lineage_udf("
                    "_inp_datagen(c_inputs, size, in_types), *const_args):"
                ):
                    builder.line("lineage.append(row[0])")
                    for i_out in range(num_out):
                        builder.line(
                            f"out{i_out}.append("
                            f"python_to_c(row[{i_out + 1}], OUT_TYPES[{i_out}]))"
                        )
            else:
                with builder.block("for i in range(size):"):
                    builder.line(
                        "one_row = tuple("
                        "c_to_python(c_inputs[j][i], in_types[j]) "
                        "for j in range(n))"
                    )
                    with builder.block(
                        "for row in udf(iter([one_row]), *const_args):"
                    ):
                        builder.line("lineage.append(i)")
                        for i_out in range(num_out):
                            builder.line(
                                f"out{i_out}.append("
                                f"python_to_c(row[{i_out}], OUT_TYPES[{i_out}]))"
                            )
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        builder.line(f"return lineage, [{out_names}]")

    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["udf"] = udf.func
    namespace["lineage_udf"] = udf.lineage_func
    namespace["batch_udf"] = udf.expand_batch_func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    expand_entry = namespace[f"wrapper_{udf.name}_expand"]
    return GeneratedWrapper(udf, source, entry, expand_entry)
