"""Wrapper-function generation (paper section 4.1).

When a UDF is registered, the registration mechanism generates a *wrapper
function* that (a) converts engine C data into Python objects, (b) calls
the user's UDF, and (c) converts results back into C data.  The wrapper is
generated as Python source (kept on the wrapper object for inspection,
mirroring the paper's examples), compiled, and invoked by the engine's
executors.

Semantics implemented here:

* Scalar UDFs are *strict*: a NULL in any argument yields NULL without
  invoking the UDF (PostgreSQL ``STRICT`` semantics).
* Aggregate UDFs follow SQL semantics and skip rows whose arguments are
  all NULL (this is what makes ``SUM(CASE WHEN ... THEN 1 ELSE NULL END)``
  count matching rows).
* Table UDFs come in two modes: *relation* mode (the UDF consumes a whole
  input relation through a generator, FROM-clause usage) and *expand* mode
  (one input tuple at a time, multiple output rows per tuple, select-list
  usage — the paper's Expand variant), which also returns row lineage so
  sibling columns can be replicated.
* The UDF body runs inside try/except; failures re-raise as
  :class:`~repro.errors.UdfExecutionError` (section 5.3.2 robustness).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import UdfExecutionError
from ..types import SqlType
from . import boundary
from .definition import UdfDefinition, UdfKind

__all__ = ["GeneratedWrapper", "build_wrapper", "SourceBuilder"]


def _resilience_runtime():
    from ..resilience import runtime

    return runtime


class SourceBuilder:
    """Tiny helper for emitting correctly indented Python source."""

    INDENT = "    "

    def __init__(self):
        self._lines: List[str] = []
        self._depth = 0

    def line(self, text: str = "") -> "SourceBuilder":
        self._lines.append(self.INDENT * self._depth + text if text else "")
        return self

    def lines(self, texts: Sequence[str]) -> "SourceBuilder":
        for text in texts:
            self.line(text)
        return self

    def indent(self) -> "SourceBuilder":
        self._depth += 1
        return self

    def dedent(self) -> "SourceBuilder":
        self._depth -= 1
        return self

    def block(self, header: str) -> "_Block":
        self.line(header)
        return _Block(self)

    def source(self) -> str:
        return "\n".join(self._lines) + "\n"


class _Block:
    def __init__(self, builder: SourceBuilder):
        self._builder = builder

    def __enter__(self):
        self._builder.indent()
        return self._builder

    def __exit__(self, *exc_info):
        self._builder.dedent()
        return False


class GeneratedWrapper:
    """A compiled wrapper plus its generated source."""

    __slots__ = ("udf", "source", "entry", "expand_entry")

    def __init__(
        self,
        udf: UdfDefinition,
        source: str,
        entry: Callable,
        expand_entry: Optional[Callable] = None,
    ):
        self.udf = udf
        self.source = source
        self.entry = entry
        self.expand_entry = expand_entry

    def __call__(self, *args, **kwargs):
        return self.entry(*args, **kwargs)


def build_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    """Generate, compile, and return the wrapper for ``udf``."""
    if udf.kind is UdfKind.SCALAR:
        return _build_scalar_wrapper(udf)
    if udf.kind is UdfKind.AGGREGATE:
        return _build_aggregate_wrapper(udf)
    return _build_table_wrapper(udf)


def _base_namespace(udf: UdfDefinition) -> Dict[str, Any]:
    runtime = _resilience_runtime()
    from ..resilience.governor import checkpoint

    return {
        "c_to_python": boundary.c_to_python,
        "python_to_c": boundary.python_to_c,
        "IN_TYPES": tuple(udf.signature.arg_types),
        "OUT_TYPES": tuple(udf.signature.return_types),
        "OUT_TYPE": udf.signature.return_types[0],
        "SqlType": SqlType,
        "UdfExecutionError": UdfExecutionError,
        # Resilience runtime: fault hook + row-level exception policies.
        "_FAULTS": runtime.FAULTS,
        "_rt_policy": runtime.policy,
        "_rt_row_error": runtime.handle_scalar_row_error,
        "_rt_expand_row_error": runtime.handle_expand_row_error,
        # Governance: cooperative cancellation checkpoint (near-free
        # when no governed context is active on this thread).
        "_gov_check": checkpoint,
        "_NAME": udf.name,
        "_NAMES": (udf.name,) + tuple(udf.fused_from),
        "_CTX": "fused" if udf.is_fused else "interp",
    }


def _compile(source: str, namespace: Dict[str, Any], entry_name: str) -> Callable:
    code = compile(source, f"<wrapper:{entry_name}>", "exec")
    exec(code, namespace)
    return namespace[entry_name]


# ----------------------------------------------------------------------
# Scalar
# ----------------------------------------------------------------------


def _build_scalar_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    arity = udf.arity
    builder = SourceBuilder()
    if udf.scalar_batch_func is not None:
        # Fully JIT-generated wrapper from the fusion codegen: conversions
        # run inside the fused loop itself (section 4.1).
        with builder.block(f"def wrapper_{udf.name}(c_inputs, size):"):
            builder.line(
                f'"""JIT loop-fused wrapper for fused scalar UDF '
                f'{udf.name!r}."""'
            )
            with builder.block("try:"):
                builder.line("return batch_udf(c_inputs, size)")
            with builder.block("except UdfExecutionError:"):
                builder.line("raise")
            with builder.block("except Exception as exc:"):
                builder.line(
                    f"raise UdfExecutionError({udf.name!r}, exc) from exc"
                )
        source = builder.source()
        namespace = _base_namespace(udf)
        namespace["batch_udf"] = udf.scalar_batch_func
        entry = _compile(source, namespace, f"wrapper_{udf.name}")
        return GeneratedWrapper(udf, source, entry)
    null_check = " or ".join(f"col{i}[i] is None" for i in range(arity))
    call_args = ", ".join(f"v{i}" for i in range(arity))
    with builder.block(f"def wrapper_{udf.name}(c_inputs, size):"):
        builder.line(f'"""Auto-generated wrapper for scalar UDF {udf.name!r}."""')
        for i in range(arity):
            builder.line(f"col{i} = c_inputs[{i}]")
        builder.line("result = [None] * size")
        builder.line("_policy = _rt_policy()")
        with builder.block("for i in range(size):"):
            builder.line("if not (i & 255): _gov_check()")
            if arity and udf.strict:
                with builder.block(f"if {null_check}:"):
                    builder.line("continue")
            with builder.block("try:"):
                with builder.block("if _FAULTS.armed:"):
                    builder.line("_FAULTS.injector.fire_row(_NAMES, i, _CTX)")
                for i in range(arity):
                    builder.line(f"v{i} = c_to_python(col{i}[i], IN_TYPES[{i}])")
                builder.line(f"r = udf({call_args})")
                builder.line("result[i] = python_to_c(r, OUT_TYPE)")
            with builder.block("except Exception as exc:"):
                builder.line(
                    f"result[i] = _rt_row_error(_NAME, _policy, exc, i, "
                    f"(lambda _i=i: wrapper_{udf.name}__retry(c_inputs, _i)))"
                )
        builder.line("return result")
    builder.line()
    with builder.block(f"def wrapper_{udf.name}__retry(c_inputs, i):"):
        builder.line('"""Single-row replay for the reinterpret policy."""')
        for i in range(arity):
            builder.line(f"col{i} = c_inputs[{i}]")
        if arity and udf.strict:
            with builder.block(f"if {null_check}:"):
                builder.line("return None")
        for i in range(arity):
            builder.line(f"v{i} = c_to_python(col{i}[i], IN_TYPES[{i}])")
        builder.line(f"return python_to_c(udf({call_args}), OUT_TYPE)")
    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["udf"] = udf.func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    return GeneratedWrapper(udf, source, entry)


# ----------------------------------------------------------------------
# Aggregate
# ----------------------------------------------------------------------


def _build_aggregate_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    arity = udf.arity
    builder = SourceBuilder()
    with builder.block(
        f"def wrapper_{udf.name}(c_inputs, size, group_ids, num_groups):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for aggregate UDF {udf.name!r} '
            f'(init-step-final over aggr_group_data)."""'
        )
        for i in range(arity):
            builder.line(f"col{i} = c_inputs[{i}]")
        with builder.block("try:"):
            builder.line("aggrs = [agg_class() for _ in range(num_groups)]")
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        # A failed step() leaves partial aggregate state that cannot be
        # reconciled, so row-level policies never apply here: aggregate
        # failures always raise (with the row) and recovery happens at
        # the query level through de-optimization.
        with builder.block("for i in range(size):"):
            builder.line("if not (i & 255): _gov_check()")
            if arity:
                null_check = " and ".join(
                    f"col{i}[i] is None" for i in range(arity)
                )
                with builder.block(f"if {null_check}:"):
                    builder.line("continue")
            with builder.block("try:"):
                with builder.block("if _FAULTS.armed:"):
                    builder.line("_FAULTS.injector.fire_row(_NAMES, i, _CTX)")
                for i in range(arity):
                    builder.line(f"v{i} = c_to_python(col{i}[i], IN_TYPES[{i}])")
                call_args = ", ".join(f"v{i}" for i in range(arity))
                builder.line(f"aggrs[group_ids[i]].step({call_args})")
            with builder.block("except UdfExecutionError:"):
                builder.line("raise")
            with builder.block("except Exception as exc:"):
                builder.line(
                    f"raise UdfExecutionError({udf.name!r}, exc, row=i) "
                    f"from exc"
                )
        with builder.block("try:"):
            builder.line(
                "return [python_to_c(a.final(), OUT_TYPE) for a in aggrs]"
            )
        with builder.block("except Exception as exc:"):
            builder.line(
                f"raise UdfExecutionError({udf.name!r}, exc, phase='final') "
                f"from exc"
            )
    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["agg_class"] = udf.func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    return GeneratedWrapper(udf, source, entry)


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------


def _build_table_wrapper(udf: UdfDefinition) -> GeneratedWrapper:
    # The input relation's arity and types are only known at query time
    # (the paper's ``*args`` model, section 4.2.3), so the wrapper receives
    # ``in_types`` at call time and decodes rows dynamically.
    num_out = len(udf.signature.return_types)
    out_names = ", ".join(f"out{i}" for i in range(num_out))

    builder = SourceBuilder()
    with builder.block("def _inp_datagen(c_inputs, size, in_types):"):
        builder.line(
            '"""Input generator: decodes one input row per iteration '
            'without materializing the input (section 4.2.3)."""'
        )
        builder.line("n = len(c_inputs)")
        with builder.block("for i in range(size):"):
            builder.line("if not (i & 255): _gov_check()")
            with builder.block("if _FAULTS.armed:"):
                builder.line("_FAULTS.injector.fire_row(_NAMES, i, _CTX)")
            builder.line(
                "yield tuple("
                "c_to_python(c_inputs[j][i], in_types[j]) for j in range(n))"
            )
    builder.line()

    with builder.block(
        f"def wrapper_{udf.name}(c_inputs, size, in_types, const_args):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for table UDF {udf.name!r} '
            f'(relation mode)."""'
        )
        for i in range(num_out):
            builder.line(f"out{i} = []")
        with builder.block("try:"):
            with builder.block(
                "for row in udf(_inp_datagen(c_inputs, size, in_types), "
                "*const_args):"
            ):
                for i in range(num_out):
                    builder.line(
                        f"out{i}.append(python_to_c(row[{i}], OUT_TYPES[{i}]))"
                    )
        with builder.block("except UdfExecutionError:"):
            builder.line("raise")
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        builder.line(f"return [{out_names}]")
    builder.line()

    with builder.block(
        f"def wrapper_{udf.name}_expand(c_inputs, size, in_types, const_args):"
    ):
        builder.line(
            f'"""Auto-generated wrapper for table UDF {udf.name!r} '
            f'(expand mode, with row lineage)."""'
        )
        builder.line("lineage = []")
        for i in range(num_out):
            builder.line(f"out{i} = []")
        builder.line("n = len(c_inputs)")
        with builder.block("try:"):
            if udf.expand_batch_func is not None:
                # Fully JIT-generated wrapper: conversions live inside
                # the fused loop itself (section 4.1).
                builder.line(
                    "return batch_udf(c_inputs, size, in_types)"
                )
            elif udf.lineage_func is not None:
                # Fast path for generated pipelines: one batch generator
                # tagging outputs with input indices.
                with builder.block(
                    "for row in lineage_udf("
                    "_inp_datagen(c_inputs, size, in_types), *const_args):"
                ):
                    builder.line("lineage.append(row[0])")
                    for i_out in range(num_out):
                        builder.line(
                            f"out{i_out}.append("
                            f"python_to_c(row[{i_out + 1}], OUT_TYPES[{i_out}]))"
                        )
            else:
                builder.line("_policy = _rt_policy()")
                with builder.block("for i in range(size):"):
                    builder.line("if not (i & 255): _gov_check()")
                    with builder.block("try:"):
                        with builder.block("if _FAULTS.armed:"):
                            builder.line(
                                "_FAULTS.injector.fire_row(_NAMES, i, _CTX)"
                            )
                        builder.line(
                            "one_row = tuple("
                            "c_to_python(c_inputs[j][i], in_types[j]) "
                            "for j in range(n))"
                        )
                        with builder.block(
                            "for row in udf(iter([one_row]), *const_args):"
                        ):
                            builder.line("lineage.append(i)")
                            for i_out in range(num_out):
                                builder.line(
                                    f"out{i_out}.append(python_to_c("
                                    f"row[{i_out}], OUT_TYPES[{i_out}]))"
                                )
                    with builder.block("except Exception as _exc:"):
                        # Drop the failed row's partial outputs before
                        # applying the policy (lineage is non-decreasing).
                        with builder.block(
                            "while lineage and lineage[-1] == i:"
                        ):
                            builder.line("lineage.pop()")
                            for i_out in range(num_out):
                                builder.line(f"out{i_out}.pop()")
                        builder.line(
                            f"_rres = _rt_expand_row_error(_NAME, _policy, "
                            f"_exc, i, (lambda _i=i: "
                            f"wrapper_{udf.name}__retry_row("
                            f"c_inputs, _i, in_types, const_args)))"
                        )
                        with builder.block("if _rres is None:"):
                            builder.line("lineage.append(i)")
                            for i_out in range(num_out):
                                builder.line(f"out{i_out}.append(None)")
                        with builder.block("else:"):
                            with builder.block("for _row in _rres:"):
                                builder.line("lineage.append(i)")
                                for i_out in range(num_out):
                                    builder.line(
                                        f"out{i_out}.append(_row[{i_out}])"
                                    )
        with builder.block("except UdfExecutionError:"):
            builder.line("raise")
        with builder.block("except Exception as exc:"):
            builder.line(f"raise UdfExecutionError({udf.name!r}, exc) from exc")
        builder.line(f"return lineage, [{out_names}]")
    builder.line()

    with builder.block(
        f"def wrapper_{udf.name}__retry_row(c_inputs, i, in_types, const_args):"
    ):
        builder.line('"""Single-row replay for the reinterpret policy."""')
        builder.line("n = len(c_inputs)")
        builder.line(
            "one_row = tuple("
            "c_to_python(c_inputs[j][i], in_types[j]) for j in range(n))"
        )
        builder.line(
            f"return [tuple(python_to_c(row[k], OUT_TYPES[k]) "
            f"for k in range({num_out})) "
            f"for row in udf(iter([one_row]), *const_args)]"
        )

    source = builder.source()
    namespace = _base_namespace(udf)
    namespace["udf"] = udf.func
    namespace["lineage_udf"] = udf.lineage_func
    namespace["batch_udf"] = udf.expand_batch_func
    entry = _compile(source, namespace, f"wrapper_{udf.name}")
    expand_entry = namespace[f"wrapper_{udf.name}_expand"]
    return GeneratedWrapper(udf, source, entry, expand_entry)
