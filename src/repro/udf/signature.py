"""UDF signatures: argument and return types, inferred or declared.

The registration mechanism (paper section 4.1) requires, for each UDF,
the input arguments with their data types and the return data types.
Signatures are inferred from Python type annotations when present
(``def lower(val: str) -> str``) and may be overridden explicitly through
decorator arguments; unannotated UDFs default to TEXT, matching the
"dynamic types with definition at query time" escape hatch the paper
mentions (section 4.2.4).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import UdfRegistrationError
from ..types import SqlType, sql_type_for_python

__all__ = ["UdfSignature", "infer_signature"]


@dataclass(frozen=True)
class UdfSignature:
    """Types of a UDF's inputs and outputs.

    ``return_types`` has one entry for scalar/aggregate UDFs and one per
    output column for table UDFs.
    """

    arg_names: Tuple[str, ...]
    arg_types: Tuple[SqlType, ...]
    return_types: Tuple[SqlType, ...]

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    def __str__(self) -> str:
        args = ", ".join(
            f"{name}: {sql_type}" for name, sql_type in zip(self.arg_names, self.arg_types)
        )
        returns = ", ".join(str(t) for t in self.return_types)
        return f"({args}) -> ({returns})"


def infer_signature(
    func: Callable,
    *,
    arg_types: Optional[Sequence[Any]] = None,
    return_types: Optional[Sequence[Any]] = None,
    default_type: SqlType = SqlType.TEXT,
) -> UdfSignature:
    """Build a :class:`UdfSignature` for ``func``.

    Explicit ``arg_types`` / ``return_types`` win over annotations;
    annotations win over the TEXT default.
    """
    try:
        parameters = list(inspect.signature(func).parameters.values())
    except (TypeError, ValueError) as exc:  # builtins without signatures
        raise UdfRegistrationError(f"cannot inspect {func!r}: {exc}") from exc

    names: List[str] = []
    inferred_args: List[SqlType] = []
    for param in parameters:
        if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
            raise UdfRegistrationError(
                f"UDF {getattr(func, '__name__', func)!r} may not use "
                f"*args/**kwargs parameters"
            )
        names.append(param.name)
        if param.annotation is not param.empty:
            inferred_args.append(sql_type_for_python(param.annotation))
        else:
            inferred_args.append(default_type)

    if arg_types is not None:
        declared = [sql_type_for_python(t) for t in arg_types]
        if len(declared) != len(names):
            raise UdfRegistrationError(
                f"declared {len(declared)} arg types for "
                f"{len(names)}-parameter UDF {getattr(func, '__name__', func)!r}"
            )
        inferred_args = declared

    if return_types is not None:
        returns = tuple(sql_type_for_python(t) for t in return_types)
    else:
        annotation = getattr(func, "__annotations__", {}).get("return")
        if annotation is None:
            returns = (default_type,)
        else:
            returns = _returns_from_annotation(annotation)

    return UdfSignature(tuple(names), tuple(inferred_args), returns)


def _returns_from_annotation(annotation: Any) -> Tuple[SqlType, ...]:
    # A tuple annotation such as (str, int) declares a multi-column output.
    if isinstance(annotation, tuple):
        return tuple(sql_type_for_python(a) for a in annotation)
    origin = getattr(annotation, "__origin__", None)
    if origin is tuple:
        args = getattr(annotation, "__args__", ())
        return tuple(sql_type_for_python(a) for a in args)
    return (sql_type_for_python(annotation),)
