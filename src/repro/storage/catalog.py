"""Catalog: the engine's registry of tables and their statistics."""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional

from ..errors import CatalogError
from .table import Table

__all__ = ["Catalog", "TableStats"]


class TableStats:
    """Lightweight per-table statistics used by the native optimizer and the
    QFusor cost model (row estimates and per-column distinct counts)."""

    __slots__ = ("row_count", "distinct")

    def __init__(self, table: Table):
        self.row_count = table.num_rows
        self.distinct: Dict[str, int] = {}
        for col in table.columns:
            values = col.to_list()
            try:
                self.distinct[col.name] = len(set(values))
            except TypeError:  # unhashable (JSON lists) — fall back to repr
                self.distinct[col.name] = len({repr(v) for v in values})

    def selectivity_of_distinct(self, column: str) -> float:
        """Fraction of rows surviving a DISTINCT on ``column``."""
        if self.row_count == 0:
            return 1.0
        return self.distinct.get(column, self.row_count) / self.row_count


class Catalog:
    """Holds the engine's tables, keyed by lower-cased name.

    All mutations run under one re-entrant lock so the epoch bump and the
    durability log append are a single atomic step: WAL order always
    matches epoch order, which is what makes replayed epochs exact.
    """

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._stats: Dict[str, TableStats] = {}
        # Snapshot epochs: monotonically increasing per-table counters,
        # bumped on every load/insert/update/delete/drop.  The result
        # cache keys on them, so any write retires dependent entries.
        self._epochs: Dict[str, int] = {}
        self._lock = threading.RLock()
        #: Database generation: 0 without durability; bumped by every
        #: recovery so result-cache keys from before a crash can never
        #: collide with post-restart state.
        self.generation = 0
        #: Optional :class:`~repro.storage.durability.DurabilityManager`;
        #: when set, every mutation is WAL-logged before it returns.
        self.durability = None

    def register(self, table: Table, *, replace: bool = False) -> None:
        """Add a table; ``replace=True`` overwrites an existing one."""
        key = table.name.lower()
        with self._lock:
            if key in self._tables and not replace:
                raise CatalogError(f"table {table.name!r} already exists")
            if table.schema.has_duplicates:
                raise CatalogError(
                    f"table {table.name!r} has duplicate column names"
                )
            self._tables[key] = table
            self._stats[key] = TableStats(table)
            epoch = self._bump(key)
            if self.durability is not None:
                self.durability.log_table(table, epoch)

    def drop(self, name: str) -> None:
        """Remove a table."""
        key = name.lower()
        with self._lock:
            if key not in self._tables:
                raise CatalogError(f"unknown table {name!r}")
            del self._tables[key]
            del self._stats[key]
            epoch = self._bump(key)
            if self.durability is not None:
                self.durability.log_drop(name, epoch)

    # ------------------------------------------------------------------
    # Snapshot epochs
    # ------------------------------------------------------------------

    def epoch(self, name: str) -> int:
        """The table's snapshot epoch (0 before the first registration)."""
        return self._epochs.get(name.lower(), 0)

    def touch(self, name: str) -> None:
        """Advance a table's snapshot epoch (the write-tracking hook).

        Also used by adapters whose storage lives outside this catalog
        (the sqlite3 adapter): a DML statement that mutates engine-side
        rows bumps the epoch here so dependent result-cache entries are
        retired even though no :meth:`register` call happened.
        """
        key = name.lower()
        with self._lock:
            epoch = self._bump(key)
            if self.durability is not None:
                self.durability.log_touch(name, epoch)

    def _bump(self, key: str) -> int:
        """Advance and return a table's epoch; caller holds the lock."""
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        return epoch

    # ------------------------------------------------------------------
    # Recovery restore hooks (durability-internal: no epoch bump beyond
    # the recorded value, no WAL logging — replay must be idempotent)
    # ------------------------------------------------------------------

    def restore_table(self, table: Table, epoch: Optional[int] = None) -> None:
        """Install a recovered table image without logging it."""
        key = table.name.lower()
        with self._lock:
            self._tables[key] = table
            self._stats[key] = TableStats(table)
            if epoch is not None:
                self.restore_epoch(key, epoch)

    def restore_drop(self, name: str, epoch: Optional[int] = None) -> None:
        """Replay a drop; tolerates the table already being gone
        (a checkpoint raced the record — replay is idempotent)."""
        key = name.lower()
        with self._lock:
            self._tables.pop(key, None)
            self._stats.pop(key, None)
            if epoch is not None:
                self.restore_epoch(key, epoch)

    def restore_epoch(self, name: str, epoch: int) -> None:
        """Set a recovered epoch; only ever moves forward."""
        key = name.lower()
        with self._lock:
            if epoch > self._epochs.get(key, 0):
                self._epochs[key] = epoch

    def get(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def stats(self, name: str) -> TableStats:
        """Statistics for a table."""
        try:
            return self._stats[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def names(self) -> List[str]:
        """Registered table names."""
        return [t.name for t in self._tables.values()]
