"""Persisted fencing state: the node meta file.

Each replicated database directory carries a ``node.meta`` JSON file::

    {"node": "<id>", "term": <int>, "fenced_by": <int|null>}

``term`` is the **promotion term** — the only monotone counter in the
system that moves *exclusively* on promotion.  (The durability
generation cannot serve as a fence: it bumps on every recovery, so a
revived old primary's generation catches up to a promoted standby's
after enough restarts.)  The fencing invariant:

* a standby **adopts** its primary's term (persisted, fsync'd) before
  it WELCOMEs the stream, so the lineage is on disk before a single
  frame flows;
* ``promote()`` bumps the adopted term by one and fsyncs it **before**
  the promoted node serves a write;
* a handshake presenting ``term < standby.term`` is REJECTed, and the
  rejected node persists ``fenced_by`` and poisons its manager with
  :class:`~repro.errors.NodeFencedError`.

Together these make split-brain structurally impossible: any write the
old primary could acknowledge after the promotion point would first
need a WELCOME from a standby whose persisted term already exceeds the
term the old primary can ever present.

The file is installed atomically (same-directory temp + ``os.replace``
+ directory fsync) so a crash mid-store leaves the previous meta, never
a torn one.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ...errors import ReplicationError
from ..atomic import fsync_dir
from ..durability.wal import IO_CALLS

__all__ = ["NODE_META_NAME", "load_node_meta", "store_node_meta"]

NODE_META_NAME = "node.meta"


def load_node_meta(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The directory's node meta, or None if the node has none yet.

    A present-but-undecodable file raises: fencing state is the one
    thing recovery must never guess at, so damage here is surfaced, not
    defaulted.
    """
    path = Path(directory) / NODE_META_NAME
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return None
    try:
        meta = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ReplicationError(
            f"node meta undecodable in {str(path)!r}: {exc}"
        ) from exc
    if not isinstance(meta, dict) or "node" not in meta or "term" not in meta:
        raise ReplicationError(
            f"node meta malformed in {str(path)!r}: {meta!r}"
        )
    return meta


def store_node_meta(
    directory: Union[str, Path],
    *,
    node: str,
    term: int,
    fenced_by: Optional[int] = None,
    role: str = "primary",
    fsync: bool = True,
) -> Dict[str, Any]:
    """Atomically persist the node's fencing state; returns the meta.

    ``role`` distinguishes a standby directory from a primary one on
    disk: a cold-start fleet scan must never warm-restart a standby as
    a primary (that would append un-replicated frames to a mirrored
    log).  Promotion flips the role to ``"primary"`` in the same write
    that bumps the term.

    The caller sequences this against the protocol (adopt-before-
    WELCOME, bump-before-serve); this function only guarantees the
    bytes are durable when it returns.
    """
    directory = Path(directory)
    meta = {
        "node": str(node),
        "term": int(term),
        "fenced_by": fenced_by,
        "role": str(role),
    }
    payload = json.dumps(meta, separators=(",", ":")).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{NODE_META_NAME}.", suffix=".tmp"
    )
    try:
        IO_CALLS["write"] += 1
        os.write(fd, payload)
        if fsync:
            IO_CALLS["fsync"] += 1
            os.fsync(fd)
    finally:
        try:
            os.close(fd)
        except OSError:
            pass
    os.replace(tmp_name, directory / NODE_META_NAME)
    if fsync:
        fsync_dir(directory)
    return meta
