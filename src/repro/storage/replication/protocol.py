"""The replication wire protocol: length-prefixed, typed messages.

Every message is::

    [u32 len][1-byte kind][body]        -- len covers kind + body

Kinds (one ASCII byte each):

``H`` HELLO
    Primary -> standby on connect.  JSON body:
    ``{"node", "term", "generation", "base_lsn", "last_lsn"}``.
``W`` WELCOME
    Standby -> primary accepting the stream.  JSON body:
    ``{"node", "term", "start_lsn"}`` — the primary resumes shipping
    from ``start_lsn`` (the standby's flushed tail), so reconnects
    after any disconnect are exact, not approximate.
``R`` REJECT
    Standby -> primary refusing the stream (stale fencing term).  JSON
    body: ``{"term", "reason"}``.  The primary must fence itself.
``F`` FRAME
    One WAL frame, verbatim bytes as they sit in the primary's log:
    ``[u64 primary_last_lsn][u64 lsn][frame]``.  The embedded CRC rides
    along, so the standby re-verifies the exact checksum the primary's
    recovery would — corruption anywhere between the two disks is
    caught before install.  ``primary_last_lsn`` is the primary's
    current tail, letting the standby compute its own apply lag without
    a second round trip.
``C`` CHECKPOINT
    A full checkpoint image for standby bootstrap / post-reset
    catch-up: ``[u64 primary_last_lsn][blob]`` where ``blob`` is the
    checkpoint file verbatim (magic + CRC + JSON).
``A`` ACK
    Standby -> primary: ``[u64 flushed_lsn]`` — everything at or below
    ``flushed_lsn`` is applied *and* flushed on the standby (sync-ack
    mode releases commits against this watermark).

All socket syscalls route through this module and are counted in
:data:`REPL_IO_CALLS`, mirroring the WAL's ``IO_CALLS`` ledger: the
replication-disabled benchmark gate asserts the ledger stays zero
across a full suite run, a structural proof that tenants without a
standby perform no replication work, syscall by syscall.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional, Tuple

from ...errors import ReplicationProtocolError

__all__ = [
    "HELLO",
    "WELCOME",
    "REJECT",
    "FRAME",
    "CHECKPOINT",
    "ACK",
    "REPL_IO_CALLS",
    "reset_repl_io_calls",
    "encode_message",
    "send_message",
    "recv_message",
    "send_json",
    "decode_json",
    "U64",
]

HELLO = b"H"
WELCOME = b"W"
REJECT = b"R"
FRAME = b"F"
CHECKPOINT = b"C"
ACK = b"A"

_LEN = struct.Struct("<I")
U64 = struct.Struct("<Q")

#: Maximum accepted message size — a checkpoint image plus slack.  A
#: length prefix beyond this is a protocol violation (or garbage on the
#: port), not something to allocate for.
MAX_MESSAGE = 256 << 20

#: Global count of replication socket syscalls.  See module docstring.
REPL_IO_CALLS = {"connect": 0, "accept": 0, "send": 0, "recv": 0}


def reset_repl_io_calls() -> None:
    for key in REPL_IO_CALLS:
        REPL_IO_CALLS[key] = 0


def encode_message(kind: bytes, body: bytes) -> bytes:
    """The exact wire bytes of one framed message (torn-send injection
    needs the raw encoding to cut at an arbitrary byte)."""
    return _LEN.pack(1 + len(body)) + kind + body


def send_message(sock: socket.socket, kind: bytes, body: bytes) -> int:
    """Send one framed message; returns bytes put on the wire."""
    message = encode_message(kind, body)
    REPL_IO_CALLS["send"] += 1
    sock.sendall(message)
    return len(message)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on a clean EOF at a
    message boundary.  EOF mid-message raises: a peer that dies between
    two recv calls tore a message, and the caller must treat the stream
    as corrupt rather than silently short."""
    chunks = []
    remaining = count
    while remaining:
        REPL_IO_CALLS["recv"] += 1
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if not chunks:
                return None
            raise ReplicationProtocolError(
                f"peer closed mid-message ({count - remaining} of "
                f"{count} bytes arrived)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket,
) -> Optional[Tuple[bytes, bytes]]:
    """Receive one framed message as ``(kind, body)``, or None on EOF."""
    header = _recv_exact(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length < 1 or length > MAX_MESSAGE:
        raise ReplicationProtocolError(
            f"implausible replication message length {length}"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ReplicationProtocolError("peer closed between length and body")
    return payload[:1], payload[1:]


def send_json(sock: socket.socket, kind: bytes, obj: Dict[str, Any]) -> int:
    return send_message(
        sock, kind, json.dumps(obj, separators=(",", ":")).encode("utf-8")
    )


def decode_json(body: bytes, *, kind: str) -> Dict[str, Any]:
    try:
        decoded = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ReplicationProtocolError(
            f"undecodable {kind} body: {exc}"
        ) from exc
    if not isinstance(decoded, dict):
        raise ReplicationProtocolError(
            f"{kind} body must be a JSON object, got {type(decoded).__name__}"
        )
    return decoded
