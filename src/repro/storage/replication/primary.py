"""The replication primary: tail the WAL, ship frames, honor the fence.

One :class:`ReplicationPrimary` hangs off a normal (non-replica)
:class:`~repro.storage.durability.manager.DurabilityManager` and runs
one sender thread + one ack-receiver thread per standby target.  The
sender tails ``wal.log`` through its **own** read descriptor — it never
takes the manager or catalog locks, which is what lets sync-ack commits
block inside ``_append`` (both locks held) without any deadlock — and
ships each frame verbatim, CRC and all.

Only *durable* frames ship: the tailer caps at ``manager.wal.last_lsn``,
which the writer advances strictly after the fsync returns.  This is
the invariant that keeps a standby forever at-or-behind the primary's
durable tail, so a primary crash + restart can never re-issue an LSN
the standby already holds with different bytes.

When the standby's resume cursor has fallen behind the primary's WAL
``base_lsn`` (a checkpoint reset discarded the frames it needs), the
sender ships the whole checkpoint image instead, then resumes framing
from the image's LSN.

**Sync-ack mode** (``sync=True``): ``after_append`` blocks the
committing writer until every target's acknowledged LSN covers the
frame, up to ``ack_timeout_s``.  On timeout the primary **degrades** to
async: it emits a typed event, bumps
``repro_repl_sync_degraded_total``, and drops a ``repl.degraded``
marker file in the database directory (the failover harness reads the
marker post-mortem to know which zero-loss bound applies).  When the
lagging standby catches back up to the live tail the primary re-enters
sync mode and removes the marker.

**Fencing**: a REJECT during the handshake means a standby was promoted
past us.  The primary persists ``fenced_by`` in its node meta, poisons
its manager with :class:`~repro.errors.NodeFencedError`, and stops all
streaming — permanently.  A fenced directory re-opened later re-fences
itself from the persisted meta before a single write is accepted.
"""

from __future__ import annotations

import os
import socket
import threading
import time
import uuid
import zlib
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ...errors import (
    CheckpointError,
    ReplicationError,
    ReplicationProtocolError,
    SimulatedCrash,
)
from ...obs import METRICS, OBS
from ..durability.checkpoint import load_checkpoint_blob
from ..durability.wal import (
    MAGIC,
    _FRAME,
    _HEADER,
    _LSN,
    _crash_point,
    execute_crash,
)
from . import protocol
from .fence import load_node_meta, store_node_meta

__all__ = ["ReplicationPrimary", "DEGRADE_MARKER_NAME"]

WAL_NAME = "wal.log"
DEGRADE_MARKER_NAME = "repl.degraded"
_HEADER_LEN = len(MAGIC) + _HEADER.size


class _Target:
    __slots__ = (
        "name", "host", "port", "connected", "acked_lsn", "cursor", "sock",
    )

    def __init__(self, name: str, host: str, port: int):
        self.name = name
        self.host = host
        self.port = port
        self.connected = False
        self.acked_lsn = 0
        self.cursor = 0
        self.sock: Optional[socket.socket] = None


def _parse_target(spec: Any) -> Tuple[str, int]:
    if isinstance(spec, (tuple, list)) and len(spec) == 2:
        return str(spec[0]), int(spec[1])
    host, _, port = str(spec).rpartition(":")
    if not host or not port.isdigit():
        raise ReplicationError(f"bad replication target {spec!r}")
    return host, int(port)


class _WalTail:
    """A read-only, lock-free tailer over the primary's own WAL file.

    Tracks (``base_lsn``, byte offset) and re-validates every frame —
    structure, CRC, LSN order — before it is eligible to ship.  A
    concurrent checkpoint reset shows up as a changed header
    ``base_lsn`` (or a shrunken file) and triggers a rescan; a frame
    mid-write shows up as a torn tail and is simply not ready yet.
    """

    def __init__(self, path: Path):
        self.path = path
        self._file: Optional[Any] = None
        self._base_lsn = 0
        self._offset = _HEADER_LEN
        self._next_lsn = 0

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None

    def _reopen(self) -> bool:
        self.close()
        try:
            self._file = open(self.path, "rb")
        except OSError:
            return False
        header = self._file.read(_HEADER_LEN)
        if len(header) < _HEADER_LEN or header[: len(MAGIC)] != MAGIC:
            # Mid-reset: the header is not back yet.  Not an error —
            # the writer's fsync has not returned, so nothing in this
            # file is shippable right now.
            self.close()
            return False
        (self._base_lsn,) = _HEADER.unpack(header[len(MAGIC):])
        self._offset = _HEADER_LEN
        self._next_lsn = self._base_lsn + 1
        return True

    def rewind(self, cursor: int) -> None:
        """Position so the next poll can serve ``cursor + 1``.

        A dropped connection can die with frames consumed from this
        tail but never delivered (they sat in the socket buffer); the
        standby's WELCOME then asks to resume below our scan position.
        Rescan from the head — poll's ``lsn > cursor`` filter skips the
        prefix — unless we are already at or before the cursor.
        """
        if self._file is None or self._next_lsn > cursor + 1:
            self._reopen()

    def poll(
        self, cursor: int, durable_lsn: int, max_frames: int = 256
    ) -> Tuple[str, List[Tuple[int, bytes]]]:
        """Advance past ``cursor``; returns ``(state, frames)``.

        ``state`` is ``"frames"`` (possibly empty — idle) or
        ``"checkpoint"`` (the file's ``base_lsn`` is beyond ``cursor``:
        the frames the standby needs were folded into a checkpoint and
        discarded, ship the image instead).  Only frames with
        ``lsn <= durable_lsn`` are returned.
        """
        if self._file is None and not self._reopen():
            return "frames", []
        # A reset while we were tailing: header base_lsn changes (the
        # file may also briefly vanish into a shorter incarnation).
        try:
            self._file.seek(0)
            header = self._file.read(_HEADER_LEN)
        except OSError:
            self.close()
            return "frames", []
        if len(header) < _HEADER_LEN or header[: len(MAGIC)] != MAGIC:
            self.close()
            return "frames", []
        (base_lsn,) = _HEADER.unpack(header[len(MAGIC):])
        if base_lsn != self._base_lsn:
            if not self._reopen():
                return "frames", []
        if cursor < self._base_lsn:
            return "checkpoint", []
        frames: List[Tuple[int, bytes]] = []
        self._file.seek(self._offset)
        while len(frames) < max_frames:
            header = self._file.read(_FRAME.size)
            if len(header) < _FRAME.size:
                break
            length, crc, lsn = _FRAME.unpack(header)
            payload = self._file.read(length)
            if len(payload) < length:
                break  # torn tail: frame still being written
            if zlib.crc32(_LSN.pack(lsn) + payload) != crc:
                break
            if lsn != self._next_lsn:
                break
            if lsn > durable_lsn:
                break  # written but not yet fsync'd: not shippable
            self._offset += _FRAME.size + length
            self._next_lsn = lsn + 1
            if lsn > cursor:
                frames.append((lsn, header + payload))
        return "frames", frames


class ReplicationPrimary:
    """Stream a manager's WAL to one or more standbys."""

    def __init__(
        self,
        manager: Any,
        targets: Any,
        *,
        sync: bool = False,
        ack_timeout_s: float = 1.0,
        poll_interval_s: float = 0.005,
        connect_retry_s: float = 0.05,
        on_degrade: Optional[Callable[[str, int], None]] = None,
    ):
        if not manager.wal_enabled:
            raise ReplicationError(
                "replication requires the WAL (wal_enabled=False has no "
                "frames to ship)"
            )
        self.manager = manager
        self.directory = Path(manager.directory)
        self.sync = bool(sync)
        self.ack_timeout_s = float(ack_timeout_s)
        self.poll_interval_s = float(poll_interval_s)
        self.connect_retry_s = float(connect_retry_s)
        self.on_degrade = on_degrade
        self.degraded = False
        self.fenced_by: Optional[int] = None
        #: Typed lifecycle events, in order: ("degraded"|"resynced"|
        #: ("fenced"), lsn-or-term).
        self.events: List[Tuple[str, int]] = []
        meta = load_node_meta(self.directory)
        if meta is None:
            self.node_id = f"primary-{uuid.uuid4().hex[:12]}"
            self.term = 0
            store_node_meta(
                self.directory, node=self.node_id, term=self.term,
                fsync=manager.wal_fsync,
            )
        else:
            self.node_id = str(meta["node"])
            self.term = int(meta["term"])
            if meta.get("fenced_by") is not None:
                # This directory was fenced in a previous life.  Re-arm
                # the fence before anything can be written or shipped.
                self.fenced_by = int(meta["fenced_by"])
                manager.fence(self.fenced_by)
        if isinstance(targets, (str, bytes)) or (
            isinstance(targets, (tuple, list))
            and len(targets) == 2
            and isinstance(targets[1], int)
        ):
            targets = [targets]  # one target, not a list of them
        self._targets = [
            _Target(f"standby{i}:{host}:{port}", host, port)
            for i, (host, port) in enumerate(
                _parse_target(t) for t in targets
            )
        ]
        self._closed = False
        self._wake = threading.Event()
        self._ack_cond = threading.Condition()
        self._threads: List[threading.Thread] = []
        marker = self.directory / DEGRADE_MARKER_NAME
        try:
            # A marker left by a previous incarnation describes *its*
            # degradation, not ours; a fresh primary starts in sync.
            os.unlink(marker)
        except OSError:
            pass
        if self.fenced_by is None:
            for target in self._targets:
                thread = threading.Thread(
                    target=self._sender_loop, args=(target,),
                    name=f"repro-repl-{target.name}", daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    # ------------------------------------------------------------------
    # Commit-side hook (called by DurabilityManager._append, which holds
    # the catalog + manager locks; nothing here may take either)
    # ------------------------------------------------------------------

    def after_append(self, lsn: int) -> None:
        self._wake.set()
        if not self.sync or self._closed or self.fenced_by is not None:
            return
        if self.degraded:
            return
        deadline = time.monotonic() + self.ack_timeout_s
        with self._ack_cond:
            while self._min_acked_locked() < lsn:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._degrade_locked(lsn)
                    return
                self._ack_cond.wait(remaining)

    def _min_acked_locked(self) -> int:
        return min((t.acked_lsn for t in self._targets), default=0)

    def _degrade_locked(self, lsn: int) -> None:
        self.degraded = True
        self.events.append(("degraded", lsn))
        if OBS.metrics:
            METRICS.counter("repro_repl_sync_degraded_total").inc()
        try:
            fd = os.open(
                self.directory / DEGRADE_MARKER_NAME,
                os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644,
            )
            try:
                os.write(fd, b'{"lsn":%d}' % lsn)
                os.fsync(fd)
            finally:
                os.close(fd)
        except OSError:
            pass
        if self.on_degrade is not None:
            try:
                self.on_degrade("degraded", lsn)
            except Exception:
                pass

    def _maybe_resync_locked(self) -> None:
        if not self.degraded:
            return
        wal = self.manager.wal
        tail = wal.last_lsn if wal is not None else 0
        if self._min_acked_locked() >= tail:
            self.degraded = False
            self.events.append(("resynced", tail))
            if OBS.metrics:
                METRICS.counter("repro_repl_sync_resynced_total").inc()
            try:
                os.unlink(self.directory / DEGRADE_MARKER_NAME)
            except OSError:
                pass
            if self.on_degrade is not None:
                try:
                    self.on_degrade("resynced", tail)
                except Exception:
                    pass

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------

    def _sender_loop(self, target: _Target) -> None:
        try:
            self._sender_loop_inner(target)
        except SimulatedCrash:
            # The in-process harness crashed this sender (repl_send /
            # repl_handshake with action="raise"): the simulated death
            # of the stream.  The thread exits permanently, exactly as
            # torn wire bytes already sent would have it; a SIGKILL
            # variant takes the whole process down before this line.
            with self._ack_cond:
                target.connected = False

    def _sender_loop_inner(self, target: _Target) -> None:
        tail = _WalTail(self.directory / WAL_NAME)
        try:
            while not self._closed and self.fenced_by is None:
                try:
                    protocol.REPL_IO_CALLS["connect"] += 1
                    sock = socket.create_connection(
                        (target.host, target.port), timeout=5.0
                    )
                except OSError:
                    if self._wait_retry():
                        return
                    continue
                target.sock = sock
                try:
                    self._run_stream(target, sock, tail)
                except (OSError, ReplicationError, CheckpointError):
                    pass
                finally:
                    target.sock = None
                    with self._ack_cond:
                        target.connected = False
                    try:
                        sock.close()
                    except OSError:
                        pass
                if self._wait_retry():
                    return
        finally:
            tail.close()

    def _wait_retry(self) -> bool:
        """Back off between connection attempts; True when closing."""
        deadline = time.monotonic() + self.connect_retry_s
        while time.monotonic() < deadline:
            if self._closed or self.fenced_by is not None:
                return True
            time.sleep(0.005)
        return self._closed or self.fenced_by is not None

    def _run_stream(
        self, target: _Target, sock: socket.socket, tail: _WalTail
    ) -> None:
        sock.settimeout(10.0)
        wal = self.manager.wal
        spec = _crash_point("repl_handshake")
        if spec is not None:
            execute_crash(spec)
        protocol.send_json(sock, protocol.HELLO, {
            "node": self.node_id,
            "term": self.term,
            "generation": self.manager.generation,
            "base_lsn": wal.base_lsn if wal is not None else 0,
            "last_lsn": wal.last_lsn if wal is not None else 0,
        })
        message = protocol.recv_message(sock)
        if message is None:
            return
        kind, body = message
        if kind == protocol.REJECT:
            reject = protocol.decode_json(body, kind="REJECT")
            self._handle_fenced(int(reject.get("term", self.term + 1)))
            return
        if kind != protocol.WELCOME:
            raise ReplicationProtocolError(
                f"expected WELCOME or REJECT, got {kind!r}"
            )
        welcome = protocol.decode_json(body, kind="WELCOME")
        cursor = int(welcome.get("start_lsn", 0))
        tail.rewind(cursor)
        with self._ack_cond:
            target.connected = True
            target.cursor = cursor
            target.acked_lsn = max(target.acked_lsn, cursor)
            self._ack_cond.notify_all()
            self._maybe_resync_locked()
        ack_thread = threading.Thread(
            target=self._ack_loop, args=(target, sock),
            name=f"repro-repl-ack-{target.name}", daemon=True,
        )
        ack_thread.start()
        try:
            self._stream_frames(target, sock, tail, cursor)
        finally:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            ack_thread.join(timeout=5.0)

    def _stream_frames(
        self,
        target: _Target,
        sock: socket.socket,
        tail: _WalTail,
        cursor: int,
    ) -> None:
        u64 = protocol.U64
        lag_gauge = (
            METRICS.gauge(
                "repro_repl_lag_records", role="primary", target=target.name
            )
            if OBS.metrics else None
        )
        while not self._closed and self.fenced_by is None:
            wal = self.manager.wal
            durable = wal.last_lsn if wal is not None else 0
            state, frames = tail.poll(cursor, durable)
            if state == "checkpoint":
                loaded = load_checkpoint_blob(self.directory)
                if loaded is None:
                    # Reset raced the checkpoint read; retry.
                    time.sleep(self.poll_interval_s)
                    continue
                ckpt_state, blob = loaded
                ckpt_lsn = int(ckpt_state.get("lsn", 0))
                if ckpt_lsn < cursor:
                    time.sleep(self.poll_interval_s)
                    continue
                sent = protocol.send_message(
                    sock, protocol.CHECKPOINT, u64.pack(durable) + blob
                )
                cursor = ckpt_lsn
                if OBS.metrics:
                    METRICS.counter(
                        "repro_repl_stream_bytes_total", direction="tx"
                    ).inc(sent)
                    METRICS.counter("repro_repl_checkpoints_shipped_total").inc()
                continue
            if not frames:
                if lag_gauge is not None:
                    lag_gauge.set(max(0, durable - target.acked_lsn))
                self._wake.wait(self.poll_interval_s)
                self._wake.clear()
                continue
            for lsn, frame in frames:
                body = u64.pack(durable) + u64.pack(lsn) + frame
                spec = _crash_point("repl_send")
                if spec is not None:
                    # Tear the wire mid-frame before dying: the standby
                    # must treat the remainder as a dropped connection,
                    # never as data.
                    cut = spec.get("cut")
                    message = protocol.encode_message(protocol.FRAME, body)
                    cut = len(message) if cut is None else max(
                        0, min(cut, len(message))
                    )
                    if cut:
                        try:
                            protocol.REPL_IO_CALLS["send"] += 1
                            sock.sendall(message[:cut])
                        except OSError:
                            pass
                    execute_crash(spec)
                sent = protocol.send_message(sock, protocol.FRAME, body)
                cursor = lsn
                if OBS.metrics:
                    METRICS.counter(
                        "repro_repl_stream_bytes_total", direction="tx"
                    ).inc(sent)
            target.cursor = cursor
            if lag_gauge is not None:
                lag_gauge.set(max(0, durable - target.acked_lsn))

    def _ack_loop(self, target: _Target, sock: socket.socket) -> None:
        u64 = protocol.U64
        try:
            while not self._closed:
                message = protocol.recv_message(sock)
                if message is None:
                    return
                kind, body = message
                if kind != protocol.ACK or len(body) < u64.size:
                    return
                (flushed,) = u64.unpack_from(body, 0)
                with self._ack_cond:
                    if flushed > target.acked_lsn:
                        target.acked_lsn = flushed
                    self._ack_cond.notify_all()
                    self._maybe_resync_locked()
        except (socket.timeout, OSError, ReplicationError):
            return

    def _handle_fenced(self, remote_term: int) -> None:
        """A standby out-terms us: stop the world, permanently.

        Ordering matters: the manager is poisoned *first* so no write
        can be acknowledged between learning of the fence and the
        durable meta install, and the observable ``fenced_by`` flag is
        published *last* so anyone who sees it can rely on the manager
        already refusing writes.
        """
        self.manager.fence(remote_term)
        try:
            store_node_meta(
                self.directory, node=self.node_id, term=self.term,
                fenced_by=remote_term, fsync=True,
            )
        except OSError:
            pass
        self.fenced_by = remote_term
        self.events.append(("fenced", remote_term))
        self._wake.set()
        with self._ack_cond:
            self._ack_cond.notify_all()

    # ------------------------------------------------------------------
    # Introspection + lifecycle
    # ------------------------------------------------------------------

    def min_acked_lsn(self) -> int:
        with self._ack_cond:
            return self._min_acked_locked()

    def status(self) -> Dict[str, Any]:
        wal = self.manager.wal
        tail_lsn = wal.last_lsn if wal is not None else 0
        with self._ack_cond:
            targets = {
                t.name: {
                    "connected": t.connected,
                    "acked_lsn": t.acked_lsn,
                    "lag_records": max(0, tail_lsn - t.acked_lsn),
                }
                for t in self._targets
            }
        return {
            "node": self.node_id,
            "term": self.term,
            "sync": self.sync,
            "degraded": self.degraded,
            "fenced_by": self.fenced_by,
            "last_lsn": tail_lsn,
            "targets": targets,
            "events": list(self.events),
        }

    def close(self) -> None:
        self._closed = True
        self._wake.set()
        with self._ack_cond:
            self._ack_cond.notify_all()
        for target in self._targets:
            sock = target.sock
            if sock is not None:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass
        for thread in self._threads:
            thread.join(timeout=5.0)

    def abandon(self) -> None:
        """Stop without joining — the in-process crash stand-in."""
        self._closed = True
        self._wake.set()
        with self._ack_cond:
            self._ack_cond.notify_all()
        for target in self._targets:
            sock = target.sock
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
