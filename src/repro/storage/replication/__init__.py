"""repro.storage.replication — hot-standby WAL shipping with fencing.

A primary streams its sealed WAL frames (and checkpoint images, for
standby bootstrap and post-reset catch-up) to one or more standbys over
a length-prefixed socket protocol; every frame is CRC re-verified on
arrival and applied through the same idempotent restore hooks recovery
uses.  Promotion is fenced by a persisted, promotion-only **term**: a
promoted standby fsyncs its bumped term before serving, and the
handshake rejects any node presenting a stale one — a revived old
primary is structurally incapable of acknowledging a post-failover
write.  See DESIGN.md §15.

Quick start::

    standby = ReplicationStandby(standby_dir)
    primary = ReplicationPrimary(
        manager, [standby.address], sync=True, ack_timeout_s=0.5)
    manager.replication = primary
    ...
    term = standby.promote()          # fence + step up
    # re-open standby_dir as a normal primary: ordinary recovery.
"""

from .fence import NODE_META_NAME, load_node_meta, store_node_meta
from .primary import DEGRADE_MARKER_NAME, ReplicationPrimary
from .protocol import REPL_IO_CALLS, reset_repl_io_calls
from .standby import ReplicationStandby

__all__ = [
    "ReplicationPrimary",
    "ReplicationStandby",
    "REPL_IO_CALLS",
    "reset_repl_io_calls",
    "NODE_META_NAME",
    "DEGRADE_MARKER_NAME",
    "load_node_meta",
    "store_node_meta",
]
