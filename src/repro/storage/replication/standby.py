"""The hot standby: receive, verify, apply, acknowledge, promote.

A :class:`ReplicationStandby` owns one database directory in replica
mode: a listener accepts primary connections, the handshake enforces
the fencing invariant (see :mod:`.fence`), and every FRAME/CHECKPOINT
message is applied through the replica
:class:`~repro.storage.durability.manager.DurabilityManager` — the same
idempotent restore hooks recovery uses, so standby state is by
construction a state recovery could have produced.  After each apply
the standby ACKs its flushed LSN; sync-mode primaries release commits
against that watermark.

Promotion is a restart in disguise: ``promote()`` stops the listener,
fsyncs the bumped fencing term, and closes the replica manager.  The
caller then re-opens the directory as a normal primary — ordinary
recovery replays the log, bumps the durability generation (fencing any
pre-failover cache entries), and the node serves.  There is no special
"promoted state" to get wrong; the only promotion-specific bytes are
the term in ``node.meta``.
"""

from __future__ import annotations

import socket
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional, Union

from ...errors import (
    CheckpointError,
    ReplicationError,
    ReplicationProtocolError,
    SimulatedCrash,
    WalCorruptionError,
)
from ...obs import METRICS, OBS
from ..catalog import Catalog
from ..durability.manager import DurabilityManager
from ..durability.wal import _crash_point, execute_crash
from . import protocol
# _crash_point/execute_crash: the repl_promote window below; stream-side
# crash points live on the primary (the harness kills primaries).
from .fence import load_node_meta, store_node_meta

__all__ = ["ReplicationStandby"]


class ReplicationStandby:
    """One standby node: a replica directory plus its stream listener."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        min_term: int = 0,
        wal_fsync: bool = True,
        checkpoint_threshold: int = 4 << 20,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = load_node_meta(self.directory)
        if meta is None:
            self.node_id = f"standby-{uuid.uuid4().hex[:12]}"
            self.term = int(min_term)
            store_node_meta(
                self.directory, node=self.node_id, term=self.term,
                role="standby", fsync=wal_fsync,
            )
        else:
            if meta.get("role") == "primary":
                raise ReplicationError(
                    f"{str(self.directory)!r} is a primary directory "
                    f"(promoted or original); refusing to demote it to a "
                    f"standby implicitly"
                )
            self.node_id = str(meta["node"])
            self.term = max(int(meta["term"]), int(min_term))
            if self.term != int(meta["term"]):
                store_node_meta(
                    self.directory, node=self.node_id, term=self.term,
                    role="standby", fsync=wal_fsync,
                )
        self._wal_fsync = wal_fsync
        self.catalog = Catalog()
        self.manager = DurabilityManager(
            self.directory,
            wal_fsync=wal_fsync,
            checkpoint_threshold=checkpoint_threshold,
            replica=True,
        )
        self.manager.attach(self.catalog)
        self._lock = threading.RLock()
        self._closed = False
        self._promoted = False
        #: Set when an injected fault simulated this node's death; the
        #: harness restarts the directory as a fresh incarnation.
        self.crashed = False
        #: Node id of the primary whose stream we last accepted at the
        #: current term; a *different* node presenting an equal term is
        #: rejected (two claimants, neither promoted over the other).
        self._accepted_node: Optional[str] = None
        #: Primary's tail LSN as of the last message (for lag).
        self.primary_last_lsn = self.manager.wal.last_lsn
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # Restart-on-the-same-port is the normal standby lifecycle (the
        # primary's reconnect loop only knows one address).  Sockets
        # accepted by the previous incarnation can hold the port for a
        # moment after its close; retry briefly before giving up.
        deadline = time.monotonic() + 2.0
        while True:
            try:
                self._listener.bind((host, port))
                break
            except OSError:
                if port == 0 or time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._listener.listen(4)
        self.address = self._listener.getsockname()
        self._threads: list = []
        #: Live accepted sockets; shutdown closes them so serve threads
        #: blocked in recv release the port immediately.
        self._conns: set = set()
        accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-standby-{self.address[1]}",
            daemon=True,
        )
        self._threads.append(accept_thread)
        accept_thread.start()

    # ------------------------------------------------------------------
    # Stream serving
    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                protocol.REPL_IO_CALLS["accept"] += 1
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed (shutdown or promotion)
            if self._closed or self._promoted:
                conn.close()
                return
            with self._lock:
                self._conns.add(conn)
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name=f"repro-standby-conn-{self.address[1]}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _serve(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(30.0)
            self._serve_inner(conn)
        except (OSError, ReplicationError, WalCorruptionError,
                CheckpointError):
            # A dead peer, a torn stream, or a frame that failed
            # verification: drop the connection.  The primary
            # reconnects and resumes from our flushed tail; nothing
            # unverified was applied.
            pass
        except SimulatedCrash:
            # The in-process harness crashed this standby mid-apply (a
            # torn frame append, a checkpoint install).  A real process
            # would be gone — and continuing to use a WAL whose
            # in-memory tail no longer matches the file would
            # double-write the torn frame on resend and corrupt later
            # recovery.  Die wholesale; the harness restarts the node
            # and recovery seals the torn tail (and sweeps any .spool
            # leftovers).
            self._simulate_crash()
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _serve_inner(self, conn: socket.socket) -> None:
        message = protocol.recv_message(conn)
        if message is None:
            return
        kind, body = message
        if kind != protocol.HELLO:
            raise ReplicationProtocolError(
                f"expected HELLO, got {kind!r}"
            )
        hello = protocol.decode_json(body, kind="HELLO")
        remote_node = str(hello.get("node"))
        remote_term = int(hello.get("term", 0))
        with self._lock:
            if self._closed or self._promoted:
                protocol.send_json(conn, protocol.REJECT, {
                    "term": self.term,
                    "reason": "standby promoted" if self._promoted
                    else "standby closed",
                })
                return
            if remote_term < self.term or (
                remote_term == self.term
                and self._accepted_node is not None
                and remote_node != self._accepted_node
            ):
                # The fencing rejection: this claimant's lineage is
                # stale (or it ties a different claimant we already
                # follow).  It must never acknowledge another write.
                if OBS.metrics:
                    METRICS.counter(
                        "repro_repl_reject_total", reason="stale_term"
                    ).inc()
                protocol.send_json(conn, protocol.REJECT, {
                    "term": self.term,
                    "reason": f"stale term {remote_term} < {self.term}",
                })
                return
            if remote_term > self.term or self._accepted_node is None:
                # Adopt the primary's lineage *durably* before a single
                # frame flows: if we are later promoted, our bumped
                # term must exceed this primary's even across our own
                # crashes.
                self.term = remote_term
                self._accepted_node = remote_node
                store_node_meta(
                    self.directory, node=self.node_id, term=self.term,
                    role="standby", fsync=self._wal_fsync,
                )
            start_lsn = self.manager.wal.last_lsn
            protocol.send_json(conn, protocol.WELCOME, {
                "node": self.node_id,
                "term": self.term,
                "start_lsn": start_lsn,
            })
        self._stream_loop(conn)

    def _stream_loop(self, conn: socket.socket) -> None:
        u64 = protocol.U64
        while True:
            if self._closed or self._promoted:
                return
            try:
                message = protocol.recv_message(conn)
            except socket.timeout:
                continue
            if message is None:
                return
            kind, body = message
            if kind == protocol.FRAME:
                if len(body) < 2 * u64.size:
                    raise ReplicationProtocolError("short FRAME body")
                (primary_last,) = u64.unpack_from(body, 0)
                (lsn,) = u64.unpack_from(body, u64.size)
                frame = body[2 * u64.size:]
                self.manager.replicate_frame(
                    lsn, frame,
                    self._decode_frame_payload(frame),
                )
            elif kind == protocol.CHECKPOINT:
                if len(body) < u64.size:
                    raise ReplicationProtocolError("short CHECKPOINT body")
                (primary_last,) = u64.unpack_from(body, 0)
                self.manager.replicate_checkpoint(body[u64.size:])
            else:
                raise ReplicationProtocolError(
                    f"unexpected stream message kind {kind!r}"
                )
            self.primary_last_lsn = max(primary_last, self.manager.wal.last_lsn)
            if OBS.metrics:
                METRICS.counter(
                    "repro_repl_stream_bytes_total", direction="rx"
                ).inc(len(body))
                METRICS.gauge(
                    "repro_repl_lag_records", role="standby",
                    node=self.node_id,
                ).set(self.lag_records)
            protocol.send_message(
                conn, protocol.ACK, u64.pack(self.manager.wal.last_lsn)
            )

    @staticmethod
    def _decode_frame_payload(frame: bytes) -> Dict[str, Any]:
        """Decode the JSON payload out of a raw frame for _apply.

        Structural/CRC validation happens again inside
        ``append_frame``; this only needs the dict, and tolerates
        nothing — a frame whose JSON fails to parse is corrupt.
        """
        import json
        import struct
        header = struct.Struct("<IIQ")
        if len(frame) < header.size:
            raise ReplicationProtocolError("frame shorter than its header")
        try:
            return json.loads(frame[header.size:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ReplicationProtocolError(
                f"frame payload undecodable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def flushed_lsn(self) -> int:
        """Highest LSN applied and flushed locally."""
        return self.manager.wal.last_lsn if self.manager.wal else 0

    @property
    def lag_records(self) -> int:
        """Records the primary has durable that we have not."""
        return max(0, self.primary_last_lsn - self.flushed_lsn)

    def status(self) -> Dict[str, Any]:
        return {
            "node": self.node_id,
            "term": self.term,
            "address": list(self.address),
            "flushed_lsn": self.flushed_lsn,
            "primary_last_lsn": self.primary_last_lsn,
            "lag_records": self.lag_records,
            "promoted": self._promoted,
            "tables": sorted(n.lower() for n in self.catalog.names()),
        }

    # ------------------------------------------------------------------
    # Promotion + lifecycle
    # ------------------------------------------------------------------

    def promote(self) -> int:
        """Fence and step up; returns the new term.

        Ordering is the invariant: (1) stop accepting stream traffic,
        (2) make the bumped term durable, (3) close the replica
        manager.  A crash between (1) and (2) — the ``repl_promote``
        window — leaves an unpromoted standby whose next incarnation
        can simply retry; a crash after (2) leaves a promoted node
        whose term is already fenced in, so re-running promotion (or
        opening the directory as a primary) is safe.
        """
        with self._lock:
            if self._closed:
                raise ReplicationError("cannot promote a closed standby")
            if self._promoted:
                return self.term
            self._close_listener()
            spec = _crash_point("repl_promote")
            if spec is not None:
                execute_crash(spec)
            new_term = self.term + 1
            store_node_meta(
                self.directory, node=self.node_id, term=new_term,
                role="primary", fsync=True,
            )
            self.term = new_term
            self._promoted = True
            self._closed = True
            self.manager.close()
        self._close_conns()
        if OBS.metrics:
            METRICS.counter("repro_repl_promotions_total").inc()
        return self.term

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._close_listener()
            self.manager.close()
        self._close_conns()

    def _close_conns(self) -> None:
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for conn in conns:
            # shutdown() before close(): a bare close() of an fd a
            # serve thread is blocked in recv() on does not interrupt
            # the syscall, and the kernel socket (holding our port)
            # stays alive until the 30s recv timeout fires.
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _close_listener(self) -> None:
        # Same reasoning as _close_conns: wake the blocked accept().
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass

    def _simulate_crash(self) -> None:
        with self._lock:
            self.crashed = True
            self._closed = True
            self._close_listener()
            self.manager.abandon()
        self._close_conns()

    def abandon(self) -> None:
        """Die without flushing — the in-process crash stand-in."""
        with self._lock:
            self._closed = True
            self._close_listener()
            self.manager.abandon()
        self._close_conns()

    def __enter__(self) -> "ReplicationStandby":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
