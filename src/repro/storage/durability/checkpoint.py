"""Checkpoints: full-state snapshots installed atomically.

A checkpoint is one file (``CHECKPOINT`` in the database directory)
holding the complete durable state — every table image, every snapshot
epoch (including epochs of dropped or engine-external tables), every UDF
definition version, the database generation, and the LSN of the last WAL
record folded in.  Format::

    [8-byte magic "RCKP0001"][u32 crc32(payload)][payload JSON]

Install protocol (the crash harness drives every window of it):

1. write the full image to a same-directory temp file (unbuffered),
2. fsync the temp file,
3. ``os.replace`` it over ``CHECKPOINT``,
4. fsync the directory,
5. reset the WAL with ``base_lsn = checkpoint.lsn``.

A crash before (3) leaves the old checkpoint intact (the temp file is
garbage that startup sweeps); a crash between (3) and (5) leaves a new
checkpoint plus a WAL whose frames all have ``lsn <= checkpoint.lsn`` —
replay skips them by LSN, so nothing is applied twice.
"""

from __future__ import annotations

import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Any, Dict, Optional, Union

try:
    import json
except ImportError:  # pragma: no cover - stdlib
    raise

from ...errors import CheckpointError
from ..atomic import fsync_dir
from .wal import IO_CALLS, _crash_point, execute_crash

__all__ = [
    "CHECKPOINT_NAME",
    "write_checkpoint",
    "read_checkpoint",
    "decode_checkpoint_blob",
    "load_checkpoint_blob",
    "install_checkpoint_blob",
]

CHECKPOINT_NAME = "CHECKPOINT"
MAGIC = b"RCKP0001"
_CRC = struct.Struct("<I")


def write_checkpoint(
    directory: Union[str, Path], state: Dict[str, Any], *, fsync: bool = True
) -> Path:
    """Atomically install ``state`` as the directory's checkpoint."""
    directory = Path(directory)
    path = directory / CHECKPOINT_NAME
    payload = json.dumps(
        state, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
    blob = MAGIC + _CRC.pack(zlib.crc32(payload)) + payload
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=f".{CHECKPOINT_NAME}.", suffix=".tmp"
    )
    try:
        spec = _crash_point("checkpoint_write")
        if spec is not None:
            cut = spec.get("cut")
            cut = len(blob) if cut is None else max(0, min(cut, len(blob)))
            if cut:
                IO_CALLS["write"] += 1
                os.write(fd, blob[:cut])
            os.close(fd)
            execute_crash(spec)
        IO_CALLS["write"] += 1
        os.write(fd, blob)
        if fsync:
            IO_CALLS["fsync"] += 1
            os.fsync(fd)
    finally:
        try:
            os.close(fd)
        except OSError:
            pass
    spec = _crash_point("checkpoint_replace")
    if spec is not None:
        execute_crash(spec)
    os.replace(tmp_name, path)
    if fsync:
        fsync_dir(directory)
    return path


def read_checkpoint(directory: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """Load and validate the directory's checkpoint, or None if absent.

    Corruption raises :class:`~repro.errors.CheckpointError`: the
    atomic-install protocol means a torn checkpoint cannot occur through
    any crash window, so a bad file is external damage recovery must not
    paper over by silently starting empty.
    """
    path = Path(directory) / CHECKPOINT_NAME
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return None
    header_len = len(MAGIC) + _CRC.size
    if len(blob) < header_len or blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError(f"bad checkpoint magic in {str(path)!r}")
    (crc,) = _CRC.unpack(blob[len(MAGIC): header_len])
    payload = blob[header_len:]
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"checkpoint checksum mismatch in {str(path)!r}")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint payload undecodable in {str(path)!r}: {exc}"
        ) from exc


def decode_checkpoint_blob(blob: bytes, *, origin: str = "<blob>") -> Dict[str, Any]:
    """Validate a raw checkpoint image (magic + CRC) and return its state.

    Shared by the replication path: the primary re-verifies the image it
    is about to ship and the standby re-verifies what arrived, so a
    corruption anywhere between the two disks is caught before install.
    """
    header_len = len(MAGIC) + _CRC.size
    if len(blob) < header_len or blob[: len(MAGIC)] != MAGIC:
        raise CheckpointError(f"bad checkpoint magic in {origin}")
    (crc,) = _CRC.unpack(blob[len(MAGIC): header_len])
    payload = blob[header_len:]
    if zlib.crc32(payload) != crc:
        raise CheckpointError(f"checkpoint checksum mismatch in {origin}")
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint payload undecodable in {origin}: {exc}"
        ) from exc


def load_checkpoint_blob(directory: Union[str, Path]):
    """The directory's checkpoint as validated raw bytes, or None.

    Returns ``(state, blob)``; the blob is exactly what
    :func:`install_checkpoint_blob` installs on a standby.
    """
    path = Path(directory) / CHECKPOINT_NAME
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        return None
    return decode_checkpoint_blob(blob, origin=str(path)), blob


def install_checkpoint_blob(
    directory: Union[str, Path], blob: bytes, *, fsync: bool = True
) -> Dict[str, Any]:
    """Atomically install a shipped checkpoint image on a standby.

    Stages through a same-directory ``.repl-ckpt.*.spool`` file (swept by
    startup hygiene and by ``scripts/check_temp_leaks.py``) so a crash
    mid-install leaves either the old checkpoint or the new one, never a
    torn file.  The blob is re-validated before a byte is written.
    """
    directory = Path(directory)
    state = decode_checkpoint_blob(blob, origin=f"{directory}/<shipped>")
    path = directory / CHECKPOINT_NAME
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=".repl-ckpt.", suffix=".spool"
    )
    spec = _crash_point("repl_install")
    if spec is not None:
        # A crash mid-install deliberately leaves the spool file on
        # disk — the next startup sweep (and the leak scanner, for
        # directories never recovered) must account for it.
        os.close(fd)
        execute_crash(spec)
    try:
        IO_CALLS["write"] += 1
        os.write(fd, blob)
        if fsync:
            IO_CALLS["fsync"] += 1
            os.fsync(fd)
        os.close(fd)
    except OSError:
        try:
            os.close(fd)
        except OSError:
            pass
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    os.replace(tmp_name, path)
    if fsync:
        fsync_dir(directory)
    return state
