"""The write-ahead log: length-prefixed, CRC-checksummed, fsync'd frames.

File layout::

    [8-byte magic "RWAL0001"][u64 base_lsn]        -- header
    [u32 len][u32 crc][u64 lsn][payload bytes]     -- frame, repeated

* ``len`` is the payload length in bytes.
* ``crc`` is ``zlib.crc32`` over the 8 little-endian LSN bytes followed
  by the payload, so a frame whose length field survived a tear but
  whose body didn't still fails validation.
* ``lsn`` is a monotonically increasing sequence number that survives
  checkpoint truncation (the post-checkpoint log restarts at the
  checkpoint's LSN as ``base_lsn``), so replay can skip frames already
  folded into a checkpoint even when a crash landed between the
  checkpoint install and the log reset.

The file is opened **unbuffered** (``buffering=0``): every append is a
single OS ``write`` followed (when ``fsync`` is on) by an ``fsync``.
There is no userspace buffer that a simulated crash could accidentally
flush later, which is what makes the kill-injection harness's torn
writes faithful.

Scanning stops at the first frame that is short, fails its CRC, or
regresses its LSN — the *torn tail* — and :meth:`WriteAheadLog.seal`
truncates it.  A valid frame is never followed by garbage in a correct
log (appends are sequential), so everything past the first bad byte is
by construction unacknowledged.
"""

from __future__ import annotations

import os
import signal
import struct
import time
import zlib
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple, Union

from ...errors import SimulatedCrash, WalCorruptionError, WalPoisonedError
from ...obs import METRICS, OBS
from ...resilience import runtime

try:
    import json
except ImportError:  # pragma: no cover - stdlib
    raise

__all__ = ["WriteAheadLog", "WalRecord", "IO_CALLS", "reset_io_calls"]

MAGIC = b"RWAL0001"
_HEADER = struct.Struct("<Q")
_FRAME = struct.Struct("<IIQ")
_LSN = struct.Struct("<Q")

#: Global count of WAL file-system calls (writes, fsyncs, truncates).
#: The WAL-disabled benchmark gate asserts this stays zero across a full
#: suite run with no durability attached — the structural proof that the
#: disabled path performs no I/O at all, syscall by syscall.
IO_CALLS = {"write": 0, "fsync": 0, "truncate": 0}


def reset_io_calls() -> None:
    for key in IO_CALLS:
        IO_CALLS[key] = 0


class WalRecord:
    """One decoded WAL frame."""

    __slots__ = ("lsn", "payload")

    def __init__(self, lsn: int, payload: Dict[str, Any]):
        self.lsn = lsn
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(lsn={self.lsn}, op={self.payload.get('op')!r})"


def _crash_point(stage: str) -> Optional[dict]:
    """Consult the armed fault injector at a durability fault point."""
    if not runtime.FAULTS.armed:
        return None
    hook = getattr(runtime.FAULTS.injector, "durability_fault", None)
    if hook is None:
        return None
    return hook(stage)


def execute_crash(spec: dict) -> None:
    """Die as instructed by a durability crash spec (never returns)."""
    if spec.get("action") == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(60)  # pragma: no cover - the signal lands first
    raise SimulatedCrash(f"injected crash at {spec.get('stage')}")


class WriteAheadLog:
    """An append-only, checksummed log for one database directory."""

    def __init__(self, path: Union[str, Path], *, fsync: bool = True):
        self.path = Path(path)
        self.fsync_enabled = fsync
        existed = self.path.exists()
        # Unbuffered: see module docstring.
        self._file = open(self.path, "r+b" if existed else "x+b", buffering=0)
        if existed and self.path.stat().st_size >= len(MAGIC) + _HEADER.size:
            header = self._file.read(len(MAGIC) + _HEADER.size)
            if header[: len(MAGIC)] != MAGIC:
                self._file.close()
                raise WalCorruptionError(
                    "bad WAL magic", path=str(self.path), offset=0
                )
            (self.base_lsn,) = _HEADER.unpack(header[len(MAGIC):])
        else:
            # New (or torn-header) log: write a fresh header.
            self.base_lsn = 0
            self._file.seek(0)
            self._file.truncate()
            self._write(MAGIC + _HEADER.pack(0))
            self._fsync()
        self.last_lsn = self.base_lsn
        #: Byte offset of the end of the last valid frame (maintained by
        #: scan/seal and by append).
        self._end = len(MAGIC) + _HEADER.size
        self._scanned = False
        self._tail_garbage = 0
        #: Fail-stop poisoning: the first OSError escaping an append or
        #: reset may have left a torn frame on disk.  A later append
        #: that *succeeded* would sit beyond the tear and be silently
        #: truncated by the next recovery's torn-tail scan — an acked
        #: write that never happened.  Once poisoned, every write path
        #: fails fast with WalPoisonedError until recovery re-seals.
        self._poisoned: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Low-level I/O (counted for the zero-syscall disabled gate)
    # ------------------------------------------------------------------

    def _write(self, data: bytes) -> None:
        IO_CALLS["write"] += 1
        self._file.write(data)

    def _fsync(self) -> None:
        if not self.fsync_enabled:
            return
        IO_CALLS["fsync"] += 1
        os.fsync(self._file.fileno())

    def _read_exact(self, count: int) -> Optional[bytes]:
        """Read exactly ``count`` bytes, or None at a short tail."""
        chunks = []
        remaining = count
        while remaining:
            chunk = self._file.read(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # Read side (recovery)
    # ------------------------------------------------------------------

    def scan(self) -> Iterator[WalRecord]:
        """Yield valid frames in order; stop at the first torn one.

        Records the end offset of the last valid frame so :meth:`seal`
        can truncate trailing garbage.  A frame that fails validation
        *and* is followed by nothing but the file end is a torn tail
        (expected after a crash); scanning simply stops there either
        way, because nothing after an invalid frame can have been
        acknowledged.
        """
        self._file.seek(0, os.SEEK_END)
        size = self._file.tell()
        offset = len(MAGIC) + _HEADER.size
        self._file.seek(offset)
        last_lsn = self.base_lsn
        while offset < size:
            header = self._read_exact(_FRAME.size)
            if header is None:
                break
            length, crc, lsn = _FRAME.unpack(header)
            payload = self._read_exact(length)
            if payload is None:
                break
            if zlib.crc32(_LSN.pack(lsn) + payload) != crc:
                break
            if lsn <= last_lsn:
                # LSN regression: stale bytes from a pre-reset log that
                # a torn reset left behind. Nothing past them is valid.
                break
            try:
                decoded = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            offset += _FRAME.size + length
            last_lsn = lsn
            yield WalRecord(lsn, decoded)
        self._end = offset
        self._tail_garbage = size - offset
        self.last_lsn = last_lsn
        self._scanned = True

    def seal(self) -> int:
        """Truncate trailing garbage after a scan; return bytes dropped.

        Idempotent and crash-safe: truncating at the last valid frame
        end loses only bytes that were never acknowledged (an append
        only returns after its full frame and fsync).
        """
        if not self._scanned:
            for _ in self.scan():
                pass
        dropped = self._tail_garbage
        if dropped:
            self._file.seek(self._end)
            IO_CALLS["truncate"] += 1
            self._file.truncate()
            self._fsync()
            self._tail_garbage = 0
            if OBS.metrics:
                METRICS.counter("repro_wal_truncate_total").inc()
                METRICS.counter("repro_wal_truncated_bytes_total").inc(dropped)
        self._file.seek(self._end)
        # The tail is sealed: whatever tear poisoned a previous
        # incarnation's write path is gone from the file now.
        self._poisoned = None
        if OBS.metrics:
            METRICS.counter(
                "repro_wal_seal_total",
                outcome="torn" if dropped else "clean",
            ).inc()
        return dropped

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """Bytes of framed records currently in the log (sans header)."""
        return self._end - (len(MAGIC) + _HEADER.size)

    def _check_poisoned(self) -> None:
        if self._poisoned is not None:
            raise WalPoisonedError(
                path=str(self.path), cause=self._poisoned
            )

    def append(self, payload: Dict[str, Any]) -> int:
        """Frame, write, and fsync one record; return its LSN.

        The record is durable (to the extent ``fsync`` guarantees) when
        this returns — callers acknowledge *after* this point, which is
        the contract the crash harness verifies.  An ``OSError`` from
        the write or fsync poisons the log (see :class:`WalPoisonedError`)
        and is re-raised typed; later appends fail fast.
        """
        self._check_poisoned()
        lsn = self.last_lsn + 1
        data = json.dumps(
            payload, separators=(",", ":"), ensure_ascii=False
        ).encode("utf-8")
        frame = (
            _FRAME.pack(len(data), zlib.crc32(_LSN.pack(lsn) + data), lsn)
            + data
        )
        self._write_frame(lsn, frame, op=str(payload.get("op")))
        return lsn

    def append_frame(self, lsn: int, frame: bytes) -> int:
        """Append a pre-framed record verbatim (replication apply path).

        The standby re-validates the frame exactly as recovery would —
        structure, CRC, and LSN continuity — before the bytes touch its
        log, so a corrupted or reordered stream can never install a
        frame the next recovery would reject.
        """
        self._check_poisoned()
        if len(frame) < _FRAME.size:
            raise WalCorruptionError(
                "replicated frame shorter than its header",
                path=str(self.path),
            )
        length, crc, frame_lsn = _FRAME.unpack(frame[: _FRAME.size])
        payload = frame[_FRAME.size:]
        if len(payload) != length:
            raise WalCorruptionError(
                f"replicated frame length mismatch ({len(payload)} != "
                f"{length})", path=str(self.path),
            )
        if zlib.crc32(_LSN.pack(frame_lsn) + payload) != crc:
            raise WalCorruptionError(
                "replicated frame failed its CRC", path=str(self.path)
            )
        if frame_lsn != lsn or lsn != self.last_lsn + 1:
            raise WalCorruptionError(
                f"replicated frame LSN {frame_lsn} breaks continuity "
                f"(expected {self.last_lsn + 1})", path=str(self.path),
            )
        self._write_frame(lsn, frame, op="replicated")
        return lsn

    def _write_frame(self, lsn: int, frame: bytes, *, op: str) -> None:
        start = time.perf_counter() if OBS.metrics else 0.0
        spec = _crash_point("wal_append")
        if spec is not None:
            cut = spec.get("cut")
            cut = len(frame) if cut is None else max(0, min(cut, len(frame)))
            if cut:
                self._write(frame[:cut])
            execute_crash(spec)
        try:
            self._write(frame)
            spec = _crash_point("wal_fsync")
            if spec is not None:
                # Crash before the fsync returns: the frame may or may
                # not survive, but the caller never saw an ack.
                execute_crash(spec)
            self._fsync()
        except OSError as exc:
            self._poisoned = exc
            raise WalPoisonedError(
                path=str(self.path), cause=exc
            ) from exc
        self.last_lsn = lsn
        self._end += len(frame)
        if OBS.metrics:
            METRICS.counter("repro_wal_records_total", op=op).inc()
            METRICS.counter("repro_wal_bytes_total").inc(len(frame))
            METRICS.histogram("repro_wal_append_seconds").observe(
                time.perf_counter() - start
            )

    def reset(self, base_lsn: int) -> None:
        """Truncate the log after a checkpoint; LSNs continue from
        ``base_lsn`` so frames folded into the checkpoint can never be
        replayed twice even if a crash interleaves with the reset.

        A crash inside the truncate-to-header window leaves a short or
        headerless file whose ``base_lsn`` is lost; reopen rewrites a
        fresh header at 0 and recovery restores monotonicity from the
        checkpoint LSN (:meth:`DurabilityManager._recover` resets the
        log to the checkpoint LSN whenever the sealed log ends below
        it), so post-recovery appends can never be mistaken for
        already-checkpointed frames."""
        self._check_poisoned()
        header = MAGIC + _HEADER.pack(base_lsn)
        try:
            self._file.seek(0)
            IO_CALLS["truncate"] += 1
            self._file.truncate()
            spec = _crash_point("wal_reset")
            if spec is not None:
                cut = spec.get("cut")
                cut = len(header) if cut is None else max(0, min(cut, len(header)))
                if cut:
                    self._write(header[:cut])
                execute_crash(spec)
            self._write(header)
            self._fsync()
        except OSError as exc:
            self._poisoned = exc
            raise WalPoisonedError(
                path=str(self.path), cause=exc
            ) from exc
        self.base_lsn = base_lsn
        self.last_lsn = base_lsn
        self._end = len(MAGIC) + _HEADER.size
        self._tail_garbage = 0
        if OBS.metrics:
            METRICS.counter("repro_wal_reset_total").inc()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def abandon(self) -> None:
        """Close without any further writes — the in-process crash
        harness's stand-in for process death.  The file is unbuffered,
        so close() cannot flush bytes the "dead process" still held."""
        self.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
