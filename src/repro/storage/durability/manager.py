"""The durability manager: WAL + checkpointer + recovery for one database.

One :class:`DurabilityManager` owns one database directory::

    <dir>/CHECKPOINT   -- latest full-state snapshot (atomic install)
    <dir>/wal.log      -- append-only log of changes since the checkpoint

Attach it to a live engine with :meth:`attach` (or the
``durability_dir=`` knob on the minidb adapters): attach first runs
**recovery** — load the checkpoint, replay WAL frames with ``lsn``
beyond it, truncate any torn tail, restore snapshot epochs and UDF
definition versions, and advance the database *generation* — then wires
the logging hooks so every subsequent catalog mutation (register /
drop / touch) and UDF version bump appends a checksummed, fsync'd WAL
frame before the caller sees the operation return.

The generation is the cache-safety backstop: epochs restored from the
log are exact for every *acknowledged* write, but an epoch bump that was
sitting in memory when the process died was never logged — after
recovery that epoch value could be handed out again for *different*
data, resurrecting a result-cache entry keyed under it.  Recovery
therefore bumps a persisted generation counter that
:class:`~repro.cache.manager.CacheManager` folds into every result key,
making any pre-crash entry structurally unreachable.

Checkpointing is threshold-triggered inline (``checkpoint_threshold``
bytes of WAL) and optionally periodic (``checkpoint_interval_s`` starts
a daemon thread); both run the same atomic install + LSN-gated WAL
reset.  Lock order is always catalog -> manager: the catalog's mutation
lock is held around epoch-bump + WAL append, which is what guarantees
WAL order matches epoch order under concurrent writers.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ...errors import (
    NodeFencedError,
    RecoveryError,
    ReplicationProtocolError,
    WalPoisonedError,
)
from ...obs import METRICS, OBS
from ...obs import tracer as obs_tracer
from ..table import Table
from . import records
from .checkpoint import (
    install_checkpoint_blob,
    read_checkpoint,
    write_checkpoint,
)
from .wal import WalRecord, WriteAheadLog, _crash_point, execute_crash

__all__ = ["DurabilityManager", "RecoveryReport", "attach_to_adapter"]

WAL_NAME = "wal.log"


@dataclass
class RecoveryReport:
    """What one recovery pass found and restored."""

    directory: str
    checkpoint_loaded: bool = False
    tables_restored: int = 0
    records_replayed: int = 0
    truncated_bytes: int = 0
    torn_tail: bool = False
    generation: int = 0
    last_lsn: int = 0
    udf_versions: int = 0
    duration_s: float = 0.0
    swept_temp_files: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<recovery {self.directory}: ckpt={self.checkpoint_loaded} "
            f"tables={self.tables_restored} replayed={self.records_replayed} "
            f"torn={self.torn_tail} gen={self.generation}>"
        )


class DurabilityManager:
    """Write-ahead logging, checkpointing, and recovery for one database."""

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        wal_enabled: bool = True,
        wal_fsync: bool = True,
        checkpoint_threshold: int = 4 << 20,
        checkpoint_interval_s: Optional[float] = None,
        replica: bool = False,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.wal_enabled = wal_enabled
        self.wal_fsync = wal_fsync
        self.checkpoint_threshold = int(checkpoint_threshold)
        self.checkpoint_interval_s = checkpoint_interval_s
        #: Replica mode: the directory is a standby fed by
        #: :meth:`replicate_frame`/:meth:`replicate_checkpoint`.  The
        #: WAL holds the *primary's* frames verbatim (same LSNs), so
        #: recovery must not append anything of its own — no generation
        #: record, no logging hooks — or the log would diverge from the
        #: stream it resumes.
        self.replica = replica
        self._lock = threading.RLock()
        self.catalog: Optional[Any] = None
        self.registry: Optional[Any] = None
        self.wal: Optional[WriteAheadLog] = None
        #: Optional :class:`~repro.storage.replication.ReplicationPrimary`
        #: notified (and, in sync mode, waited on) after every append.
        self.replication: Optional[Any] = None
        #: Fail-stop state: an I/O failure on the append/checkpoint path
        #: or a fencing rejection makes every later write raise typed.
        self._poisoned: Optional[BaseException] = None
        self._fenced_term: Optional[int] = None
        self.generation = 0
        #: Persisted UDF definition versions: ``{name: (version, fp)}``.
        #: Maintained from recovery and from registry version listeners;
        #: the single source the checkpointer snapshots.
        self._udf_versions: Dict[str, Tuple[int, str]] = {}
        self.last_recovery: Optional[RecoveryReport] = None
        self.checkpoints = 0
        self._closed = False
        self._swept = self._sweep_temp_files()
        self._interval_thread: Optional[threading.Thread] = None
        self._interval_stop = threading.Event()

    # ------------------------------------------------------------------
    # Startup hygiene
    # ------------------------------------------------------------------

    def _sweep_temp_files(self) -> int:
        """Remove orphaned atomic-write temp files from crashed runs.

        ``.tmp`` files come from checkpoint installs, ``.spool`` files
        from replicated checkpoint images staged on a standby that died
        mid-install.
        """
        swept = 0
        for name in os.listdir(self.directory):
            if name.endswith(".tmp") or name.endswith(".spool"):
                try:
                    os.unlink(self.directory / name)
                    swept += 1
                except OSError:
                    pass
        return swept

    # ------------------------------------------------------------------
    # Attach + recovery
    # ------------------------------------------------------------------

    def attach(self, catalog: Any, registry: Optional[Any] = None) -> RecoveryReport:
        """Recover on-disk state into ``catalog``/``registry``, then wire
        the WAL hooks.  Not safe concurrently with writers — attach
        before serving traffic (adapters do this in their constructor).
        """
        with self._lock:
            if self.catalog is not None:
                raise RecoveryError(
                    f"durability manager for {str(self.directory)!r} is "
                    f"already attached"
                )
            report = self._recover(catalog, registry)
            self.catalog = catalog
            self.registry = registry
            if not self.replica:
                # A standby catalog must never log its own frames — its
                # WAL is a verbatim copy of the primary's stream, and
                # applying arrives through replicate_frame's restore
                # hooks, which bypass the logging hooks by design.
                catalog.durability = self
                if registry is not None:
                    registry.add_version_listener(self._on_udf_version)
            if self.checkpoint_interval_s is not None:
                self._start_interval_checkpointer()
        return report

    def _recover(self, catalog: Any, registry: Optional[Any]) -> RecoveryReport:
        start = time.perf_counter()
        report = RecoveryReport(directory=str(self.directory))
        report.swept_temp_files = self._swept
        with obs_tracer.maybe_trace("recovery", dir=str(self.directory)):
            try:
                ckpt_sp = obs_tracer.span_start(
                    "load_checkpoint", "durability"
                )
                state = read_checkpoint(self.directory)
                skip_lsn = 0
                if state is not None:
                    report.checkpoint_loaded = True
                    skip_lsn = int(state.get("lsn", 0))
                    self.generation = int(state.get("generation", 0))
                    for payload in state.get("tables", ()):
                        catalog.restore_table(records.decode_table(payload))
                        report.tables_restored += 1
                    for name, epoch in state.get("epochs", {}).items():
                        catalog.restore_epoch(name, int(epoch))
                    for name, entry in state.get("udfs", {}).items():
                        self._udf_versions[name] = (
                            int(entry["version"]), entry["fp"]
                        )
                if ckpt_sp is not None:
                    obs_tracer.span_end(
                        ckpt_sp, loaded=report.checkpoint_loaded,
                        tables=report.tables_restored,
                    )

                replay_sp = obs_tracer.span_start("replay_wal", "durability")
                self.wal = WriteAheadLog(
                    self.directory / WAL_NAME, fsync=self.wal_fsync
                )
                for record in self.wal.scan():
                    if record.lsn <= skip_lsn:
                        continue
                    self._apply(catalog, record)
                    report.records_replayed += 1
                report.truncated_bytes = self.wal.seal()
                report.torn_tail = report.truncated_bytes > 0
                if self.wal.last_lsn < skip_lsn:
                    # A crash inside WriteAheadLog.reset() (after the
                    # truncate, before the new header was durable) left
                    # a log whose LSNs restart below the checkpoint.
                    # Every surviving frame was already folded into the
                    # checkpoint, so re-reset at the checkpoint LSN:
                    # without this, post-recovery appends would get
                    # LSNs <= skip_lsn and the *next* recovery would
                    # silently skip acknowledged records.
                    self.wal.reset(skip_lsn)
                if report.torn_tail:
                    obs_tracer.add_event(
                        "wal_torn_tail", bytes=report.truncated_bytes
                    )
                if replay_sp is not None:
                    obs_tracer.span_end(
                        replay_sp, replayed=report.records_replayed,
                        truncated_bytes=report.truncated_bytes,
                    )

                # Generation: strictly advance past anything any
                # pre-crash in-memory state could have keyed caches
                # under, and persist the advance before serving queries.
                # Replica mode skips the bump: a standby serves no
                # queries (no caches to fence) and must not append
                # records of its own to a log that mirrors the
                # primary's LSN sequence.  Promotion re-runs recovery
                # in normal mode, which is where the bump lands.
                if self.replica:
                    catalog.generation = self.generation
                else:
                    self.generation += 1
                    catalog.generation = self.generation
                    if self.wal_enabled:
                        self.wal.append(
                            records.generation_record(self.generation)
                        )
                    else:
                        # Snapshot-only mode has no log to carry the
                        # bump: checkpoint immediately, otherwise a
                        # crash before the close()-time checkpoint
                        # recomputes the same generation next recovery
                        # and the cache-resurrection backstop silently
                        # fails.
                        self._checkpoint_locked(catalog)

                if registry is not None and self._udf_versions:
                    for name, (version, fp) in self._udf_versions.items():
                        registry.restore_version(name, version, fp)
                report.udf_versions = len(self._udf_versions)
                report.generation = self.generation
                report.last_lsn = self.wal.last_lsn
            finally:
                report.duration_s = time.perf_counter() - start
        if OBS.metrics:
            METRICS.counter(
                "repro_recovery_total",
                outcome="torn" if report.torn_tail else "clean",
            ).inc()
            METRICS.counter("repro_recovery_replayed_records_total").inc(
                report.records_replayed
            )
            METRICS.counter("repro_recovery_truncated_bytes_total").inc(
                report.truncated_bytes
            )
            METRICS.histogram("repro_recovery_seconds").observe(
                report.duration_s
            )
        self.last_recovery = report
        return report

    def _apply(self, catalog: Any, record: WalRecord) -> None:
        payload = record.payload
        op = payload.get("op")
        if op == "table":
            catalog.restore_table(
                records.decode_table(payload), epoch=int(payload["epoch"])
            )
        elif op == "drop":
            catalog.restore_drop(payload["name"], epoch=int(payload["epoch"]))
        elif op == "touch":
            catalog.restore_epoch(payload["name"], int(payload["epoch"]))
        elif op == "udf":
            self._udf_versions[payload["name"]] = (
                int(payload["version"]), payload["fp"]
            )
        elif op == "gen":
            self.generation = max(self.generation, int(payload["generation"]))
        else:
            raise RecoveryError(
                f"unknown WAL record op {op!r} at lsn {record.lsn}"
            )

    # ------------------------------------------------------------------
    # Logging hooks (called by Catalog under its mutation lock, and by
    # the registry's version listener)
    # ------------------------------------------------------------------

    def log_table(self, table: Table, epoch: int) -> None:
        self._append(records.table_record(table, epoch))

    def log_drop(self, name: str, epoch: int) -> None:
        self._append(records.drop_record(name, epoch))

    def log_touch(self, name: str, epoch: int) -> None:
        self._append(records.touch_record(name, epoch))

    def _on_udf_version(self, name: str, version: int) -> None:
        registry = self.registry
        fp = registry.fingerprint_of(name) if registry is not None else ""
        # Catalog -> manager lock order, matching log_table/checkpoint():
        # the registry listener fires without the catalog lock, but the
        # threshold checkpoint this append can trigger iterates the
        # catalog, so the catalog mutation lock must be taken first.
        catalog = self.catalog
        lock = catalog._lock if catalog is not None else self._lock
        with lock:
            with self._lock:
                self._udf_versions[name] = (version, fp or "")
            self._append(records.udf_record(name, version, fp or ""))

    def _check_writable(self) -> None:
        """Raise typed if this manager may no longer accept writes.

        Fencing outranks poisoning: a fenced node must report *why* it
        is dead even if its disk also failed on the way down.
        """
        if self._fenced_term is not None:
            raise NodeFencedError(
                f"node fenced: a standby was promoted at term "
                f"{self._fenced_term}; this manager can never accept "
                f"writes again",
                local_term=None,
                remote_term=self._fenced_term,
            )
        if self._poisoned is not None:
            raise WalPoisonedError(
                path=str(self.directory), cause=self._poisoned
            )

    def fence(self, term: int) -> None:
        """Permanently refuse writes: a peer was promoted at ``term``.

        Called when a handshake comes back REJECT — the cluster has
        moved on, and anything this node persisted after the promotion
        point must never be acknowledged or shipped.
        """
        with self._lock:
            self._fenced_term = int(term)
        if OBS.metrics:
            METRICS.counter("repro_repl_fenced_total").inc()

    def _append(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            if self._closed or self.wal is None or not self.wal_enabled:
                return
            self._check_writable()
            try:
                lsn = self.wal.append(payload)
            except WalPoisonedError as exc:
                self._poisoned = exc.__cause__ or exc
                raise
            repl = self.replication
            if repl is not None:
                # May block (sync-ack mode) while holding the manager
                # and catalog locks; the sender threads never take
                # either lock, so this cannot deadlock.
                repl.after_append(lsn)
            if self.wal.size_bytes >= self.checkpoint_threshold:
                self._checkpoint_locked()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def checkpoint(self) -> bool:
        """Snapshot full state, install atomically, truncate the WAL.

        Returns False when nothing is attached yet.  Safe to call from
        any thread: the catalog mutation lock is taken first (the same
        order the write path uses), so no append can interleave between
        the snapshot and the WAL reset.
        """
        catalog = self.catalog
        if catalog is None:
            return False
        with catalog._lock:
            with self._lock:
                if self._closed or self.wal is None:
                    return False
                self._checkpoint_locked()
        return True

    def _checkpoint_locked(self, catalog: Optional[Any] = None) -> None:
        # ``catalog`` is passed explicitly only from _recover, where the
        # manager is not yet attached (self.catalog is still None).
        catalog = catalog if catalog is not None else self.catalog
        self._check_writable()
        start = time.perf_counter() if OBS.metrics else 0.0
        state = {
            "lsn": self.wal.last_lsn,
            "generation": self.generation,
            "tables": [records.encode_table(t) for t in catalog],
            "epochs": dict(catalog._epochs),
            "udfs": {
                name: {"version": version, "fp": fp}
                for name, (version, fp) in self._udf_versions.items()
            },
        }
        try:
            write_checkpoint(self.directory, state, fsync=self.wal_fsync)
            spec = _crash_point("checkpoint_reset")
            if spec is not None:
                execute_crash(spec)
            self.wal.reset(state["lsn"])
        except WalPoisonedError as exc:
            self._poisoned = exc.__cause__ or exc
            raise
        except OSError as exc:
            # A torn checkpoint install can leave in-memory state ahead
            # of what any snapshot records: fail stop, same as a WAL
            # append failure, so no later checkpoint can persist
            # unacknowledged divergence.
            self._poisoned = exc
            raise WalPoisonedError(
                path=str(self.directory), cause=exc
            ) from exc
        self.checkpoints += 1
        if OBS.metrics:
            METRICS.counter("repro_checkpoints_total").inc()
            METRICS.histogram("repro_checkpoint_seconds").observe(
                time.perf_counter() - start
            )
        if OBS.tracing:
            obs_tracer.add_event(
                "checkpoint", lsn=state["lsn"], tables=len(state["tables"])
            )

    # ------------------------------------------------------------------
    # Standby apply paths (replica mode only)
    # ------------------------------------------------------------------

    def replicate_frame(
        self, lsn: int, frame: bytes, payload: Dict[str, Any]
    ) -> bool:
        """Append a shipped WAL frame verbatim and apply its operation.

        The frame's CRC, embedded LSN, and continuity against the local
        log are all re-verified by :meth:`WriteAheadLog.append_frame`
        before a byte lands.  Duplicate resends (``lsn`` at or below the
        local tail, which happens when the primary restarts a stream
        from a conservative cursor) are acknowledged without effect.
        Returns True when the frame advanced local state.
        """
        if not self.replica:
            raise ReplicationProtocolError(
                "replicate_frame on a non-replica manager"
            )
        catalog = self.catalog
        if catalog is None:
            raise ReplicationProtocolError(
                "replica manager is not attached"
            )
        with catalog._lock:
            with self._lock:
                if self._closed or self.wal is None:
                    raise ReplicationProtocolError(
                        "replica manager is closed"
                    )
                self._check_writable()
                if lsn <= self.wal.last_lsn:
                    return False
                try:
                    self.wal.append_frame(lsn, frame)
                except WalPoisonedError as exc:
                    self._poisoned = exc.__cause__ or exc
                    raise
                self._apply(catalog, WalRecord(lsn=lsn, payload=payload))
                if self.wal.size_bytes >= self.checkpoint_threshold:
                    self._checkpoint_locked()
        return True

    def replicate_checkpoint(self, blob: bytes) -> int:
        """Install a shipped checkpoint image and rebuild from it.

        Used when the standby's cursor fell behind the primary's WAL
        ``base_lsn`` (the primary checkpointed and reset its log, so the
        frames the standby needs no longer exist).  The image replaces
        catalog state wholesale — tables not in the image were dropped
        on the primary — and the local WAL resets to the image's LSN so
        the next shipped frame is contiguous.  Returns that LSN.
        """
        if not self.replica:
            raise ReplicationProtocolError(
                "replicate_checkpoint on a non-replica manager"
            )
        catalog = self.catalog
        if catalog is None:
            raise ReplicationProtocolError(
                "replica manager is not attached"
            )
        with catalog._lock:
            with self._lock:
                if self._closed or self.wal is None:
                    raise ReplicationProtocolError(
                        "replica manager is closed"
                    )
                self._check_writable()
                try:
                    state = install_checkpoint_blob(
                        self.directory, blob, fsync=self.wal_fsync
                    )
                except OSError as exc:
                    self._poisoned = exc
                    raise WalPoisonedError(
                        path=str(self.directory), cause=exc
                    ) from exc
                lsn = int(state.get("lsn", 0))
                if lsn < self.wal.last_lsn:
                    raise ReplicationProtocolError(
                        f"shipped checkpoint lsn {lsn} is behind the "
                        f"standby's applied lsn {self.wal.last_lsn}"
                    )
                for name in list(catalog.names()):
                    catalog.restore_drop(name)
                for payload in state.get("tables", ()):
                    catalog.restore_table(records.decode_table(payload))
                for name, epoch in state.get("epochs", {}).items():
                    catalog.restore_epoch(name, int(epoch))
                self._udf_versions = {
                    name: (int(entry["version"]), entry["fp"])
                    for name, entry in state.get("udfs", {}).items()
                }
                self.generation = max(
                    self.generation, int(state.get("generation", 0))
                )
                catalog.generation = self.generation
                try:
                    self.wal.reset(lsn)
                except WalPoisonedError as exc:
                    self._poisoned = exc.__cause__ or exc
                    raise
        return lsn

    def _start_interval_checkpointer(self) -> None:
        def loop() -> None:
            while not self._interval_stop.wait(self.checkpoint_interval_s):
                try:
                    self.checkpoint()
                except Exception:  # pragma: no cover - keep the loop alive
                    if OBS.metrics:
                        METRICS.counter(
                            "repro_checkpoint_failures_total"
                        ).inc()

        self._interval_thread = threading.Thread(
            target=loop, name="repro-checkpointer", daemon=True
        )
        self._interval_thread.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop the checkpointer and close the WAL.

        In snapshot-only mode (``wal_enabled=False``) a final checkpoint
        persists the state that was never logged; with the WAL on, the
        log alone is sufficient and recovery replays it.
        """
        self._interval_stop.set()
        thread = self._interval_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._interval_thread = None
        repl = self.replication
        if repl is not None:
            self.replication = None
            try:
                repl.close()
            except Exception:
                pass
        if not self.wal_enabled and self.catalog is not None and not self._closed:
            try:
                self.checkpoint()
            except Exception:
                pass
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self.wal is not None:
                self.wal.close()

    def abandon(self) -> None:
        """Drop the manager as a crashed process would: no checkpoint,
        no flush, just release the descriptor (in-process harness)."""
        self._interval_stop.set()
        repl = self.replication
        if repl is not None:
            self.replication = None
            try:
                repl.abandon()
            except Exception:
                pass
        with self._lock:
            self._closed = True
            if self.wal is not None:
                self.wal.abandon()

    def __enter__(self) -> "DurabilityManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def attach_to_adapter(
    adapter: Any, directory: Union[str, Path], **knobs: Any
) -> RecoveryReport:
    """Create a manager for ``directory`` and attach it to an adapter.

    Resolves the adapter's catalog (``adapter.catalog`` or
    ``adapter.database.catalog``) and registry, recovers into them, and
    stores the manager as ``adapter.durability`` so
    :meth:`~repro.engines.base.EngineAdapter.close` tears it down.
    """
    catalog = getattr(adapter, "catalog", None)
    if catalog is None:
        database = getattr(adapter, "database", None)
        if database is None:
            raise RecoveryError(
                f"adapter {adapter!r} exposes no catalog to attach to"
            )
        catalog = database.catalog
    registry = adapter.registry
    manager = DurabilityManager(directory, **knobs)
    report = manager.attach(catalog, registry)
    adapter.durability = manager
    return report
