"""repro.storage.durability — WAL + checkpoint + recovery.

Crash-consistent durability for the native engines::

    from repro.engines import MiniDbAdapter

    adapter = MiniDbAdapter(durability_dir="state/db")   # recovers, then logs
    ...
    adapter.close()

or attach explicitly::

    from repro.storage.durability import attach_to_adapter

    report = attach_to_adapter(adapter, "state/db", wal_fsync=True)
    print(report.records_replayed, report.generation)

Invariants the crash harness (:mod:`repro.testing.crash`) enforces at
randomized kill points:

* **No acked loss** — an operation whose call returned before the crash
  is present after recovery.
* **No unacked resurrection** — recovered state equals the uncrashed
  twin at some *prefix* of the workload at least as long as the acked
  prefix; a torn tail never fabricates state.
* **Cache safety** — snapshot epochs and UDF definition versions are
  restored, and the database generation strictly advances, so no
  result-cache entry keyed before the crash can be served after it.
"""

from .checkpoint import CHECKPOINT_NAME, read_checkpoint, write_checkpoint
from .manager import DurabilityManager, RecoveryReport, attach_to_adapter
from .records import decode_table, encode_table
from .wal import IO_CALLS, WalRecord, WriteAheadLog, reset_io_calls

__all__ = [
    "DurabilityManager",
    "RecoveryReport",
    "attach_to_adapter",
    "WriteAheadLog",
    "WalRecord",
    "IO_CALLS",
    "reset_io_calls",
    "CHECKPOINT_NAME",
    "read_checkpoint",
    "write_checkpoint",
    "encode_table",
    "decode_table",
]
