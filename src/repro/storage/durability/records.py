"""WAL / checkpoint record payloads and the table image codec.

Payloads are JSON objects (debuggable, deterministic, and safe to parse
from a half-trusted file — unlike pickle, a corrupt payload can at worst
fail to decode).  The framing layer (:mod:`repro.storage.durability.wal`)
adds length prefixes and CRCs; this module only defines *what* is
logged:

``table``
    A full physical image of one table (name, schema, column values)
    plus the snapshot epoch the operation produced.  The minidb family
    applies every DML by re-registering the whole table, so the physical
    full-image log is exact, not an approximation.
``drop``
    A table removal plus its post-drop epoch.
``touch``
    An epoch bump with no catalog payload — emitted for engines whose
    row storage lives outside our catalog (the sqlite3 adapter), where
    only the epoch must survive a restart for result-cache keys to stay
    correct.
``udf``
    A UDF definition-version advance (name, version, content
    fingerprint), so re-registering a *changed* body after a restart
    keeps rotating cache keys instead of resetting to version 1.
``gen``
    A database-generation advance; recovery bumps and persists this so
    any cache entry keyed before the crash is structurally unreachable
    afterwards, even if an epoch bump was lost in a torn tail.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...types import SqlType
from ..column import Column
from ..table import Table

__all__ = [
    "table_record",
    "drop_record",
    "touch_record",
    "udf_record",
    "generation_record",
    "encode_table",
    "decode_table",
]


def encode_table(table: Table) -> Dict[str, Any]:
    """A JSON-safe full physical image of ``table``."""
    return {
        "name": table.name,
        "schema": [[name, sql_type.value] for name, sql_type in table.schema],
        "cols": [col.to_list() for col in table.columns],
    }


def decode_table(payload: Dict[str, Any]) -> Table:
    """Rebuild a :class:`Table` from :func:`encode_table` output."""
    schema = [(name, SqlType(type_name)) for name, type_name in payload["schema"]]
    columns: List[Column] = []
    for (name, sql_type), values in zip(schema, payload["cols"]):
        if sql_type is SqlType.INT:
            # JSON round-trips ints exactly but has no int/float tag for
            # whole-valued floats written by other tools; coerce.
            values = [None if v is None else int(v) for v in values]
        columns.append(Column(name, sql_type, values, validate=False))
    return Table(payload["name"], columns)


def table_record(table: Table, epoch: int) -> Dict[str, Any]:
    record = {"op": "table", "epoch": epoch}
    record.update(encode_table(table))
    return record


def drop_record(name: str, epoch: int) -> Dict[str, Any]:
    return {"op": "drop", "name": name, "epoch": epoch}


def touch_record(name: str, epoch: int) -> Dict[str, Any]:
    return {"op": "touch", "name": name, "epoch": epoch}


def udf_record(name: str, version: int, fingerprint: str) -> Dict[str, Any]:
    return {"op": "udf", "name": name, "version": version, "fp": fingerprint}


def generation_record(generation: int) -> Dict[str, Any]:
    return {"op": "gen", "generation": generation}
