"""Atomic file writes: temp file + ``os.replace`` (+ optional fsync).

A plain ``open(path, "w")`` truncates the destination before the first
byte is written, so a crash mid-write corrupts a previously good file.
Every writer of non-append on-disk state in this repo (CSV snapshots,
Chrome trace exports, durability checkpoints) goes through this module
instead: the content is written to a same-directory temp file, flushed
(and optionally fsync'd), then atomically renamed over the destination.
Readers therefore always observe either the old file or the new one,
never a prefix.

``fsync=True`` additionally syncs the file contents before the rename
and the parent directory after it, so the rename itself survives a
power loss.  With ``fsync=False`` (the default for non-durability
callers) the write is still atomic with respect to process crashes —
only a machine crash can lose it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = ["atomic_writer", "write_atomic", "fsync_dir"]


def fsync_dir(path: Union[str, Path]) -> None:
    """Fsync a directory so a completed rename inside it is durable.

    Best-effort: some platforms/filesystems refuse to open directories
    (or to fsync them); those errors are ignored because the rename has
    already happened and is atomic regardless.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_writer(
    path: Union[str, Path],
    mode: str = "w",
    *,
    fsync: bool = False,
    encoding: "str | None" = None,
    newline: "str | None" = None,
) -> Iterator[IO]:
    """Yield a handle to a same-directory temp file; install on success.

    On a clean exit the temp file is flushed (fsync'd when asked) and
    renamed over ``path``.  On any exception the temp file is removed
    and the destination is untouched.
    """
    path = Path(path)
    if "r" in mode or "a" in mode or "+" in mode:
        raise ValueError(f"atomic_writer requires a write mode, got {mode!r}")
    if "b" in mode and (encoding is not None or newline is not None):
        raise ValueError("binary mode takes no encoding/newline")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        if "b" in mode:
            handle = os.fdopen(fd, mode)
        else:
            handle = os.fdopen(
                fd,
                mode,
                encoding=encoding if encoding is not None else "utf-8",
                newline=newline,
            )
        with handle:
            yield handle
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    if fsync:
        fsync_dir(path.parent)


def write_atomic(
    path: Union[str, Path],
    data: Union[bytes, str],
    *,
    fsync: bool = False,
    encoding: str = "utf-8",
) -> None:
    """Atomically replace ``path`` with ``data`` (bytes or text)."""
    mode = "wb" if isinstance(data, bytes) else "w"
    kwargs = {} if isinstance(data, bytes) else {"encoding": encoding}
    with atomic_writer(path, mode, fsync=fsync, **kwargs) as handle:
        handle.write(data)
