"""Tables and schemas for the columnar engine."""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CatalogError, TypeMismatchError
from ..types import SqlType
from .column import Column

__all__ = ["Schema", "Table"]


class Schema:
    """An ordered mapping of column name -> :class:`~repro.types.SqlType`.

    Duplicate names are allowed (result sets of self-joins produce them);
    name lookups resolve to the *first* match.  Base tables registered in
    the catalog are validated for uniqueness separately.
    """

    __slots__ = ("names", "types", "_index")

    def __init__(self, fields: Sequence[Tuple[str, SqlType]]):
        self.names: Tuple[str, ...] = tuple(name for name, _ in fields)
        self.types: Tuple[SqlType, ...] = tuple(sql_type for _, sql_type in fields)
        self._index: Dict[str, int] = {}
        for position, name in enumerate(self.names):
            self._index.setdefault(name, position)

    @property
    def has_duplicates(self) -> bool:
        return len(self._index) != len(self.names)

    def __len__(self) -> int:
        return len(self.names)

    def __iter__(self) -> Iterator[Tuple[str, SqlType]]:
        return iter(zip(self.names, self.types))

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.names == other.names and self.types == other.types

    def position(self, name: str) -> int:
        """Index of a column by name."""
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def type_of(self, name: str) -> SqlType:
        """Type of a column by name."""
        return self.types[self.position(name)]

    def __repr__(self) -> str:
        fields = ", ".join(f"{n} {t}" for n, t in self)
        return f"Schema({fields})"


class Table:
    """A named, immutable collection of equally-long columns."""

    __slots__ = ("name", "columns", "schema")

    def __init__(self, name: str, columns: Sequence[Column]):
        lengths = {len(col) for col in columns}
        if len(lengths) > 1:
            raise TypeMismatchError(
                f"ragged table {name!r}: column lengths {sorted(lengths)}"
            )
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self.schema = Schema([(col.name, col.sql_type) for col in columns])

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        name: str,
        schema: Sequence[Tuple[str, SqlType]],
        rows: Iterable[Sequence[Any]],
    ) -> "Table":
        """Build a table from row tuples (transposing into columns)."""
        schema = list(schema)
        buckets: List[List[Any]] = [[] for _ in schema]
        for row in rows:
            if len(row) != len(schema):
                raise TypeMismatchError(
                    f"row arity {len(row)} != schema arity {len(schema)}"
                )
            for bucket, value in zip(buckets, row):
                bucket.append(value)
        columns = [
            Column(col_name, sql_type, bucket)
            for (col_name, sql_type), bucket in zip(schema, buckets)
        ]
        return cls(name, columns)

    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Dict[str, Tuple[SqlType, Sequence[Any]]],
    ) -> "Table":
        """Build a table from ``{name: (type, values)}``."""
        columns = [
            Column(col_name, sql_type, values)
            for col_name, (sql_type, values) in data.items()
        ]
        return cls(name, columns)

    @classmethod
    def empty(cls, name: str, schema: Sequence[Tuple[str, SqlType]]) -> "Table":
        """An empty table with the given schema."""
        return cls(name, [Column.empty(n, t) for n, t in schema])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        return self.columns[self.schema.position(name)]

    def row(self, index: int) -> Tuple[Any, ...]:
        """Materialize one row as a tuple."""
        return tuple(col[index] for col in self.columns)

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples (tuple-at-a-time path)."""
        lists = [col.to_list() for col in self.columns]
        return iter(zip(*lists)) if lists else iter(())

    def to_rows(self) -> List[Tuple[Any, ...]]:
        """Materialize all rows."""
        return list(self.rows())

    @property
    def nbytes(self) -> int:
        """Total backing buffer size across columns (see Column.nbytes)."""
        return sum(col.nbytes for col in self.columns)

    def to_batch(self):
        """This table as a columnar-plane ``Batch`` (zero-copy pages)."""
        from ..columnar.buffer import Batch

        return Batch.from_table(self)

    # ------------------------------------------------------------------
    # Bulk operations
    # ------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Table":
        """Gather rows at the given positions."""
        return Table(self.name, [col.take(indices) for col in self.columns])

    def filter(self, mask: np.ndarray) -> "Table":
        """Keep rows where ``mask`` is True."""
        return Table(self.name, [col.filter(mask) for col in self.columns])

    def slice(self, start: int, stop: int) -> "Table":
        """Rows in ``[start, stop)``."""
        return Table(self.name, [col.slice(start, stop) for col in self.columns])

    def select(self, names: Sequence[str]) -> "Table":
        """Project to the named columns (in the given order)."""
        return Table(self.name, [self.column(n) for n in names])

    def renamed(self, name: str) -> "Table":
        """Shallow copy of the table under a new name."""
        return Table(name, self.columns)

    def with_column(self, column: Column) -> "Table":
        """Append (or replace) a column, returning a new table."""
        if column.name in self.schema:
            columns = [
                column if col.name == column.name else col for col in self.columns
            ]
        else:
            columns = list(self.columns) + [column]
        return Table(self.name, columns)

    @staticmethod
    def concat(name: str, tables: Sequence["Table"]) -> "Table":
        """Concatenate same-schema tables (UNION ALL)."""
        if not tables:
            raise TypeMismatchError("cannot concat zero tables")
        schema = tables[0].schema
        for table in tables[1:]:
            if tuple(table.schema.types) != tuple(schema.types):
                raise TypeMismatchError("concat schema mismatch")
        columns = [
            Column.concat(schema.names[i], [t.columns[i] for t in tables])
            for i in range(len(schema))
        ]
        return Table(name, columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.schema == other.schema and self.to_rows() == other.to_rows()

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {self.num_rows} rows, {self.schema!r})"
