"""Serialization of complex values at the engine boundary.

Databases represent complex datatypes (lists, dictionaries, nested
structures) as JSON text (paper section 4.2.4).  Values of SQL type
``JSON`` are stored serialized and must be deserialized before a Python
UDF can use them — unless QFusor's fused wrappers eliminate the interior
(de-)serialization steps.

This module is intentionally thin: it is the *unit of overhead* that the
fusion optimizer removes, so it must do real work (it delegates to the
stdlib ``json`` codec) and be the single choke-point both the wrappers and
the benchmarks use.
"""

from __future__ import annotations

import json
import re
from typing import Any

__all__ = [
    "serialize", "deserialize", "is_serialized",
    "serialize_values", "deserialize_values",
]

_SEPARATORS = (",", ":")


def serialize(value: Any) -> str:
    """Serialize a complex Python value to the engine's JSON text form."""
    return json.dumps(value, separators=_SEPARATORS, ensure_ascii=False)


def deserialize(text: str) -> Any:
    """Deserialize engine JSON text back into a Python value."""
    return json.loads(text)


def serialize_values(values) -> list:
    """Serialize a batch of values (``None`` passes through as SQL NULL).

    The columnar kernels use this for JSON result columns: the per-value
    serialization work is identical to the classic path — batching
    eliminates boundary *crossings*, never the modeled serde cost.
    """
    return [None if v is None else serialize(v) for v in values]


def deserialize_values(values) -> list:
    """Deserialize a batch of engine JSON texts (``None`` = SQL NULL)."""
    return [None if v is None else deserialize(v) for v in values]


def is_serialized(value: Any) -> bool:
    """Heuristically detect whether ``value`` is serialized JSON text."""
    if not isinstance(value, str) or not value:
        return False
    head = value[0]
    return (
        head in "[{\""
        or value in ("null", "true", "false")
        # Not RFC 8259, but ``serialize`` emits them (json.dumps defaults
        # to allow_nan=True) and ``deserialize`` reads them back, so the
        # detector must round-trip this module's own output.
        or value in ("NaN", "Infinity", "-Infinity")
        or _looks_numeric(value)
    )


#: A JSON number per RFC 8259 — not Python ``float()``, which also
#: accepts "nan", "inf", "1_0", "  1", and similar non-JSON spellings
#: (and rejects-by-exception junk like "-", "+", "1e" only after paying
#: for the raise).
_JSON_NUMBER = re.compile(
    r"-?(?:0|[1-9][0-9]*)(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?\Z"
)


def _looks_numeric(value: str) -> bool:
    return _JSON_NUMBER.match(value) is not None
