"""Columnar storage substrate: columns, tables, catalog, serde, CSV I/O."""

from .column import Column
from .table import Table, Schema
from .catalog import Catalog
from . import serde, csvio

__all__ = ["Column", "Table", "Schema", "Catalog", "serde", "csvio"]
