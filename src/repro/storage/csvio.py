"""CSV load/save — the "disk" path for the disk-vs-memory experiments.

The paper's Figure 6f compares reading from disk-based tables against
in-memory/hot-cache execution (and Tuplex's CSV ingest).  This module
provides the CSV ingest path: parsing text fields into typed columns is
real work, so the read phase shows up in the measured timelines the same
way it does in the paper.

Saves are atomic (same-directory temp file + ``os.replace``): a crash
mid-save leaves the previous file intact, never a half-written one.
Loads fail with :class:`~repro.errors.CsvFormatError` carrying the file,
1-based line number, column name, and offending text — not a bare
``ValueError`` with no idea which of a million rows was bad.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..errors import CsvFormatError, TypeMismatchError
from ..types import SqlType
from .atomic import atomic_writer
from .column import Column
from .table import Table

__all__ = ["save_csv", "load_csv"]

_NULL_TOKEN = ""


def save_csv(
    table: Table, path: Union[str, Path], *, fsync: bool = False
) -> None:
    """Write a table to CSV with a two-line header (names, types).

    The write is atomic; ``fsync=True`` additionally makes it durable
    before the rename (crash-safe exports).
    """
    path = Path(path)
    with atomic_writer(
        path, "w", fsync=fsync, encoding="utf-8", newline=""
    ) as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        writer.writerow([t.value for t in table.schema.types])
        for row in table.rows():
            writer.writerow(
                [_NULL_TOKEN if v is None else _render(v) for v in row]
            )


def load_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    schema: Optional[Sequence[Tuple[str, SqlType]]] = None,
) -> Table:
    """Read a table from CSV.

    If ``schema`` is not given, the file must carry the two-line header
    written by :func:`save_csv`.  A cell that fails to parse as its
    column's type — or a row with the wrong number of fields — raises
    :class:`~repro.errors.CsvFormatError` pinpointing file, line,
    column, and the offending text.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if schema is None:
            type_row = next(reader)
            schema = [(n, SqlType(t)) for n, t in zip(header, type_row)]
        else:
            schema = list(schema)
            if [n for n, _ in schema] != header:
                raise TypeMismatchError(
                    f"CSV header {header} does not match schema "
                    f"{[n for n, _ in schema]}"
                )
        buckets: List[List[Any]] = [[] for _ in schema]
        parsers = [_parser_for(t) for _, t in schema]
        for row in reader:
            if len(row) != len(schema):
                raise CsvFormatError(
                    f"expected {len(schema)} fields, got {len(row)}",
                    path=str(path),
                    line=reader.line_num,
                    column=None,
                    text=",".join(row),
                )
            for (col_name, _), bucket, parse, text in zip(
                schema, buckets, parsers, row
            ):
                if text == _NULL_TOKEN:
                    bucket.append(None)
                    continue
                try:
                    bucket.append(parse(text))
                except (ValueError, TypeError) as exc:
                    raise CsvFormatError(
                        str(exc),
                        path=str(path),
                        line=reader.line_num,
                        column=col_name,
                        text=text,
                    ) from exc
    columns = [
        Column(col_name, sql_type, bucket, validate=False)
        for (col_name, sql_type), bucket in zip(schema, buckets)
    ]
    return Table(name or path.stem, columns)


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parser_for(sql_type: SqlType):
    if sql_type is SqlType.INT:
        return int
    if sql_type is SqlType.FLOAT:
        return float
    if sql_type is SqlType.BOOL:
        return lambda text: text.lower() in ("true", "1", "t")
    return lambda text: text  # TEXT and JSON stay as (serialized) strings
