"""CSV load/save — the "disk" path for the disk-vs-memory experiments.

The paper's Figure 6f compares reading from disk-based tables against
in-memory/hot-cache execution (and Tuplex's CSV ingest).  This module
provides the CSV ingest path: parsing text fields into typed columns is
real work, so the read phase shows up in the measured timelines the same
way it does in the paper.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..errors import TypeMismatchError
from ..types import SqlType
from .column import Column
from .table import Table

__all__ = ["save_csv", "load_csv"]

_NULL_TOKEN = ""


def save_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table to CSV with a two-line header (names, types)."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.schema.names)
        writer.writerow([t.value for t in table.schema.types])
        for row in table.rows():
            writer.writerow(
                [_NULL_TOKEN if v is None else _render(v) for v in row]
            )


def load_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    schema: Optional[Sequence[Tuple[str, SqlType]]] = None,
) -> Table:
    """Read a table from CSV.

    If ``schema`` is not given, the file must carry the two-line header
    written by :func:`save_csv`.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if schema is None:
            type_row = next(reader)
            schema = [(n, SqlType(t)) for n, t in zip(header, type_row)]
        else:
            schema = list(schema)
            if [n for n, _ in schema] != header:
                raise TypeMismatchError(
                    f"CSV header {header} does not match schema "
                    f"{[n for n, _ in schema]}"
                )
        buckets: List[List[Any]] = [[] for _ in schema]
        parsers = [_parser_for(t) for _, t in schema]
        for row in reader:
            for bucket, parse, text in zip(buckets, parsers, row):
                bucket.append(None if text == _NULL_TOKEN else parse(text))
    columns = [
        Column(col_name, sql_type, bucket, validate=False)
        for (col_name, sql_type), bucket in zip(schema, buckets)
    ]
    return Table(name or path.stem, columns)


def _render(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parser_for(sql_type: SqlType):
    if sql_type is SqlType.INT:
        return int
    if sql_type is SqlType.FLOAT:
        return float
    if sql_type is SqlType.BOOL:
        return lambda text: text.lower() in ("true", "1", "t")
    return lambda text: text  # TEXT and JSON stay as (serialized) strings
