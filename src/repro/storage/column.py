"""Typed columns — the unit of storage for the vectorized engine.

Numeric columns (INT, FLOAT, BOOL) are backed by numpy arrays with an
explicit null mask, so relational operators over them run at vectorized
speed (the MonetDB-style execution model the paper's engine integration
assumes).  Variable-length columns (TEXT, JSON) are backed by Python object
arrays; JSON columns hold their values in *serialized* form (see
:mod:`repro.storage.serde`).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..errors import TypeMismatchError
from ..types import NUMPY_DTYPES, SqlType, coerce

__all__ = ["Column"]

_NUMERIC = (SqlType.INT, SqlType.FLOAT, SqlType.BOOL)


class Column:
    """An immutable, typed column of values.

    Parameters
    ----------
    name:
        Column name (used for schema lookups and result labelling).
    sql_type:
        Declared :class:`~repro.types.SqlType`.
    values:
        Any iterable of Python values; each is coerced to the canonical
        form for ``sql_type``.  ``None`` entries are SQL NULLs.
    validate:
        When False, values are trusted (used on internal fast paths where
        values were already produced in canonical form).
    """

    __slots__ = ("name", "sql_type", "_data", "_null")

    def __init__(
        self,
        name: str,
        sql_type: SqlType,
        values: Iterable[Any],
        *,
        validate: bool = True,
    ):
        self.name = name
        self.sql_type = sql_type
        values = list(values)
        if validate:
            values = [None if v is None else coerce(v, sql_type) for v in values]
        if sql_type in _NUMERIC:
            null = np.fromiter(
                (v is None for v in values), dtype=bool, count=len(values)
            )
            fill: Any = 0
            data = np.fromiter(
                (fill if v is None else v for v in values),
                dtype=NUMPY_DTYPES[sql_type],
                count=len(values),
            )
            self._data = data
            self._null = null
        else:
            self._data = np.array(values, dtype=object)
            self._null = None  # nulls are represented by None entries

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_numpy(
        cls,
        name: str,
        sql_type: SqlType,
        data: np.ndarray,
        null: Optional[np.ndarray] = None,
    ) -> "Column":
        """Wrap pre-built numpy arrays without copying or validation."""
        col = cls.__new__(cls)
        col.name = name
        col.sql_type = sql_type
        if sql_type in _NUMERIC:
            col._data = np.asarray(data, dtype=NUMPY_DTYPES[sql_type])
            col._null = (
                np.zeros(len(col._data), dtype=bool) if null is None else null
            )
        else:
            col._data = np.asarray(data, dtype=object)
            col._null = None
        return col

    @classmethod
    def empty(cls, name: str, sql_type: SqlType) -> "Column":
        """An empty column of the given type."""
        return cls(name, sql_type, [], validate=False)

    def renamed(self, name: str) -> "Column":
        """A shallow copy of this column under a new name."""
        col = Column.__new__(Column)
        col.name = name
        col.sql_type = self.sql_type
        col._data = self._data
        col._null = self._null
        return col

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._data)

    def __getitem__(self, index: int) -> Any:
        if self._null is not None and self._null[index]:
            return None
        value = self._data[index]
        if self.sql_type is SqlType.INT:
            return int(value)
        if self.sql_type is SqlType.FLOAT:
            return float(value)
        if self.sql_type is SqlType.BOOL:
            return bool(value)
        return value

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_list())

    def to_list(self) -> List[Any]:
        """Materialize the column as a list of Python values (None = NULL)."""
        if self._null is None:
            return list(self._data)
        out: List[Any] = self._data.tolist()
        if self._null.any():
            for i in np.flatnonzero(self._null):
                out[i] = None
        return out

    def numpy(self) -> np.ndarray:
        """The backing numpy array (nulls are garbage; consult null_mask)."""
        return self._data

    def null_mask(self) -> np.ndarray:
        """Boolean numpy mask, True where the value is NULL."""
        if self._null is not None:
            return self._null
        return np.fromiter(
            (v is None for v in self._data), dtype=bool, count=len(self._data)
        )

    def has_nulls(self) -> bool:
        """True if any value is NULL."""
        if self._null is not None:
            return bool(self._null.any())
        return any(v is None for v in self._data)

    @property
    def nbytes(self) -> int:
        """Backing buffer size in bytes (object columns count pointer
        slots only — the columnar plane's page-accounting convention)."""
        total = self._data.nbytes
        if self._null is not None:
            total += self._null.nbytes
        return total

    def to_page(self):
        """This column as a columnar-plane ``BufferPage`` (zero-copy)."""
        from ..columnar.buffer import BufferPage

        return BufferPage.from_column(self)

    # ------------------------------------------------------------------
    # Bulk operations used by the vectorized executor
    # ------------------------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Column":
        """Gather rows at the given positions."""
        idx = np.asarray(indices, dtype=np.int64)
        col = Column.__new__(Column)
        col.name = self.name
        col.sql_type = self.sql_type
        col._data = self._data[idx]
        col._null = None if self._null is None else self._null[idx]
        return col

    def filter(self, mask: np.ndarray) -> "Column":
        """Keep rows where ``mask`` is True."""
        mask = np.asarray(mask, dtype=bool)
        col = Column.__new__(Column)
        col.name = self.name
        col.sql_type = self.sql_type
        col._data = self._data[mask]
        col._null = None if self._null is None else self._null[mask]
        return col

    def slice(self, start: int, stop: int) -> "Column":
        """Rows in ``[start, stop)``."""
        col = Column.__new__(Column)
        col.name = self.name
        col.sql_type = self.sql_type
        col._data = self._data[start:stop]
        col._null = None if self._null is None else self._null[start:stop]
        return col

    @staticmethod
    def concat(name: str, columns: Sequence["Column"]) -> "Column":
        """Concatenate same-typed columns into one."""
        if not columns:
            raise TypeMismatchError("cannot concat zero columns")
        sql_type = columns[0].sql_type
        for col in columns:
            if col.sql_type is not sql_type:
                raise TypeMismatchError(
                    f"concat type mismatch: {col.sql_type} vs {sql_type}"
                )
        out = Column.__new__(Column)
        out.name = name
        out.sql_type = sql_type
        out._data = np.concatenate([c._data for c in columns]) if columns else None
        if sql_type in _NUMERIC:
            out._null = np.concatenate([c.null_mask() for c in columns])
        else:
            out._null = None
        return out

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.name == other.name
            and self.sql_type is other.sql_type
            and self.to_list() == other.to_list()
        )

    def __hash__(self):  # pragma: no cover - columns are not hashable
        raise TypeError("Column objects are unhashable")

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self.to_list()[:4])
        suffix = ", ..." if len(self) > 4 else ""
        return f"Column({self.name!r}, {self.sql_type}, [{preview}{suffix}])"
