"""Chrome ``trace_event`` export for :class:`~repro.obs.tracer.QueryTrace`.

Produces the JSON Object Format described by the Trace Event spec
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` loadable in
``chrome://tracing`` / Perfetto.

Event mapping (the golden schema test pins this):

* each closed span  -> one ``"ph": "X"`` complete event with
  ``name``/``cat``/``ts``/``dur``/``pid``/``tid``/``args``
* each span event   -> one ``"ph": "i"`` instant event (``s: "t"``)
* process/thread naming -> ``"ph": "M"`` metadata events

Timestamps are microseconds relative to the trace's wall start, so
traces from fake clocks in tests are stable and real traces line up in
the viewer.  Thread ids are the trace's first-seen indexes (0 = query
thread), not OS idents, for the same determinism reason.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from .tracer import QueryTrace, Span

__all__ = ["chrome_trace", "chrome_trace_json", "write_chrome_trace"]

_PID = 1


def _to_us(trace: QueryTrace, perf_t: float) -> float:
    return round((perf_t - trace.perf_start) * 1e6, 3)


def _sanitize_args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out


def chrome_trace(trace: QueryTrace) -> Dict[str, Any]:
    """Render a finished trace as a Chrome trace_event JSON object."""
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": f"repro:{trace.root.name}"},
        }
    ]
    named_tids = set()
    for sp in trace.spans():
        tid = trace.thread_index(sp.thread_ident)
        if tid not in named_tids:
            named_tids.add(tid)
            label = "query" if tid == 0 else f"worker-{tid}"
            events.append(
                {
                    "ph": "M",
                    "pid": _PID,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": label},
                }
            )
        end = sp.end if sp.end is not None else trace.root.end or sp.start
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": sp.name,
                "cat": sp.category,
                "ts": _to_us(trace, sp.start),
                "dur": max(round((end - sp.start) * 1e6, 3), 0.0),
                "args": _sanitize_args(sp.attrs),
            }
        )
        for ev in sp.events:
            events.append(
                {
                    "ph": "i",
                    "pid": _PID,
                    "tid": tid,
                    "name": ev.name,
                    "cat": "event",
                    "ts": _to_us(trace, ev.at),
                    "s": "t",
                    "args": _sanitize_args(ev.attrs),
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"wall_start_s": trace.wall_start},
    }


def chrome_trace_json(trace: QueryTrace, indent: int = 2) -> str:
    """The same document serialized, for writing to a ``.json`` artifact."""
    return json.dumps(chrome_trace(trace), indent=indent, sort_keys=False)


def write_chrome_trace(
    trace: QueryTrace,
    path: Union[str, Path],
    *,
    indent: int = 2,
    fsync: bool = False,
) -> Path:
    """Write the trace artifact atomically.

    A crash (or a second exporter racing the same path) never leaves a
    truncated JSON file for the viewer to choke on: the document lands
    via a same-directory temp file and ``os.replace``.
    """
    from ..storage.atomic import atomic_writer

    path = Path(path)
    with atomic_writer(path, "w", fsync=fsync, encoding="utf-8") as handle:
        handle.write(chrome_trace_json(trace, indent=indent))
    return path
