"""Structured tracing for the fused-query pipeline.

One :class:`QueryTrace` covers one query end to end; inside it,
:class:`Span` objects form a tree mirroring the pipeline stages the
paper's evaluation attributes costs to: parse -> plan -> fuse ->
jit-compile -> execute -> per-operator -> per-UDF-batch.  Governance
incidents (deopt, breaker trips, watchdog interrupts, admission waits)
attach as :class:`SpanEvent` annotations, so a single trace answers
*why* a query took the path it did.

Hot-path contract
-----------------

Tracing is **off by default** and every instrumentation site guards
itself with a single attribute-load-and-branch on :data:`OBS`::

    if OBS.tracing:
        sp = span_start("operator:Filter")
    ...
    if sp is not None:
        span_end(sp, rows=n)

With tracing disabled that is one branch per checkpoint and no calls,
allocations, or locks — the overhead budget DESIGN.md section 9 commits
to.  When tracing is enabled but no trace is active on the thread, the
start helpers return ``None`` and the site stays cheap.

Thread model
------------

The active span stack is thread-local, so span trees are well-nested
*per thread* by construction.  Worker threads (``engine.parallel``)
adopt the submitting thread's current span via :func:`adopt_span`; their
spans attach under it while nesting locally on their own stack.  Spans
may also be parented explicitly (``parent=...``) without touching the
stack — the tuple-at-a-time executor uses this for its pull-based
operator generators, whose open/close order is not LIFO.

Cross-thread mutation (a watchdog thread annotating a query's trace)
goes through :meth:`QueryTrace.add_event`, which locks; same-thread
appends ride on the GIL's list-append atomicity.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "OBS",
    "ObsState",
    "Span",
    "SpanEvent",
    "QueryTrace",
    "enable",
    "disable",
    "enabled_scope",
    "trace_query",
    "current_trace",
    "current_span",
    "span",
    "span_start",
    "span_end",
    "add_event",
    "adopt_span",
    "last_trace",
]


class ObsState:
    """Process-wide observability switches.

    ``tracing`` and ``metrics`` are plain attributes read with a single
    load at every instrumentation site; both default to off.
    """

    __slots__ = ("tracing", "metrics")

    def __init__(self) -> None:
        self.tracing = False
        self.metrics = False


#: The singleton every checkpoint branches on.
OBS = ObsState()


class SpanEvent:
    """A point-in-time annotation on a span (deopt, breaker trip, ...)."""

    __slots__ = ("name", "at", "attrs")

    def __init__(self, name: str, at: float, attrs: Dict[str, Any]):
        self.name = name
        self.at = at
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, at={self.at:.6f}, {self.attrs})"


class Span:
    """One timed stage of a query, with attributes, events, children."""

    __slots__ = (
        "name", "category", "start", "end", "attrs", "events",
        "children", "thread_ident", "parent",
    )

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        thread_ident: int,
        parent: Optional["Span"] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.attrs: Dict[str, Any] = attrs or {}
        self.events: List[SpanEvent] = []
        self.children: List["Span"] = []
        self.thread_ident = thread_ident
        self.parent = parent

    @property
    def duration(self) -> float:
        """Inclusive wall-clock seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def self_seconds(self) -> float:
        """Duration minus same-thread children (exclusive time)."""
        nested = sum(
            child.duration
            for child in self.children
            if child.thread_ident == self.thread_ident
        )
        return max(self.duration - nested, 0.0)

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first search for the first descendant named ``name``."""
        for child in self.children:
            if child.name == name:
                return child
            found = child.find(name)
            if found is not None:
                return found
        return None

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, dur={self.duration * 1e3:.3f}ms, "
            f"children={len(self.children)})"
        )


class QueryTrace:
    """The per-query trace: a root span plus shared bookkeeping.

    ``clock`` is injectable so golden tests can render deterministic
    durations; production uses ``time.perf_counter``.
    """

    def __init__(
        self,
        name: str,
        clock=None,
        wall_clock=None,
        **attrs: Any,
    ):
        self.clock = clock if clock is not None else time.perf_counter
        #: Epoch seconds at trace start — the Chrome export's time base.
        self.wall_start = (wall_clock or time.time)()
        self.perf_start = self.clock()
        self.root = Span(name, "query", self.perf_start, threading.get_ident())
        self.root.attrs.update(attrs)
        self._lock = threading.Lock()
        #: Thread idents in first-seen order, for stable tid numbering.
        self._threads: List[int] = [self.root.thread_ident]

    # -- span management ------------------------------------------------

    def new_span(
        self,
        name: str,
        category: str,
        parent: Span,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        ident = threading.get_ident()
        sp = Span(name, category, self.clock(), ident, parent, attrs)
        if ident == parent.thread_ident:
            parent.children.append(sp)
        else:
            with self._lock:
                parent.children.append(sp)
                if ident not in self._threads:
                    self._threads.append(ident)
        return sp

    def close_span(self, sp: Span, **attrs: Any) -> None:
        if attrs:
            sp.attrs.update(attrs)
        sp.end = self.clock()

    def finish(self) -> None:
        if self.root.end is None:
            self.root.end = self.clock()

    # -- cross-thread annotation ---------------------------------------

    def add_event(self, name: str, span: Optional[Span] = None, **attrs) -> None:
        """Attach an event; safe from any thread (watchdog, breakers)."""
        target = span if span is not None else self.root
        with self._lock:
            target.events.append(SpanEvent(name, self.clock(), attrs))

    # -- inspection -----------------------------------------------------

    def thread_index(self, ident: int) -> int:
        """Stable small integer for a thread (0 = the query thread)."""
        with self._lock:
            if ident not in self._threads:
                self._threads.append(ident)
            return self._threads.index(ident)

    def spans(self) -> List[Span]:
        return list(self.root.walk())

    def find(self, name: str) -> Optional[Span]:
        if self.root.name == name:
            return self.root
        return self.root.find(name)


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------


class _Local(threading.local):
    def __init__(self):
        self.trace: Optional[QueryTrace] = None
        self.stack: List[Span] = []
        self.last_trace: Optional[QueryTrace] = None


_LOCAL = _Local()


def current_trace() -> Optional[QueryTrace]:
    """The trace active on this thread, if any."""
    return _LOCAL.trace


def current_span() -> Optional[Span]:
    """The innermost open stack-managed span on this thread."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


def last_trace() -> Optional[QueryTrace]:
    """The most recent trace *finished* on this thread.

    Thread-local on purpose: concurrent queries each see their own
    trace, never a neighbour's (the ``last_report`` contamination fix).
    """
    return _LOCAL.last_trace


# ----------------------------------------------------------------------
# Enable / disable
# ----------------------------------------------------------------------


def enable(tracing: bool = True, metrics: bool = True) -> None:
    """Turn observability on process-wide."""
    OBS.tracing = tracing
    OBS.metrics = metrics


def disable() -> None:
    """Back to the zero-overhead default."""
    OBS.tracing = False
    OBS.metrics = False


@contextlib.contextmanager
def enabled_scope(tracing: bool = True, metrics: bool = True) -> Iterator[None]:
    """Enable observability for a block, restoring the previous state."""
    prev = (OBS.tracing, OBS.metrics)
    OBS.tracing, OBS.metrics = tracing, metrics
    try:
        yield
    finally:
        OBS.tracing, OBS.metrics = prev


# ----------------------------------------------------------------------
# Trace lifecycle
# ----------------------------------------------------------------------


@contextlib.contextmanager
def trace_query(
    name: str = "query",
    clock=None,
    wall_clock=None,
    **attrs: Any,
) -> Iterator[QueryTrace]:
    """Open a root trace on this thread (enables tracing for its scope).

    Usable directly by callers who want a :class:`QueryTrace` for an
    arbitrary block::

        with obs.trace_query("Q3", sql=sql) as trace:
            qfusor.execute(sql)
        print(QueryReport.from_trace(trace).render())
    """
    prev_tracing = OBS.tracing
    prev_trace = _LOCAL.trace
    prev_stack = _LOCAL.stack
    trace = QueryTrace(name, clock=clock, wall_clock=wall_clock, **attrs)
    OBS.tracing = True
    _LOCAL.trace = trace
    _LOCAL.stack = [trace.root]
    try:
        yield trace
    finally:
        trace.finish()
        _LOCAL.trace = prev_trace
        _LOCAL.stack = prev_stack
        _LOCAL.last_trace = trace
        OBS.tracing = prev_tracing


@contextlib.contextmanager
def maybe_trace(name: str = "query", **attrs: Any) -> Iterator[Optional[QueryTrace]]:
    """Open a root trace only when tracing is enabled and none is active.

    The auto-trace entry points (``QFusor.execute``, the adapter
    ``execute_*`` template methods) use this so a caller-provided
    :func:`trace_query` wins, and plain calls under ``obs.enable()``
    still yield a retrievable :func:`last_trace`.
    """
    if not OBS.tracing or _LOCAL.trace is not None:
        yield None
        return
    with trace_query(name, **attrs) as trace:
        yield trace


# ----------------------------------------------------------------------
# Span helpers (the instrumentation API)
# ----------------------------------------------------------------------


def span_start(
    name: str,
    category: str = "stage",
    parent: Optional[Span] = None,
    **attrs: Any,
) -> Optional[Span]:
    """Open a span under the current (or given) parent.

    Returns ``None`` when no trace is active — callers keep the result
    and skip :func:`span_end` on ``None``.  With an explicit ``parent``
    the span is *not* pushed on the thread stack (generator-friendly).
    """
    trace = _LOCAL.trace
    if trace is None:
        return None
    if parent is not None:
        return trace.new_span(name, category, parent, attrs or None)
    stack = _LOCAL.stack
    sp = trace.new_span(name, category, stack[-1], attrs or None)
    stack.append(sp)
    return sp


def span_end(sp: Span, **attrs: Any) -> None:
    """Close a span opened by :func:`span_start`."""
    trace = _LOCAL.trace
    if trace is None:
        # Closed after the trace deactivated (stray generator): stamp
        # with a real clock so the span is still well-formed.
        sp.end = time.perf_counter()
        return
    stack = _LOCAL.stack
    if stack and stack[-1] is sp:
        stack.pop()
    trace.close_span(sp, **attrs)


@contextlib.contextmanager
def span(name: str, category: str = "stage", **attrs: Any) -> Iterator[Optional[Span]]:
    """Context-manager form of :func:`span_start` / :func:`span_end`."""
    sp = span_start(name, category, **attrs)
    try:
        yield sp
    finally:
        if sp is not None:
            span_end(sp)


def add_event(name: str, **attrs: Any) -> None:
    """Attach an event to this thread's innermost open span."""
    trace = _LOCAL.trace
    if trace is None:
        return
    trace.add_event(name, span=current_span(), **attrs)


@contextlib.contextmanager
def adopt_span(sp: Optional[Span], trace: Optional[QueryTrace]) -> Iterator[None]:
    """Adopt a parent span on a worker thread.

    Mirrors ``governor.activate``: ``engine.parallel`` captures the
    submitting thread's ``(current_span(), current_trace())`` and each
    worker runs inside this scope, so worker-side spans attach under the
    parent while staying well-nested on the worker's own stack.
    """
    if sp is None or trace is None:
        yield
        return
    prev_trace = _LOCAL.trace
    prev_stack = _LOCAL.stack
    _LOCAL.trace = trace
    _LOCAL.stack = [sp]
    try:
        yield
    finally:
        _LOCAL.trace = prev_trace
        _LOCAL.stack = prev_stack
