"""repro.obs — zero-dependency tracing and metrics for the pipeline.

Quick start::

    from repro import obs
    from repro.obs import QueryReport

    obs.enable()                       # or obs.trace_query(...) scoped
    adapter.execute_sql(sql)
    report = QueryReport.from_trace(obs.last_trace())
    print(report.render())             # EXPLAIN ANALYZE-style tree
    open("trace.json", "w").write(
        obs.chrome_trace_json(report.trace))   # chrome://tracing
    print(obs.METRICS.render_prometheus())

Disabled (the default), every checkpoint costs one attribute branch.
"""

from .metrics import (
    Counter,
    DEFAULT_BYTES_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_WAIT_BUCKETS,
    Gauge,
    Histogram,
    METRICS,
    MetricsRegistry,
)
from .export import chrome_trace, chrome_trace_json, write_chrome_trace
from .report import QueryReport, STAGE_NAMES
from .tracer import (
    OBS,
    ObsState,
    QueryTrace,
    Span,
    SpanEvent,
    add_event,
    adopt_span,
    current_span,
    current_trace,
    disable,
    enable,
    enabled_scope,
    last_trace,
    maybe_trace,
    span,
    span_end,
    span_start,
    trace_query,
)

__all__ = [
    "OBS",
    "ObsState",
    "Span",
    "SpanEvent",
    "QueryTrace",
    "enable",
    "disable",
    "enabled_scope",
    "trace_query",
    "maybe_trace",
    "current_trace",
    "current_span",
    "last_trace",
    "span",
    "span_start",
    "span_end",
    "add_event",
    "adopt_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "chrome_trace",
    "chrome_trace_json",
    "write_chrome_trace",
    "QueryReport",
    "STAGE_NAMES",
]
