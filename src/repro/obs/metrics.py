"""Lock-cheap counters and fixed-bucket histograms.

The registry answers the evaluation questions PAPER.md section 6 asks —
per-UDF call latency, batch sizes, trace-cache hit/miss, rows/sec per
operator, boundary bytes pickled — without taking a lock on the hot
path.  Recording is a handful of attribute stores guarded by the GIL;
CPython guarantees each individual ``+=`` on an instrument is only
approximately atomic, so every instrument carries a tiny mutex used
*only* by :meth:`snapshot`/:meth:`merge` readers and by writers via
``record``'s single short critical section.  In practice the critical
section is two integer adds, far cheaper than histogram math in other
metric stacks, and contention is nil because instruments are per-label.

Snapshots are plain dicts (JSON-able); ``render_prometheus`` emits the
standard text exposition format so the numbers can be scraped or
diffed in golden tests.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "DEFAULT_WAIT_BUCKETS",
]


#: Seconds; spans ~1us .. ~10s of per-batch UDF latency.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)

#: Rows per batch; vectorized batches run 1 .. ~1e6 rows.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 8, 64, 256, 1024, 8192, 65536, 1048576,
)

#: Pickled payload bytes crossing the minidb_row boundary.
DEFAULT_BYTES_BUCKETS: Tuple[float, ...] = (
    64, 1024, 16384, 262144, 4194304, 67108864,
)

#: Seconds spent queued (admission/scheduler waits); finer sub-second
#: resolution than the latency buckets, plus a long-wait tail so shed
#: storms and fairness regressions separate cleanly.
DEFAULT_WAIT_BUCKETS: Tuple[float, ...] = (
    1e-4, 1e-3, 5e-3, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 30.0,
)


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone counter; ``inc`` is a single locked add."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount

    def snapshot(self) -> int:
        with self._lock:
            return self.value


class Gauge:
    """A point-in-time value (lag, queue depth); ``set`` replaces it.

    Unlike :class:`Counter` a gauge can move both ways — replication lag
    shrinks as a standby catches up.  ``set`` is one locked store, the
    same cost class as ``Counter.inc``.
    """

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...] = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def snapshot(self) -> float:
        with self._lock:
            return self.value


class Histogram:
    """Fixed-bucket histogram with cumulative-free storage.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit +Inf bucket.  ``merge`` is associative
    and count-preserving (the property tests pin both), which makes
    per-thread or per-run histograms safely combinable.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "total", "sum", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        labels: Tuple[Tuple[str, str], ...] = (),
    ):
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.total = 0
        self.sum = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.total += 1
            self.sum += value

    def merge(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining self and other (same buckets)."""
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        merged = Histogram(self.name, self.buckets, self.labels)
        with self._lock:
            mine = (list(self.counts), self.total, self.sum)
        with other._lock:
            theirs = (list(other.counts), other.total, other.sum)
        merged.counts = [a + b for a, b in zip(mine[0], theirs[0])]
        merged.total = mine[1] + theirs[1]
        merged.sum = mine[2] + theirs[2]
        return merged

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        with self._lock:
            total = self.total
            counts = list(self.counts)
        if total == 0:
            return 0.0
        rank = max(1, math.ceil(q * total))
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank:
                return self.buckets[i] if i < len(self.buckets) else math.inf
        return math.inf  # pragma: no cover - unreachable

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.buckets),
                "counts": list(self.counts),
                "count": self.total,
                "sum": self.sum,
            }


class MetricsRegistry:
    """Named, labelled instruments with a process-wide default instance.

    ``counter``/``histogram`` are get-or-create and cheap enough to call
    per batch, but hot sites should hold the instrument once (e.g. on a
    ``RegisteredUdf``) and only pay ``inc``/``observe`` per event.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Counter] = {}
        self._gauges: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Gauge] = {}
        self._histograms: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            with self._lock:
                inst = self._counters.get(key)
                if inst is None:
                    inst = Counter(name, key[1])
                    self._counters[key] = inst
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            with self._lock:
                inst = self._gauges.get(key)
                if inst is None:
                    inst = Gauge(name, key[1])
                    self._gauges[key] = inst
        return inst

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.get(key)
                if inst is None:
                    inst = Histogram(name, buckets or DEFAULT_LATENCY_BUCKETS, key[1])
                    self._histograms[key] = inst
        return inst

    def reset(self) -> None:
        """Drop all instruments (tests only)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> Dict[str, Any]:
        """A point-in-time, JSON-able view of every instrument."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for c in counters:
            out["counters"][_series_name(c.name, c.labels)] = c.snapshot()
        for g in gauges:
            out["gauges"][_series_name(g.name, g.labels)] = g.snapshot()
        for h in histograms:
            out["histograms"][_series_name(h.name, h.labels)] = h.snapshot()
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (counters + gauges + histograms)."""
        with self._lock:
            counters = sorted(
                self._counters.values(), key=lambda c: (c.name, c.labels)
            )
            gauges = sorted(
                self._gauges.values(), key=lambda g: (g.name, g.labels)
            )
            histograms = sorted(
                self._histograms.values(), key=lambda h: (h.name, h.labels)
            )
        lines: List[str] = []
        seen_types = set()
        for c in counters:
            if c.name not in seen_types:
                lines.append(f"# TYPE {c.name} counter")
                seen_types.add(c.name)
            lines.append(f"{c.name}{_label_str(c.labels)} {c.snapshot()}")
        for g in gauges:
            if g.name not in seen_types:
                lines.append(f"# TYPE {g.name} gauge")
                seen_types.add(g.name)
            lines.append(
                f"{g.name}{_label_str(g.labels)} {_fmt_value(g.snapshot())}"
            )
        for h in histograms:
            if h.name not in seen_types:
                lines.append(f"# TYPE {h.name} histogram")
                seen_types.add(h.name)
            snap = h.snapshot()
            cumulative = 0
            for bound, count in zip(snap["buckets"], snap["counts"]):
                cumulative += count
                le = _fmt_bound(bound)
                lines.append(
                    f"{h.name}_bucket{_label_str(h.labels, ('le', le))} {cumulative}"
                )
            lines.append(
                f"{h.name}_bucket{_label_str(h.labels, ('le', '+Inf'))} {snap['count']}"
            )
            lines.append(f"{h.name}_sum{_label_str(h.labels)} {_fmt_value(snap['sum'])}")
            lines.append(f"{h.name}_count{_label_str(h.labels)} {snap['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


def _series_name(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _label_str(
    labels: Tuple[Tuple[str, str], ...],
    extra: Optional[Tuple[str, str]] = None,
) -> str:
    pairs: List[Tuple[str, str]] = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return f"{{{inner}}}"


def _fmt_bound(bound: float) -> str:
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


#: Process-wide default registry; instrumentation sites use this.
METRICS = MetricsRegistry()
