"""``EXPLAIN ANALYZE``-style rendering of a query trace.

A :class:`QueryReport` wraps a finished :class:`~repro.obs.tracer.QueryTrace`
and renders it as a text tree::

    query Q3 (sql='SELECT ...')  12.413ms
    +- parse  0.102ms
    +- plan  0.311ms
    +- fuse  1.204ms  [sections=2]
    |  +- jit_compile  0.904ms  [cache=miss]
    +- execute  10.512ms  [adapter=minidb, rows=512]
       +- operator:Scan  2.001ms  [rows=100000]
       +- operator:Filter  3.410ms  [rows=512]
       !  deopt at 8.2ms {reason=udf_error, udf=extract_year}

Durations are inclusive; ``!`` lines are span events (governance
incidents).  ``redact_timings=True`` replaces every duration with a
placeholder so golden-file tests pin the structure without pinning the
clock.  ``stage_seconds`` folds the tree into the per-stage cost
breakdown ``bench.harness`` prints next to each benchmark figure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .export import chrome_trace
from .tracer import QueryTrace, Span

__all__ = ["QueryReport", "STAGE_NAMES"]

#: Top-level stages the report folds durations into; anything else in
#: the tree contributes to its nearest enclosing stage.
STAGE_NAMES = ("parse", "plan", "fuse", "jit_compile", "execute")


def _fmt_attr(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class QueryReport:
    """Renderable view over one query's trace."""

    def __init__(self, trace: QueryTrace):
        self.trace = trace

    @classmethod
    def from_trace(cls, trace: Optional[QueryTrace]) -> Optional["QueryReport"]:
        return cls(trace) if trace is not None else None

    # -- text tree ------------------------------------------------------

    def render(self, redact_timings: bool = False) -> str:
        lines: List[str] = []
        self._render_span(self.trace.root, lines, "", redact_timings, root=True)
        return "\n".join(lines)

    def _render_span(
        self,
        sp: Span,
        lines: List[str],
        prefix: str,
        redact: bool,
        root: bool = False,
    ) -> None:
        dur = "<t>ms" if redact else f"{sp.duration * 1e3:.3f}ms"
        attrs = ""
        if sp.attrs:
            inner = ", ".join(
                f"{k}={_fmt_attr(v)}" for k, v in sorted(sp.attrs.items())
            )
            attrs = f"  [{inner}]"
        label = sp.name if root else sp.name
        if root and sp.category:
            label = f"{sp.category} {sp.name}"
        lines.append(f"{prefix}{label}  {dur}{attrs}")
        child_prefix = "" if root else prefix.replace("+- ", "|  ").replace(
            "`- ", "   "
        )
        items: List[Any] = list(sp.events) + list(sp.children)
        items.sort(key=lambda it: it.at if hasattr(it, "at") else it.start)
        for i, item in enumerate(items):
            last = i == len(items) - 1
            branch = "`- " if last else "+- "
            if hasattr(item, "at"):  # SpanEvent
                at = (
                    "<t>ms"
                    if redact
                    else f"{(item.at - self.trace.perf_start) * 1e3:.3f}ms"
                )
                ev_attrs = ""
                if item.attrs:
                    inner = ", ".join(
                        f"{k}={_fmt_attr(v)}" for k, v in sorted(item.attrs.items())
                    )
                    ev_attrs = f" {{{inner}}}"
                lines.append(f"{child_prefix}!  {item.name} at {at}{ev_attrs}")
            else:
                self._render_span(item, lines, child_prefix + branch, redact)

    # -- exports --------------------------------------------------------

    def chrome_trace(self) -> Dict[str, Any]:
        return chrome_trace(self.trace)

    # -- aggregation ----------------------------------------------------

    def stage_seconds(self) -> Dict[str, float]:
        """Inclusive seconds per top-level pipeline stage.

        ``jit_compile`` is reported separately even though it nests
        inside ``fuse`` — the paper's breakdown treats trace compilation
        as its own cost — and ``fuse`` is adjusted to exclude it.
        ``other`` collects root time not claimed by any stage.
        """
        out: Dict[str, float] = {name: 0.0 for name in STAGE_NAMES}
        for sp in self.trace.spans():
            if sp.name in out:
                out[sp.name] += sp.duration
        out["fuse"] = max(out["fuse"] - out["jit_compile"], 0.0)
        total = self.trace.root.duration
        out["other"] = max(total - sum(out.values()), 0.0)
        out["total"] = total
        return out

    def events(self) -> List[Dict[str, Any]]:
        """All governance/span events, flattened, in time order."""
        found = []
        for sp in self.trace.spans():
            for ev in sp.events:
                found.append(
                    {"name": ev.name, "span": sp.name, "at": ev.at, **ev.attrs}
                )
        found.sort(key=lambda e: e["at"])
        return found

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryReport({self.trace.root.name!r})"
