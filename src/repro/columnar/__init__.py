"""repro.columnar — the typed-buffer data plane.

Four pieces, one policy object:

- :mod:`~repro.columnar.buffer` — ``Batch``/``BufferPage`` over typed
  contiguous buffers with zero-copy slicing (the unit of exchange).
- :mod:`~repro.columnar.kernels` — batch-at-a-time scalar UDF kernels
  that cross the engine↔UDF boundary per *column* instead of per value.
- :mod:`~repro.columnar.transport` — strict typed-frame packing so UDF
  batches ship to the worker pool as raw buffers (pickle protocol-5
  out-of-band or shared memory) instead of object-list pickles.
- :mod:`~repro.columnar.morsel` / :mod:`~repro.columnar.executor` —
  morsel-driven parallel execution with work stealing, per-morsel
  governance checkpoints, and deopt-to-serial fallback.

Everything is **off by default**: the classic paths (and their exact
boundary-crossing counts, which the Figure 6c reproduction asserts on)
are untouched until an adapter opts in via ``enable_columnar()`` or the
``columnar=True`` constructor knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .buffer import Batch, BufferPage, PageTypeError, page_from_values
from .morsel import MorselScheduler

__all__ = [
    "ColumnarPolicy", "Batch", "BufferPage", "PageTypeError",
    "page_from_values", "MorselScheduler",
]

#: Default morsel: 4096 rows — big enough to amortize per-morsel
#: scheduling/span overhead, small enough that governance checkpoints
#: and work stealing stay responsive.
DEFAULT_MORSEL_SIZE = 4096


@dataclass
class ColumnarPolicy:
    """One adapter's columnar-plane configuration.

    Shared between the executor (morsel sharding), the UDF registry
    (kernel dispatch), and the transport layer (buffer shipping); the
    scheduler hanging off it owns the morsel thread pool.
    """

    enabled: bool = True
    morsel_size: int = DEFAULT_MORSEL_SIZE
    threads: int = 1
    buffer_transport: bool = False

    def __post_init__(self):
        self.morsel_size = max(1, int(self.morsel_size))
        self.threads = max(1, int(self.threads))
        self.scheduler = MorselScheduler(
            threads=self.threads, morsel_size=self.morsel_size
        )

    def configure(
        self,
        *,
        enabled: Optional[bool] = None,
        morsel_size: Optional[int] = None,
        threads: Optional[int] = None,
        buffer_transport: Optional[bool] = None,
    ) -> "ColumnarPolicy":
        """Update knobs in place (``None`` leaves a knob untouched)."""
        if enabled is not None:
            self.enabled = bool(enabled)
        if morsel_size is not None:
            self.morsel_size = max(1, int(morsel_size))
            self.scheduler.morsel_size = self.morsel_size
        if threads is not None:
            self.threads = max(1, int(threads))
            if self.threads != self.scheduler.threads:
                self.scheduler.shutdown()
                self.scheduler = MorselScheduler(
                    threads=self.threads, morsel_size=self.morsel_size
                )
        if buffer_transport is not None:
            self.buffer_transport = bool(buffer_transport)
        return self

    def close(self) -> None:
        self.scheduler.shutdown()
