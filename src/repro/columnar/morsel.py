"""Morsel-driven parallel execution over the columnar plane.

A *morsel* is one fixed-size range of rows — the scheduling quantum of
the columnar executor.  :class:`MorselScheduler` shards a row range into
morsels, distributes them round-robin across per-worker deques on the
thread executor, and lets idle workers **steal from the richest deque**
(classic morsel-driven parallelism: static distribution for locality,
stealing for balance — the GIL limits the speedup, but numpy kernels and
UDF bodies that release it still overlap).

Every morsel runs under the submitting query's adopted governance,
resilience, and tracing contexts and passes a cooperative
:func:`~repro.resilience.governor.checkpoint` first, so deadlines,
cancellation, and row budgets interrupt *between morsels* even when the
work is spread over many threads.

Error semantics are deterministic via **deopt-to-serial**: when any
morsel raises an ordinary exception, the whole stage re-executes
serially in morsel order and the serial error (the first one in row
order) is the one propagated — parallel execution can never change
*which* error a query reports.  Governed interrupts
(:class:`~repro.errors.QueryInterrupt`) propagate immediately instead;
re-running a cancelled query's stage would hold the cancel hostage.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Tuple

from ..errors import QueryInterrupt
from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from ..resilience.governor import checkpoint, spawn_shield
from ..engine.parallel import adopting

__all__ = ["MorselScheduler"]

#: fn(start, stop) -> per-morsel result
MorselFn = Callable[[int, int], Any]


class MorselScheduler:
    """Shards row ranges into morsels and runs them with work stealing."""

    def __init__(self, threads: int = 1, morsel_size: int = 4096):
        self.threads = max(1, int(threads))
        self.morsel_size = max(1, int(morsel_size))
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()
        # Lifetime telemetry (also exported through repro.obs metrics).
        self.morsels_run = 0
        self.steals = 0
        self.deopts = 0
        if self.threads > 1:
            # Spawn worker threads NOW, while construction is outside
            # any governed query (see _prestart for why lazily starting
            # them from a governed thread can deadlock).
            self._executor()

    # -- lifecycle ------------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            with self._lock:
                if self._pool is None:
                    pool = ThreadPoolExecutor(
                        max_workers=self.threads,
                        thread_name_prefix="repro-morsel",
                    )
                    if self.threads > 1:
                        self._prestart(pool)
                    self._pool = pool
        return self._pool

    def _prestart(self, pool: ThreadPoolExecutor) -> None:
        """Start every pool thread from a short-lived helper thread.

        CPython preallocates a child thread's state stamped with the
        *spawning* thread's id; until the child rebinds it, the
        governor's ``PyThreadState_SetAsyncExc`` aimed at the spawner
        matches the half-born child first and kills it before
        ``Thread.start`` sees ``_started`` — deadlocking the spawner
        forever.  Starting all workers up front from a helper thread
        the watchdog never targets closes that window; governed query
        threads then never call ``Thread.start`` themselves.
        """
        barrier = threading.Barrier(self.threads + 1)

        def hold() -> None:
            # Keep each fresh worker busy so every submit is forced to
            # spawn a new thread instead of reusing an idle one.
            try:
                barrier.wait(timeout=10.0)
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

        def spawn() -> None:
            for _ in range(self.threads):
                pool.submit(hold)
            hold()

        starter = threading.Thread(
            target=spawn, name="repro-morsel-prestart", daemon=True
        )
        with spawn_shield():
            # Even starting the helper is one Thread.start from a
            # possibly-governed thread; shield that single handshake.
            starter.start()
        starter.join()

    def shutdown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- execution ------------------------------------------------------

    def morsels(self, size: int) -> List[Tuple[int, int]]:
        """The morsel grid over ``[0, size)``."""
        if size <= 0:
            return []
        return [
            (start, min(start + self.morsel_size, size))
            for start in range(0, size, self.morsel_size)
        ]

    def map_ranges(self, size: int, fn: MorselFn,
                   stage: str = "stage") -> List[Any]:
        """Run ``fn`` over every morsel of ``[0, size)``; ordered results.

        Serial when one thread (or one morsel) suffices; otherwise
        work-stealing parallel with deopt-to-serial on failure.
        """
        grid = self.morsels(size)
        if not grid:
            return []
        if self.threads <= 1 or len(grid) <= 1:
            return self._run_serial(grid, fn, stage)
        try:
            return self._run_parallel(grid, fn, stage)
        except QueryInterrupt:
            raise
        except Exception:
            self.deopts += 1
            if OBS.metrics:
                METRICS.counter(
                    "repro_morsel_deopt_total", stage=stage
                ).inc()
            return self._run_serial(grid, fn, stage)

    def _run_serial(self, grid: List[Tuple[int, int]], fn: MorselFn,
                    stage: str) -> List[Any]:
        out = []
        for start, stop in grid:
            checkpoint()
            out.append(self._run_one(fn, start, stop, stage, worker=-1))
        return out

    def _run_parallel(self, grid: List[Tuple[int, int]], fn: MorselFn,
                      stage: str) -> List[Any]:
        workers = min(self.threads, len(grid))
        # Round-robin static distribution: worker w owns morsels w,
        # w+N, w+2N, ... — contiguous-ish ranges for cache locality.
        queues = [
            deque(
                (idx, grid[idx]) for idx in range(w, len(grid), workers)
            )
            for w in range(workers)
        ]
        results: List[Any] = [None] * len(grid)
        errors: List[BaseException] = []
        steal_lock = threading.Lock()
        cancelled = threading.Event()

        def next_morsel(mine: deque):
            with steal_lock:
                if mine:
                    return mine.popleft(), False
                richest = max(queues, key=len)
                if richest:
                    return richest.pop(), True
            return None, False

        def drain(worker_id: int) -> None:
            mine = queues[worker_id]
            while not cancelled.is_set():
                item, stolen = next_morsel(mine)
                if item is None:
                    return
                if stolen:
                    self.steals += 1
                    if OBS.metrics:
                        METRICS.counter(
                            "repro_morsel_steals_total", stage=stage
                        ).inc()
                idx, (start, stop) = item
                try:
                    checkpoint()
                    results[idx] = self._run_one(
                        fn, start, stop, stage, worker=worker_id
                    )
                except BaseException as exc:
                    errors.append(exc)
                    cancelled.set()
                    return

        runner = adopting(drain)
        pool = self._executor()
        futures = [pool.submit(runner, w) for w in range(workers)]
        for future in futures:
            future.result()
        if errors:
            interrupts = [e for e in errors if isinstance(e, QueryInterrupt)]
            raise (interrupts[0] if interrupts else errors[0])
        return results

    def _run_one(self, fn: MorselFn, start: int, stop: int, stage: str,
                 worker: int) -> Any:
        self.morsels_run += 1
        if not (OBS.metrics or OBS.tracing):
            return fn(start, stop)
        sp = (
            obs_tracer.span_start(f"morsel:{stage}", "morsel",
                                  rows=stop - start, worker=worker)
            if OBS.tracing else None
        )
        t0 = time.perf_counter()
        try:
            result = fn(start, stop)
        except BaseException as exc:
            if sp is not None:
                obs_tracer.span_end(sp, error=type(exc).__name__)
            raise
        if OBS.metrics:
            METRICS.counter("repro_morsel_total", stage=stage).inc()
            METRICS.histogram(
                "repro_morsel_seconds", stage=stage
            ).observe(time.perf_counter() - t0)
        if sp is not None:
            obs_tracer.span_end(sp)
        return result

    def stats(self) -> dict:
        return {
            "threads": self.threads,
            "morsel_size": self.morsel_size,
            "morsels_run": self.morsels_run,
            "steals": self.steals,
            "deopts": self.deopts,
        }
