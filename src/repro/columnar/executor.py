"""The morsel-driven vectorized executor.

:class:`MorselVectorExecutor` extends the operator-at-a-time
:class:`~repro.engine.executor_vector.VectorExecutor` by sharding the
row-parallel operators — Filter, FusedFilter, and UDF-bearing Project —
into fixed-size morsels executed through
:class:`~repro.columnar.morsel.MorselScheduler`.  Each morsel sees a
zero-copy column slice (the storage layer's numpy views), evaluates
independently, and the operator concatenates masks/columns at the end.

Operators whose semantics are inherently cross-row (aggregate, join,
sort, distinct, set ops, table-function expand) are inherited unchanged;
morselizing them would need a merge phase this subsystem doesn't claim.
Pure-vector Projects (no UDF calls) stay on the one-shot numpy path when
running single-threaded — slicing them into morsels only adds concat
work.  Fused JIT batch traces are sharded only when codegen stamped them
``morsel_safe`` (row-wise pure); anything else runs whole-batch exactly
as before.

Row budgets are charged once per operator in ``_run`` (inherited), never
per morsel — parallel execution must not change *when* a budget trips.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..engine.executor_vector import Relation, VectorExecutor
from ..resilience.runtime import FAULTS as _FAULTS
from ..engine.expressions import VectorEvaluator
from ..engine.plan import Filter, FusedFilter, Project
from ..sql import ast_nodes as ast
from ..storage.column import Column
from ..udf.definition import UdfKind
from .morsel import MorselScheduler

__all__ = ["MorselVectorExecutor"]


class MorselVectorExecutor(VectorExecutor):
    """Vectorized executor with morsel-driven row-parallel operators."""

    def __init__(self, catalog, resolver, policy,
                 scheduler: Optional[MorselScheduler] = None):
        super().__init__(catalog, resolver)
        self.policy = policy
        self.scheduler = scheduler or MorselScheduler(
            threads=policy.threads, morsel_size=policy.morsel_size
        )

    # -- helpers --------------------------------------------------------

    def _worth_sharding(self, size: int) -> bool:
        """One morsel (or zero rows) gains nothing from the machinery."""
        if _FAULTS.armed:
            # Injected faults fire at classic per-row points and may be
            # once-only: sharding would let the deopt-to-serial re-run
            # retry a transient fault away (or fire it at a different
            # row).  Fault semantics require the serial path.
            return False
        return size > self.scheduler.morsel_size or (
            self.scheduler.threads > 1 and size > 1
        )

    def _has_scalar_udf(self, exprs) -> bool:
        for expr in exprs:
            for node in ast.walk_expr(expr):
                if (
                    isinstance(node, ast.FunctionCall)
                    and self.resolver.udf_kind(node.name) is UdfKind.SCALAR
                ):
                    return True
        return False

    def _batch_func_morsel_safe(self, udf_name: str) -> bool:
        registered = self.resolver.udf(udf_name)
        if registered is None:
            return True
        batch = registered.definition.scalar_batch_func
        return batch is None or getattr(batch, "morsel_safe", False)

    # -- morselized operators -------------------------------------------

    def _filter(self, node: Filter, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        if not self._worth_sharding(size):
            return self._filter_whole(node, columns, size)

        def run_morsel(start: int, stop: int) -> np.ndarray:
            chunk = [col.slice(start, stop) for col in columns]
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            return evaluator.predicate_mask(
                node.predicate, chunk, stop - start
            )

        masks = self.scheduler.map_ranges(size, run_morsel, stage="filter")
        mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _filter_whole(self, node: Filter, columns, size) -> Relation:
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        mask = evaluator.predicate_mask(node.predicate, columns, size)
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _fused_filter(self, node: FusedFilter, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        if (
            not self._worth_sharding(size)
            or not self._batch_func_morsel_safe(node.udf_name)
        ):
            return self._fused_filter_whole(node, columns, size)
        registered = self.resolver.udf(node.udf_name)

        def run_morsel(start: int, stop: int) -> np.ndarray:
            chunk = [col.slice(start, stop) for col in columns]
            n = stop - start
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            args = [
                evaluator.evaluate(expr, chunk, n) for expr in node.arg_exprs
            ]
            predicate = registered.call_scalar(args, n)
            return (
                np.asarray(predicate.numpy(), dtype=bool)
                & ~predicate.null_mask()
            )

        masks = self.scheduler.map_ranges(
            size, run_morsel, stage="fused_filter"
        )
        mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _fused_filter_whole(self, node: FusedFilter, columns, size) -> Relation:
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        arg_columns = [
            evaluator.evaluate(expr, columns, size) for expr in node.arg_exprs
        ]
        registered = self.resolver.udf(node.udf_name)
        predicate = registered.call_scalar(arg_columns, size)
        mask = np.asarray(predicate.numpy(), dtype=bool) & ~predicate.null_mask()
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _project(self, node: Project, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        exprs = [item.expr for item in node.items]
        shard = self._worth_sharding(size) and (
            self.scheduler.threads > 1 or self._has_scalar_udf(exprs)
        )
        if shard:
            for expr in exprs:
                for sub in ast.walk_expr(expr):
                    if isinstance(sub, ast.FunctionCall) and (
                        not self._batch_func_morsel_safe(sub.name)
                    ):
                        shard = False
                        break
        if not shard:
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            out = [
                evaluator.evaluate(item.expr, columns, size, item.name)
                for item in node.items
            ]
            return out, size

        def run_morsel(start: int, stop: int) -> List[Column]:
            chunk = [col.slice(start, stop) for col in columns]
            n = stop - start
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            return [
                evaluator.evaluate(item.expr, chunk, n, item.name)
                for item in node.items
            ]

        pieces = self.scheduler.map_ranges(size, run_morsel, stage="project")
        out = [
            Column.concat(item.name, [piece[i] for piece in pieces])
            for i, item in enumerate(node.items)
        ]
        return out, size
