"""Batch-at-a-time scalar UDF kernels over typed buffers.

The interpreted scalar path pays four boundary conversions *per value*
(engine→C, C→Python, Python→C, C→engine) plus a per-value ``coerce`` when
rebuilding the result column — on scan-heavy UDFBench queries that
overhead dwarfs the UDF bodies themselves.  A kernel replaces the
per-row machinery with one pass:

- inputs cross the boundary **once per column** (TEXT values are already
  the ``str`` the UDF wants; JSON still pays its real per-value serde
  work, exactly as the classic path does),
- the UDF runs in an arity-specialized C-speed ``map``/listcomp with
  strict-NULL skipping,
- the result becomes a trusted :class:`~repro.columnar.buffer.BufferPage`
  via one type scan instead of per-value ``coerce``,
- governance checkpoints fire between ``morsel_size`` chunks, so
  deadlines/cancellation/budgets interrupt mid-batch like before.

Fallback ladder: anything the kernel cannot vouch for — armed fault
injection, JIT batch wrappers (they have their own fused loop), a UDF
body raising, an untrusted result type — returns ``None`` and the caller
re-executes the batch on the classic per-row path, which owns row-error
policies and fault semantics.  The kernel is a pure fast path; it never
changes results or error behaviour.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from ..errors import QueryInterrupt
from ..resilience.governor import checkpoint
from ..resilience.runtime import FAULTS as _FAULTS
from ..storage import serde
from ..storage.column import Column
from ..types import SqlType
from ..udf import boundary
from ..udf.definition import UdfDefinition, UdfKind

__all__ = ["eligible", "scalar_batch", "aggregate_eligible", "aggregate_batch"]


def eligible(definition: UdfDefinition) -> bool:
    """Can this UDF's batches run on the kernel path?

    Fused UDFs with a JIT batch wrapper already execute batch-at-a-time;
    armed fault injection needs the classic path's per-row fire points.
    """
    return (
        definition.kind is UdfKind.SCALAR
        and definition.scalar_batch_func is None
        and not _FAULTS.armed
    )


def _run_chunk(
    func: Callable, inputs: Sequence[List[Any]], strict: bool,
    start: int, stop: int,
) -> List[Any]:
    """Apply ``func`` over rows ``[start, stop)`` of the input lists."""
    chunks = [col[start:stop] for col in inputs]
    if not strict:
        return list(map(func, *chunks))
    if len(chunks) == 1:
        (l0,) = chunks
        if None not in l0:
            return list(map(func, l0))
        return [None if v is None else func(v) for v in l0]
    if any(None in c for c in chunks):
        return [
            None if any(v is None for v in row) else func(*row)
            for row in zip(*chunks)
        ]
    return list(map(func, *chunks))


def scalar_batch(
    definition: UdfDefinition,
    inputs: Sequence[Column],
    size: int,
    chunk: int = 4096,
) -> Optional[Column]:
    """Run one scalar batch on the kernel path.

    Returns the result column, or ``None`` when the kernel must deopt
    (the caller re-runs the batch classically).  Governed interrupts
    propagate — a deopt must never swallow a cancellation.
    """
    try:
        loaded = [boundary.column_to_python_batch(col) for col in inputs]
        func = definition.func
        strict = definition.strict
        if not loaded:
            # Zero-arity scalar: one call per row.
            out: List[Any] = []
            for start in range(0, size, chunk):
                stop = min(start + chunk, size)
                out.extend(func() for _ in range(stop - start))
                checkpoint()
        else:
            out = []
            for start in range(0, size, chunk):
                out.extend(
                    _run_chunk(func, loaded, strict, start,
                               min(start + chunk, size))
                )
                checkpoint()
    except QueryInterrupt:
        raise
    except Exception:
        return None
    return boundary.python_batch_to_column(
        definition.name, definition.signature.return_types[0], out
    )


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


def aggregate_eligible(definition: UdfDefinition) -> bool:
    return definition.kind is UdfKind.AGGREGATE and not _FAULTS.armed


def aggregate_batch(
    definition: UdfDefinition,
    inputs: Sequence[Column],
    size: int,
    group_ids: Sequence[int],
    num_groups: int,
    chunk: int = 4096,
) -> Optional[List[Any]]:
    """Run one aggregate batch on the kernel path.

    Mirrors the generated aggregate wrapper — init/step/final over
    ``aggr_group_data``, skipping rows whose arguments are *all* NULL —
    but crosses the boundary per column instead of per value.  Returns
    one engine-side value per group, or ``None`` to deopt (aggregates
    have no row-level policies: the classic re-run raises the wrapped
    error exactly as before).
    """
    try:
        loaded = [boundary.column_to_python_batch(col) for col in inputs]
        aggrs = [definition.func() for _ in range(num_groups)]
        step = [a.step for a in aggrs]
        arity = len(loaded)
        if arity == 1:
            (l0,) = loaded
            has_null = None in l0
            for start in range(0, size, chunk):
                stop = min(start + chunk, size)
                if has_null:
                    for i in range(start, stop):
                        v = l0[i]
                        if v is not None:
                            step[group_ids[i]](v)
                else:
                    for i in range(start, stop):
                        step[group_ids[i]](l0[i])
                checkpoint()
        else:
            for start in range(0, size, chunk):
                for i in range(start, min(start + chunk, size)):
                    row = [col[i] for col in loaded]
                    if arity and all(v is None for v in row):
                        continue
                    step[group_ids[i]](*row)
                checkpoint()
        finals = [a.final() for a in aggrs]
    except QueryInterrupt:
        raise
    except Exception:
        return None
    # One Python→engine crossing for the per-group results; classic's
    # encode→decode is the identity for TEXT, JSON keeps its real serde.
    boundary.counters.python_to_c += 1
    boundary.counters.c_to_engine += 1
    out_type = definition.signature.return_types[0]
    if out_type is SqlType.JSON:
        boundary.counters.serializations += sum(
            1 for v in finals if v is not None
        )
        return serde.serialize_values(finals)
    return finals
