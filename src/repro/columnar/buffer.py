"""Typed buffer pages — the columnar data plane's unit of exchange.

A :class:`BufferPage` is a thin, named view over one contiguous typed
buffer: a numpy array for numerics (plus an explicit null mask) or a
Python object array for variable-length values (TEXT/JSON, where ``None``
entries are SQL NULLs).  A :class:`Batch` is an aligned set of pages — the
unit operators, fused traces, and transport hand to each other.

Pages are deliberately *storage-compatible* with
:class:`repro.storage.column.Column`: converting between the two never
copies the backing buffers, so the columnar plane can be threaded through
the existing executors without a materialization tax.  Slicing is
zero-copy too (numpy views), which is what makes morsel-driven execution
cheap: a morsel is just ``batch.slice(start, stop)``.

``page_from_values`` is the trusted fast path from UDF results back into
a page.  It *verifies* value types with a single C-speed scan instead of
calling :func:`repro.types.coerce` per value; any value the scan cannot
vouch for raises :class:`PageTypeError` so callers fall back to the
validating path — the fast path is never allowed to change semantics
(``np.fromiter`` would happily truncate ``1.5`` into an INT column where
``coerce`` raises).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from ..storage.column import Column
from ..storage.table import Table
from ..types import NUMPY_DTYPES, SqlType

__all__ = ["BufferPage", "Batch", "PageTypeError", "page_from_values"]

_NUMERIC = (SqlType.INT, SqlType.FLOAT, SqlType.BOOL)


class PageTypeError(TypeError):
    """A value batch failed the trusted-page type scan (caller must fall
    back to the validating :class:`~repro.storage.column.Column` path)."""


class BufferPage:
    """One typed contiguous buffer plus its null mask.

    ``data`` is the backing numpy array (typed for numerics, ``object``
    for TEXT/JSON).  ``null`` is a boolean mask for numeric pages and
    ``None`` for object pages (whose NULLs are ``None`` entries).
    """

    __slots__ = ("name", "sql_type", "data", "null")

    def __init__(self, name: str, sql_type: SqlType, data: np.ndarray,
                 null: Optional[np.ndarray] = None):
        self.name = name
        self.sql_type = sql_type
        self.data = data
        self.null = null

    def __len__(self) -> int:
        return len(self.data)

    @property
    def nbytes(self) -> int:
        """Backing buffer size (object pages count pointer slots only)."""
        total = self.data.nbytes
        if self.null is not None:
            total += self.null.nbytes
        return total

    # -- Column interop (zero-copy both ways) --------------------------

    @classmethod
    def from_column(cls, column: Column) -> "BufferPage":
        """Wrap a column's backing arrays without copying."""
        return cls(
            column.name, column.sql_type, column.numpy(),
            column._null if column.sql_type in _NUMERIC else None,
        )

    def to_column(self) -> Column:
        """Wrap this page back into a column without copying."""
        col = Column.__new__(Column)
        col.name = self.name
        col.sql_type = self.sql_type
        col._data = self.data
        if self.sql_type in _NUMERIC:
            col._null = (
                self.null if self.null is not None
                else np.zeros(len(self.data), dtype=bool)
            )
        else:
            col._null = None
        return col

    # -- views ----------------------------------------------------------

    def slice(self, start: int, stop: int) -> "BufferPage":
        """Rows in ``[start, stop)`` as a zero-copy view."""
        return BufferPage(
            self.name, self.sql_type, self.data[start:stop],
            None if self.null is None else self.null[start:stop],
        )

    def null_mask(self) -> np.ndarray:
        if self.null is not None:
            return self.null
        return np.fromiter(
            (v is None for v in self.data), dtype=bool, count=len(self.data)
        )

    def values(self) -> List[Any]:
        """Materialize as a list of Python values (None = NULL)."""
        out: List[Any] = self.data.tolist()
        if self.null is not None and self.null.any():
            for i in np.flatnonzero(self.null):
                out[i] = None
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BufferPage({self.name!r}, {self.sql_type}, "
                f"rows={len(self.data)})")


class Batch:
    """An aligned set of pages: the columnar unit of exchange."""

    __slots__ = ("pages", "size")

    def __init__(self, pages: Sequence[BufferPage], size: int):
        self.pages = list(pages)
        self.size = size

    def __len__(self) -> int:
        return self.size

    @property
    def nbytes(self) -> int:
        return sum(page.nbytes for page in self.pages)

    @classmethod
    def from_columns(cls, columns: Sequence[Column], size: int) -> "Batch":
        return cls([BufferPage.from_column(c) for c in columns], size)

    @classmethod
    def from_table(cls, table: Table) -> "Batch":
        return cls.from_columns(list(table.columns), table.num_rows)

    def to_columns(self) -> List[Column]:
        return [page.to_column() for page in self.pages]

    def to_table(self, name: str = "batch") -> Table:
        return Table(name, self.to_columns())

    def slice(self, start: int, stop: int) -> "Batch":
        """A zero-copy morsel view of rows ``[start, stop)``."""
        return Batch(
            [page.slice(start, stop) for page in self.pages],
            max(0, min(stop, self.size) - start),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Batch(pages={len(self.pages)}, rows={self.size})"


# ----------------------------------------------------------------------
# Trusted page construction from UDF result values
# ----------------------------------------------------------------------

#: Accepted concrete Python types per SQL type, chosen so the fast path
#: agrees with ``coerce`` exactly on every accepted value (anything else
#: must take the validating path, which may coerce *or* raise): INT
#: accepts bool/int (coerce maps both through ``int``), FLOAT accepts
#: bool/int/float (numeric widening, with the same ``float(v)`` precision
#: loss coerce has), BOOL accepts only bool (coerce also takes 0/1 ints —
#: too narrow here is safe, too wide would be wrong).  The scan is one
#: C-speed ``set(map(type, ...))``; subclasses (e.g. IntEnum) miss the
#: set and fall back, which is the conservative direction.
_NoneType = type(None)
_TRUSTED_TYPES = {
    SqlType.INT: frozenset((int, bool, _NoneType)),
    SqlType.FLOAT: frozenset((float, int, bool, _NoneType)),
    SqlType.BOOL: frozenset((bool, _NoneType)),
    SqlType.TEXT: frozenset((str, _NoneType)),
    SqlType.JSON: frozenset((str, _NoneType)),
}


def page_from_values(
    name: str, sql_type: SqlType, values: Sequence[Any]
) -> BufferPage:
    """Build a page from Python values via one type scan (no per-value
    ``coerce``).  Raises :class:`PageTypeError` when any value is outside
    the trusted set for ``sql_type``."""
    values = values if isinstance(values, list) else list(values)
    if not _TRUSTED_TYPES[sql_type].issuperset(map(type, values)):
        raise PageTypeError(f"untrusted values for {sql_type} page {name!r}")
    n = len(values)
    if sql_type not in _NUMERIC:
        data = np.empty(n, dtype=object)
        data[:] = values
        return BufferPage(name, sql_type, data)
    dtype = NUMPY_DTYPES[sql_type]
    # NULLs are detected by an explicit scan, never by letting numpy
    # choke on None: ``np.fromiter`` silently converts None to ``nan``
    # (FLOAT) or ``False`` (BOOL), which would erase NULL-ness.
    if None in values:
        null: Optional[np.ndarray] = np.fromiter(
            (v is None for v in values), dtype=bool, count=n
        )
        filler = (0 if v is None else v for v in values)
    else:
        null = None
        filler = values
    try:
        data = np.fromiter(filler, dtype=dtype, count=n)
    except (TypeError, ValueError, OverflowError) as exc:
        # e.g. an int beyond int64: the validating path decides.
        raise PageTypeError(str(exc)) from exc
    return BufferPage(name, sql_type, data, null)
