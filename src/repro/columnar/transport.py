"""Buffer-aware transport packing for UDF batches.

The PR-4 worker pool historically shipped every batch as
``pickle.dumps(list_of_boxed_values)`` — each int/float/str boxed and
re-boxed on both sides of the pipe.  This module packs homogeneous value
lists into typed contiguous frames instead:

========  ==================================================
tag       frames
========  ==================================================
``i8``    one ``int64`` buffer (+ optional null bitmask)
``f8``    one ``float64`` buffer (+ optional null bitmask)
``b1``    one ``bool`` buffer (+ optional null bitmask)
``bytes`` ``int64`` offsets + concatenated payload (+ mask)
``str``   same, payload UTF-8 encoded
``empty`` no frames
========  ==================================================

Frames are plain ``bytes`` suitable for pickle protocol-5 out-of-band
transfer or for writing straight into a ``multiprocessing.shared_memory``
segment; only a tiny pickled *meta* structure has to cross the pipe.

Packing is **strict**: a column packs only when every non-NULL value has
the exact same concrete type, and unpacking reproduces each value
bit-for-bit (an ``int`` never comes back as a ``float``).  Anything the
scan cannot vouch for — mixed types, ints beyond 64 bits, arbitrary
objects — returns ``None`` and the caller falls back to classic object
pickling, so the fast transport can never change results.
"""

from __future__ import annotations

import struct
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "pack_columns", "unpack_columns",
    "join_frames", "split_frames",
    "frames_nbytes",
]

#: meta for one packed column: (tag, row count, has_null)
ColumnMeta = Tuple[str, int, bool]


def _null_frames(values: Sequence[Any]) -> bytes:
    mask = np.fromiter(
        (v is None for v in values), dtype=bool, count=len(values)
    )
    return np.packbits(mask).tobytes()


def _unpack_nulls(frame: bytes, n: int) -> np.ndarray:
    return np.unpackbits(
        np.frombuffer(frame, dtype=np.uint8), count=n
    ).astype(bool)


def _pack_one(values: Sequence[Any]) -> Optional[Tuple[ColumnMeta, List[bytes]]]:
    """Pack one value list, or ``None`` when it is not strictly typed."""
    n = len(values)
    if n == 0:
        return ("empty", 0, False), []
    kinds = set(map(type, values))
    has_null = type(None) in kinds
    kinds.discard(type(None))
    if len(kinds) != 1:
        return None
    kind = kinds.pop()
    frames: List[bytes] = []
    if kind is int or kind is float or kind is bool:
        tag, dtype = (
            ("i8", np.int64) if kind is int
            else ("f8", np.float64) if kind is float
            else ("b1", np.bool_)
        )
        try:
            data = np.fromiter(
                (0 if v is None else v for v in values) if has_null else values,
                dtype=dtype, count=n,
            )
        except (TypeError, ValueError, OverflowError):
            return None  # e.g. int beyond 64 bits — pickle handles it
        frames.append(data.tobytes())
    elif kind is bytes or kind is str:
        tag = "bytes" if kind is bytes else "str"
        if kind is str:
            parts = [b"" if v is None else v.encode("utf-8") for v in values]
        else:
            parts = [b"" if v is None else v for v in values]
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum([len(p) for p in parts], out=offsets[1:])
        frames.append(offsets.tobytes())
        frames.append(b"".join(parts))
    else:
        return None
    if has_null:
        frames.append(_null_frames(values))
    return (tag, n, has_null), frames


_DTYPES = {"i8": np.int64, "f8": np.float64, "b1": np.bool_}


def _unpack_one(meta: ColumnMeta, frames: List[bytes]) -> List[Any]:
    tag, n, has_null = meta
    if tag == "empty":
        return []
    if tag in _DTYPES:
        out = np.frombuffer(frames[0], dtype=_DTYPES[tag]).tolist()
    else:
        offsets = np.frombuffer(frames[0], dtype=np.int64)
        payload = frames[1]
        view = memoryview(payload)
        if tag == "bytes":
            out = [bytes(view[offsets[i]:offsets[i + 1]]) for i in range(n)]
        else:
            out = [
                str(view[offsets[i]:offsets[i + 1]], "utf-8") for i in range(n)
            ]
    if has_null:
        for i in np.flatnonzero(_unpack_nulls(frames[-1], n)):
            out[i] = None
    return out


def _frame_count(meta: ColumnMeta) -> int:
    tag, _, has_null = meta
    base = 0 if tag == "empty" else 2 if tag in ("bytes", "str") else 1
    return base + (1 if has_null else 0)


def pack_columns(
    columns: Sequence[Sequence[Any]],
) -> Optional[Tuple[List[ColumnMeta], List[bytes]]]:
    """Pack a list of value lists (one per column).

    Returns ``(metas, frames)``, or ``None`` when *any* column fails the
    strict type scan — partial packing would still force a pickle pass,
    so the caller falls back wholesale.
    """
    metas: List[ColumnMeta] = []
    frames: List[bytes] = []
    for values in columns:
        packed = _pack_one(values)
        if packed is None:
            return None
        meta, col_frames = packed
        metas.append(meta)
        frames.extend(col_frames)
    return metas, frames


def unpack_columns(
    metas: Sequence[ColumnMeta], frames: Sequence[bytes]
) -> List[List[Any]]:
    """Exact inverse of :func:`pack_columns`."""
    out: List[List[Any]] = []
    cursor = 0
    for meta in metas:
        take = _frame_count(meta)
        out.append(_unpack_one(meta, list(frames[cursor:cursor + take])))
        cursor += take
    return out


def frames_nbytes(frames: Sequence[bytes]) -> int:
    return sum(len(f) for f in frames)


# ----------------------------------------------------------------------
# Flat single-buffer framing (for shared-memory segments)
# ----------------------------------------------------------------------

_LEN = struct.Struct("<Q")


def join_frames(frames: Sequence[bytes]) -> bytes:
    """Concatenate frames into one length-prefixed buffer."""
    parts = [_LEN.pack(len(frames))]
    for frame in frames:
        parts.append(_LEN.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def split_frames(buffer) -> List[bytes]:
    """Inverse of :func:`join_frames` over any bytes-like buffer."""
    view = memoryview(buffer)
    (count,) = _LEN.unpack_from(view, 0)
    cursor = _LEN.size
    frames: List[bytes] = []
    for _ in range(count):
        (length,) = _LEN.unpack_from(view, cursor)
        cursor += _LEN.size
        frames.append(bytes(view[cursor:cursor + length]))
        cursor += length
    return frames
