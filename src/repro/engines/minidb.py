"""MiniDB adapter — the MonetDB-style deployment (vectorized, in-process).

This is QFusor's default host: operator-at-a-time vectorized execution
with materialized intermediates, in-process UDFs, and direct plan
dispatch (the MAL-style path 2 of section 5.4).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..sql.parser import parse
from ..storage.table import Table
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["MiniDbAdapter"]


class MiniDbAdapter(EngineAdapter):
    name = "minidb"
    supports_plan_dispatch = True
    in_process = True

    def __init__(
        self,
        database: Optional[Database] = None,
        *,
        stats: Optional[StatsStore] = None,
        durability_dir: Optional[Any] = None,
        wal_enabled: bool = True,
        wal_fsync: bool = True,
        checkpoint_threshold: int = 4 << 20,
        checkpoint_interval_s: Optional[float] = None,
        columnar: bool = False,
        morsel_size: int = 4096,
        morsel_threads: int = 1,
    ):
        self.database = database or Database(
            "minidb",
            execution_model="vector",
            optimizer_profile=OptimizerProfile(
                name="minidb", push_filter_below_udf_project=True
            ),
            stats=stats,
        )
        if columnar:
            self.enable_columnar(
                morsel_size=morsel_size, threads=morsel_threads
            )
        if durability_dir is not None:
            # Recovers the directory's state into the catalog/registry
            # before the adapter serves anything, then WAL-logs writes.
            from ..storage.durability import attach_to_adapter

            attach_to_adapter(
                self,
                durability_dir,
                wal_enabled=wal_enabled,
                wal_fsync=wal_fsync,
                checkpoint_threshold=checkpoint_threshold,
                checkpoint_interval_s=checkpoint_interval_s,
            )

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.database.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        executor = self.database._make_executor()
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        return self.database.execute(statement)
