"""Tuple-at-a-time adapter — the SQLite-model on our own engine.

In-process, pipelined iterators, per-row UDF invocation (one boundary
round trip per row per UDF — the "numerous foreign function calls" of
the paper's SQLite analysis).  Used wherever the workloads exceed the
SQL coverage of Python's stdlib ``sqlite3`` adapter.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["TupleDbAdapter"]


class TupleDbAdapter(EngineAdapter):
    name = "sqlite"  # dialect profile: in-process tuple-at-a-time
    supports_plan_dispatch = True
    in_process = True

    def __init__(self, *, stats: Optional[StatsStore] = None):
        self.database = Database(
            "tupledb",
            execution_model="tuple",
            optimizer_profile=OptimizerProfile(
                name="tupledb", push_filter_below_udf_project=True
            ),
            stats=stats,
        )

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.database.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        executor = self.database._make_executor()
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        return self.database.execute(statement)
