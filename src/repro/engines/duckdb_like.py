"""DuckDB-like adapter: vectorized execution, eager intermediate
materialization around UDFs, no UDF JIT of its own.

Structurally identical to MiniDB (both are vectorized column stores);
the profiles differ in which QFusor features benchmarks attach to them
and in their dialect entries.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["DuckDbLikeAdapter"]


class DuckDbLikeAdapter(EngineAdapter):
    name = "duckdb"
    supports_plan_dispatch = True
    in_process = True

    def __init__(
        self,
        *,
        stats: Optional[StatsStore] = None,
        columnar: bool = False,
        morsel_size: int = 4096,
        morsel_threads: int = 1,
    ):
        self.database = Database(
            "duckdb_like",
            execution_model="vector",
            optimizer_profile=OptimizerProfile(
                name="duckdb_like", push_filter_below_udf_project=True
            ),
            stats=stats,
        )
        if columnar:
            self.enable_columnar(
                morsel_size=morsel_size, threads=morsel_threads
            )

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.database.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        executor = self.database._make_executor()
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        return self.database.execute(statement)
