"""Parallel adapter — the commercial "dbX" profile.

Vectorized execution with thread-parallel relational operators, but no
UDF JIT and no fusion of its own: UDFs run through the plain wrapper
path with engine<->UDF context switches, matching the paper's account of
dbX ("strong parallelism, but its lack of UDF JIT compilation and
context switches between relational and UDF operators limit
performance").
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.parallel import ParallelVectorExecutor
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["ParallelDbAdapter"]


class ParallelDbAdapter(EngineAdapter):
    name = "dbx"
    supports_plan_dispatch = True
    in_process = True

    def __init__(
        self,
        threads: int = 4,
        *,
        stats: Optional[StatsStore] = None,
        columnar: bool = False,
        morsel_size: int = 4096,
    ):
        self.threads = threads
        self.database = Database(
            "dbx",
            execution_model="vector",
            optimizer_profile=OptimizerProfile(
                name="dbx", push_filter_below_udf_project=True
            ),
            stats=stats,
        )
        if columnar:
            # The morsel executor subsumes the per-operator thread fan-out
            # below: threads become morsel workers with stealing.
            self.enable_columnar(morsel_size=morsel_size, threads=threads)

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.database.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        policy = self.columnar
        if policy is not None and policy.enabled:
            from ..columnar.executor import MorselVectorExecutor

            executor = MorselVectorExecutor(
                self.database.catalog, self.database.resolver, policy,
                scheduler=policy.scheduler,
            )
        else:
            executor = ParallelVectorExecutor(
                self.database.catalog, self.database.resolver, self.threads
            )
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        from ..sql.parser import parse

        stmt = parse(statement) if isinstance(statement, str) else statement
        if isinstance(stmt, ast.Select):
            return self._execute_plan(self.database.plan(stmt))
        return self.database.execute(stmt)
