"""Engine adapters — the pluggable integrations of QFusor (section 5.5).

Each adapter exposes the same narrow interface
(:class:`~repro.engines.base.EngineAdapter`): an EXPLAIN probe returning
a structured plan, UDF registration, and execution — either of a
rewritten plan (path 2) or of rewritten SQL text (path 1).

Profiles provided:

* :class:`~repro.engines.minidb.MiniDbAdapter` — our vectorized
  column-store engine (the MonetDB-style deployment, default);
* :class:`~repro.engines.minidb_row.RowStoreAdapter` — tuple-at-a-time
  row store with an out-of-process UDF boundary (PostgreSQL-style);
* :class:`~repro.engines.sqlite_adapter.SqliteAdapter` — Python's real
  stdlib ``sqlite3``, registered through ``create_function`` (genuine
  third-party pluggability);
* :class:`~repro.engines.tuple_adapter.TupleDbAdapter` — in-process
  tuple-at-a-time (SQLite-model on our own engine, used where the
  workloads exceed stdlib-sqlite SQL support);
* :class:`~repro.engines.parallel_db.ParallelDbAdapter` — multi-threaded
  relational execution without UDF JIT (the commercial "dbX" profile);
* :class:`~repro.engines.duckdb_like.DuckDbLikeAdapter` — vectorized,
  no UDF JIT (DuckDB-style profile).
"""

from .base import EngineAdapter
from .minidb import MiniDbAdapter
from .minidb_row import RowStoreAdapter
from .tuple_adapter import TupleDbAdapter
from .sqlite_adapter import SqliteAdapter
from .parallel_db import ParallelDbAdapter
from .duckdb_like import DuckDbLikeAdapter

__all__ = [
    "EngineAdapter", "MiniDbAdapter", "RowStoreAdapter", "TupleDbAdapter",
    "SqliteAdapter", "ParallelDbAdapter", "DuckDbLikeAdapter",
]
