"""The engine adapter interface QFusor plugs into.

The paper's pluggability requirements (section 3.2): the engine must
offer (a) a plan-generation mechanism reachable through EXPLAIN and
(b) a UDF registration mechanism with C UDF support.  The adapter
interface mirrors exactly that, plus the two rewrite paths of section
5.4: plan dispatch (``execute_plan``) and SQL resubmission
(``execute_sql``).
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..udf.registry import UdfRegistry

__all__ = ["EngineAdapter"]


class EngineAdapter:
    """Base class for engine integrations."""

    #: Engine name; must match a key in :data:`repro.core.dialect.DIALECTS`.
    name: str = "base"
    #: The engine can execute a rewritten plan directly (path 2).
    supports_plan_dispatch: bool = True
    #: The engine runs UDFs in-process (enables exported-internals
    #: group-by offloading, section 5.3.2).
    in_process: bool = True

    @property
    def registry(self) -> UdfRegistry:
        raise NotImplementedError

    @property
    def resolver(self):
        raise NotImplementedError

    # -- schema/UDF management ------------------------------------------

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        raise NotImplementedError

    def register_udf(self, udf: Any, *, replace: bool = False) -> None:
        raise NotImplementedError

    # -- query interface --------------------------------------------------

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        """Probe the engine's optimizer (the EXPLAIN round trip)."""
        raise NotImplementedError

    def execute_plan(self, planned: PlannedQuery) -> Table:
        """Dispatch a (possibly rewritten) plan to the execution engine."""
        raise NotImplementedError

    def execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        """Execute a SQL statement as-is."""
        raise NotImplementedError
