"""The engine adapter interface QFusor plugs into.

The paper's pluggability requirements (section 3.2): the engine must
offer (a) a plan-generation mechanism reachable through EXPLAIN and
(b) a UDF registration mechanism with C UDF support.  The adapter
interface mirrors exactly that, plus the two rewrite paths of section
5.4: plan dispatch (``execute_plan``) and SQL resubmission
(``execute_sql``).
"""

from __future__ import annotations

import contextlib
from typing import Any, Optional, Union

from ..engine.planner import PlannedQuery
from ..obs import OBS
from ..obs import tracer as obs_tracer
from ..resilience.governor import QueryContext, govern
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..udf.registry import UdfRegistry

__all__ = ["EngineAdapter"]


class EngineAdapter:
    """Base class for engine integrations.

    ``execute_plan`` / ``execute_sql`` are template methods: they wrap the
    engine-specific ``_execute_plan`` / ``_execute_sql`` in a governance
    scope (:func:`repro.resilience.governor.govern`) so every entry point
    honours deadlines, cancellation, and row budgets.  Called without a
    context — and with no ambient governed scope — they behave exactly as
    before (zero-overhead legacy path).
    """

    #: Engine name; must match a key in :data:`repro.core.dialect.DIALECTS`.
    name: str = "base"
    #: The engine can execute a rewritten plan directly (path 2).
    supports_plan_dispatch: bool = True
    #: UDF-to-SQL translation capability profile; must match a key in
    #: :data:`repro.sql.translate.DIALECT_PROFILES`.  The mini-engine
    #: family evaluates expressions with Python semantics, hence the
    #: default.  Keyed separately from ``name`` because adapters may
    #: share a SQL dialect (e.g. the tuple adapter parses sqlite SQL)
    #: while their expression *semantics* differ.
    translate_dialect: str = "python"
    #: The engine runs UDFs in-process (enables exported-internals
    #: group-by offloading, section 5.3.2).
    in_process: bool = True
    #: Optional :class:`repro.storage.durability.DurabilityManager`
    #: attached via ``durability_dir=`` or
    #: :func:`repro.storage.durability.attach_to_adapter`.
    durability: Optional[Any] = None

    @property
    def registry(self) -> UdfRegistry:
        raise NotImplementedError

    @property
    def resolver(self):
        raise NotImplementedError

    # -- process isolation -------------------------------------------------

    @property
    def workers(self):
        """The adapter's UDF worker pool, or ``None`` (in-process UDFs)."""
        try:
            return self.registry.workers
        except NotImplementedError:
            return None

    def enable_process_isolation(self, **knobs: Any):
        """Route this adapter's UDF batches through supervised worker
        processes (``isolation="process"``).

        ``knobs`` are :class:`repro.resilience.workers.WorkerPool`
        constructor arguments (pool size, memory cap, restart budget,
        quarantine policy, ...).  Worker crashes charge the registry's
        circuit breakers.  Returns the pool.
        """
        from ..resilience.workers import WorkerPool

        pool = WorkerPool(**knobs)
        pool.on_crash = self.registry.breakers.record_failure
        policy = self.columnar
        if policy is not None and "buffer_transport" not in knobs:
            pool.buffer_transport = policy.buffer_transport
        self.registry.workers = pool
        return pool

    def disable_process_isolation(self) -> None:
        """Tear the worker pool down and return to in-process UDFs."""
        pool = self.workers
        if pool is not None:
            pool.shutdown()
            self.registry.workers = None

    # -- columnar data plane ----------------------------------------------

    @property
    def columnar(self):
        """The adapter's columnar-plane policy, or ``None`` (classic)."""
        try:
            return self.registry.columnar
        except NotImplementedError:
            return None

    def enable_columnar(self, **knobs: Any):
        """Switch this adapter onto the typed-buffer data plane.

        ``knobs`` are :class:`repro.columnar.ColumnarPolicy` fields
        (``enabled``, ``morsel_size``, ``threads``, ``buffer_transport``);
        ``None``/omitted knobs keep their current values.  Attaches the
        policy to the UDF registry (kernel dispatch), the execution
        engine (morsel sharding), and the worker pool / resilient channel
        (buffer transport).  Returns the policy.
        """
        from ..columnar import ColumnarPolicy

        policy = self.columnar
        if policy is None:
            policy = ColumnarPolicy()
            self.registry.columnar = policy
        if "morsel_threads" in knobs:
            # Constructor spelling (``morsel_threads=``) accepted here
            # too, so the two opt-in paths take the same knob names.
            knobs.setdefault("threads", knobs.pop("morsel_threads"))
        policy.configure(**knobs)
        self._attach_columnar(policy)
        pool = self.workers
        if pool is not None and hasattr(pool, "configure"):
            pool.configure(buffer_transport=policy.buffer_transport)
        channel = getattr(self.registry, "channel", None)
        if channel is not None and hasattr(channel, "configure"):
            channel.configure(buffer_transport=policy.buffer_transport)
        return policy

    def disable_columnar(self) -> None:
        """Return to the classic object paths (and release the morsel
        pool)."""
        policy = self.columnar
        if policy is None:
            return
        policy.close()
        self.registry.columnar = None
        self._attach_columnar(None)
        pool = self.workers
        if pool is not None and hasattr(pool, "configure"):
            pool.configure(buffer_transport=False)
        channel = getattr(self.registry, "channel", None)
        if channel is not None and hasattr(channel, "configure"):
            channel.configure(buffer_transport=False)

    def _attach_columnar(self, policy) -> None:
        """Adapter hook: propagate the policy into engine internals."""

    def close(self) -> None:
        """Release adapter resources (worker processes, channels, WAL)."""
        self.disable_process_isolation()
        policy = self.columnar
        if policy is not None:
            policy.close()
        if self.durability is not None:
            self.durability.close()
            self.durability = None

    # -- schema/UDF management ------------------------------------------

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        raise NotImplementedError

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    # -- query interface --------------------------------------------------

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        """Probe the engine's optimizer (the EXPLAIN round trip)."""
        raise NotImplementedError

    def execute_plan(
        self, planned: PlannedQuery, *, context: Optional[QueryContext] = None
    ) -> Table:
        """Dispatch a (possibly rewritten) plan to the execution engine."""
        with contextlib.ExitStack() as stack:
            sp = None
            if OBS.tracing:
                stack.enter_context(
                    obs_tracer.maybe_trace("query", adapter=self.name)
                )
                sp = stack.enter_context(
                    obs_tracer.span("execute", adapter=self.name)
                )
            with govern(
                self.name, context, query=getattr(planned, "sql", None)
            ) as gctx:
                result = self._execute_plan(planned)
            if sp is not None:
                sp.attrs["rows"] = result.num_rows
                if gctx is not None and gctx.tenant is not None:
                    sp.attrs["tenant"] = gctx.tenant
            return result

    def execute_sql(
        self,
        statement: Union[str, ast.Statement],
        *,
        context: Optional[QueryContext] = None,
    ) -> Table:
        """Execute a SQL statement as-is."""
        query = statement if isinstance(statement, str) else None
        with contextlib.ExitStack() as stack:
            sp = None
            if OBS.tracing:
                trace = stack.enter_context(
                    obs_tracer.maybe_trace("query", adapter=self.name)
                )
                if trace is not None and query is not None:
                    trace.root.attrs.setdefault("sql", query)
                sp = stack.enter_context(
                    obs_tracer.span("execute", adapter=self.name)
                )
            with govern(self.name, context, query=query) as gctx:
                result = self._execute_sql(statement)
            if sp is not None:
                if result is not None:
                    sp.attrs["rows"] = getattr(result, "num_rows", None)
                if gctx is not None and gctx.tenant is not None:
                    sp.attrs["tenant"] = gctx.tenant
            return result

    # -- engine-specific execution (override these) -----------------------

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        raise NotImplementedError

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        raise NotImplementedError
