"""Row-store adapter — the PostgreSQL-style deployment.

Tuple-at-a-time execution, out-of-process UDFs, and a native optimizer
that does *not* push filters below UDF-bearing projections — reproducing
the "3x more UDF invocations" behaviour of Figure 6a.

The out-of-process boundary has two fidelities, selected by
``isolation``:

``"channel"`` (default)
    Every UDF batch pays a pickle round trip through a
    :class:`~repro.resilience.channel.ResilientChannel` — the
    serialization cost of the boundary, in-process.
``"process"``
    UDF batches execute in real supervised worker processes
    (:class:`~repro.resilience.workers.WorkerPool`): the boundary gains
    real crash semantics — worker death, OOM kills, hang kills — on top
    of the serialization cost.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..resilience.channel import ResilientChannel
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["RowStoreAdapter"]


class RowStoreAdapter(EngineAdapter):
    name = "minidb_row"
    supports_plan_dispatch = True
    in_process = False

    def __init__(
        self,
        *,
        stats: Optional[StatsStore] = None,
        isolation: str = "channel",
        worker_pool_size: int = 2,
        worker_memory_limit_mb: Optional[int] = None,
        worker_max_restarts: int = 16,
        worker_max_batch_retries: int = 2,
        worker_quarantine_policy: str = "degrade",
        worker_batch_timeout_s: Optional[float] = None,
        durability_dir: Optional[Any] = None,
        wal_enabled: bool = True,
        wal_fsync: bool = True,
        checkpoint_threshold: int = 4 << 20,
        checkpoint_interval_s: Optional[float] = None,
        columnar: bool = False,
        morsel_size: int = 4096,
        morsel_threads: int = 1,
        buffer_transport: bool = False,
    ):
        if isolation not in ("channel", "process"):
            raise ValueError(f"unknown isolation mode {isolation!r}")
        self.isolation = isolation
        # The hardened pickle channel: per-batch timeout, bounded retries
        # with backoff, corruption detection with in-process degradation.
        self.channel = ResilientChannel()
        self.database = Database(
            "minidb_row",
            execution_model="tuple",
            optimizer_profile=OptimizerProfile(
                name="minidb_row", push_filter_below_udf_project=False
            ),
            stats=stats,
            channel=self.channel,
        )
        if durability_dir is not None:
            from ..storage.durability import attach_to_adapter

            attach_to_adapter(
                self,
                durability_dir,
                wal_enabled=wal_enabled,
                wal_fsync=wal_fsync,
                checkpoint_threshold=checkpoint_threshold,
                checkpoint_interval_s=checkpoint_interval_s,
            )
        if isolation == "process":
            self.enable_process_isolation(
                pool_size=worker_pool_size,
                memory_limit_mb=worker_memory_limit_mb,
                max_restarts=worker_max_restarts,
                max_batch_retries=worker_max_batch_retries,
                quarantine_policy=worker_quarantine_policy,
                batch_timeout_s=worker_batch_timeout_s,
            )
        if columnar or buffer_transport:
            # On the row store the columnar plane mainly buys buffer-aware
            # transport: the modeled channel / worker pipe ships typed
            # frames instead of object-list pickles.  The tuple executor
            # itself stays row-at-a-time.
            self.enable_columnar(
                enabled=columnar,
                morsel_size=morsel_size,
                threads=morsel_threads,
                buffer_transport=buffer_transport,
            )

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.database.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        executor = self.database._make_executor()
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        return self.database.execute(statement)
