"""Row-store adapter — the PostgreSQL-style deployment.

Tuple-at-a-time execution, out-of-process UDFs (every UDF batch pays a
pickle round trip through a :class:`~repro.udf.registry.ProcessChannel`),
and a native optimizer that does *not* push filters below UDF-bearing
projections — reproducing the "3x more UDF invocations" behaviour of
Figure 6a.
"""

from __future__ import annotations

from typing import Any, Optional, Union

from ..engine.database import Database
from ..engine.optimizer import OptimizerProfile
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..storage.table import Table
from ..resilience.channel import ResilientChannel
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["RowStoreAdapter"]


class RowStoreAdapter(EngineAdapter):
    name = "minidb_row"
    supports_plan_dispatch = True
    in_process = False

    def __init__(self, *, stats: Optional[StatsStore] = None):
        # The hardened pickle channel: per-batch timeout, bounded retries
        # with backoff, corruption detection with in-process degradation.
        self.channel = ResilientChannel()
        self.database = Database(
            "minidb_row",
            execution_model="tuple",
            optimizer_profile=OptimizerProfile(
                name="minidb_row", push_filter_below_udf_project=False
            ),
            stats=stats,
            channel=self.channel,
        )

    @property
    def registry(self):
        return self.database.registry

    @property
    def resolver(self):
        return self.database.resolver

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.database.register_table(table, replace=replace)

    def register_udf(self, udf: Any, *, replace: bool = False) -> None:
        self.database.register_udf(udf, replace=replace)

    def explain_plan(self, statement: Union[str, ast.Statement]) -> PlannedQuery:
        return self.database.plan(statement)

    def _execute_plan(self, planned: PlannedQuery) -> Table:
        executor = self.database._make_executor()
        return executor.execute(planned)

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        return self.database.execute(statement)
