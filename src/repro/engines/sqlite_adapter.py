"""Real SQLite integration through Python's stdlib ``sqlite3``.

This adapter demonstrates genuine third-party pluggability: tables are
loaded into an in-memory SQLite database, UDFs are registered through
``sqlite3``'s ``create_function`` / ``create_aggregate`` C-API bridge,
and QFusor accelerates queries through the SQL-rewrite path (section
5.4, path 1) since SQLite exposes no structured plan to rewrite.

Scalar and aggregate UDFs are supported (SQLite has no table-valued
Python UDFs); complex (JSON) values cross the boundary serialized, as in
the main engine.
"""

from __future__ import annotations

import sqlite3
from typing import Any, Callable, List, Optional, Sequence, Union

from ..errors import (
    ExecutionError,
    QueryInterrupt,
    UdfExecutionError,
    UdfRegistrationError,
)
from ..obs import METRICS, OBS
from ..resilience import governor as _governor
from ..resilience import runtime as _resilience
from ..sql import ast_nodes as ast
from ..sql.printer import to_sql
from ..storage import serde
from ..storage.table import Table
from ..types import SqlType
from ..udf.definition import UdfDefinition, UdfKind
from ..udf.registry import UdfRegistry
from ..udf.state import StatsStore
from .base import EngineAdapter

__all__ = ["SqliteAdapter"]

_SQLITE_DECL = {
    SqlType.INT: "INTEGER",
    SqlType.FLOAT: "REAL",
    SqlType.TEXT: "TEXT",
    SqlType.BOOL: "INTEGER",
    SqlType.JSON: "TEXT",
}


class SqliteAdapter(EngineAdapter):
    name = "sqlite"
    supports_plan_dispatch = False  # QFusor uses the SQL-rewrite path
    translate_dialect = "sqlite"  # C-style %, ASCII-only case folding
    in_process = True

    def __init__(self, *, stats: Optional[StatsStore] = None):
        from ..storage.catalog import Catalog

        self.connection = sqlite3.connect(":memory:")
        self._registry = UdfRegistry(stats)
        self._schemas = {}
        #: sqlite3 masks Python exceptions from UDF bridges behind a
        #: generic ``OperationalError``; bridges stash the real error
        #: (a :class:`UdfExecutionError` or a governance
        #: :class:`QueryInterrupt`) here so ``execute_sql`` can re-raise
        #: it with the UDF name and offending value intact.
        self._pending_error: Optional[BaseException] = None
        #: Schema-only catalog so QFusor's SQL-rewrite path can resolve
        #: column types without round-tripping to SQLite.
        self.catalog = Catalog()

    @property
    def registry(self) -> UdfRegistry:
        return self._registry

    @property
    def resolver(self):
        from ..engine.expressions import FunctionResolver

        return FunctionResolver(self._registry)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        columns = ", ".join(
            f'"{name}" {_SQLITE_DECL[t]}' for name, t in table.schema
        )
        cursor = self.connection.cursor()
        if replace:
            cursor.execute(f'DROP TABLE IF EXISTS "{table.name}"')
        cursor.execute(f'CREATE TABLE "{table.name}" ({columns})')
        placeholders = ", ".join("?" for _ in table.schema.names)
        rows = [
            tuple(
                int(v) if isinstance(v, bool) else v for v in row
            )
            for row in table.rows()
        ]
        cursor.executemany(
            f'INSERT INTO "{table.name}" VALUES ({placeholders})', rows
        )
        self.connection.commit()
        self._schemas[table.name.lower()] = list(table.schema)
        self.catalog.register(
            Table.empty(table.name, list(table.schema)), replace=True
        )

    # ------------------------------------------------------------------
    # UDFs
    # ------------------------------------------------------------------

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        registered = self._registry.register(
            udf, replace=replace, deterministic=deterministic, version=version
        )
        definition = registered.definition
        if definition.kind is UdfKind.SCALAR:
            self._register_scalar(definition)
        elif definition.kind is UdfKind.AGGREGATE:
            self._register_aggregate(definition)
        else:
            raise UdfRegistrationError(
                "SQLite does not support table-valued Python UDFs"
            )

    def _register_scalar(self, definition: UdfDefinition) -> None:
        arg_types = definition.signature.arg_types
        out_type = definition.signature.return_types[0]
        func = definition.func
        name = definition.name
        names = (name,) + tuple(definition.fused_from)
        ctx = "fused" if definition.is_fused else "interp"
        strict = definition.strict
        adapter = self
        faults = _resilience.FAULTS

        fused_from = tuple(definition.fused_from)

        def bridge(*args):
            if OBS.metrics:
                METRICS.counter(
                    "repro_udf_calls_total", udf=name, engine="sqlite"
                ).inc()
            converted = None
            try:
                with _governor.udf_batch_guard(name, fused_from):
                    if faults.armed:
                        faults.injector.fire_row(names, None, ctx)
                    converted = [
                        _from_sqlite(v, t) for v, t in zip(args, arg_types)
                    ]
                    if strict and any(v is None for v in converted):
                        return None
                    return _to_sqlite(func(*converted), out_type)
            except QueryInterrupt as exc:
                # Never swallowed by row policies; stash so execute_sql
                # re-raises it through sqlite3's OperationalError mask.
                adapter._pending_error = exc
                raise
            except Exception as exc:
                retry = (
                    (lambda: func(*converted))
                    if converted is not None else None
                )
                values = tuple(converted) if converted is not None else args
                try:
                    result = _resilience.handle_value_error(
                        name, _resilience.policy(), exc, retry, values
                    )
                except UdfExecutionError as wrapped:
                    adapter._pending_error = wrapped
                    raise
                return _to_sqlite(result, out_type)

        self.connection.create_function(
            definition.name, definition.arity, bridge
        )

    def _register_aggregate(self, definition: UdfDefinition) -> None:
        arg_types = definition.signature.arg_types
        out_type = definition.signature.return_types[0]
        agg_class = definition.func
        name = definition.name
        names = (name,) + tuple(definition.fused_from)
        ctx = "fused" if definition.is_fused else "interp"
        adapter = self
        faults = _resilience.FAULTS

        class Bridge:
            def __init__(self):
                self._state = agg_class()
                self._rows = 0

            # Aggregate state cannot be reconciled after a failed step,
            # so row policies never apply: failures raise (localized to
            # the row/phase) and recovery is query-level deopt.

            def step(self, *args):
                if OBS.metrics:
                    METRICS.counter(
                        "repro_udf_calls_total", udf=name, engine="sqlite"
                    ).inc()
                row = self._rows
                self._rows += 1
                converted = None
                try:
                    with _governor.udf_batch_guard(name, names[1:]):
                        if faults.armed:
                            faults.injector.fire_row(names, row, ctx)
                        converted = [
                            _from_sqlite(v, t) for v, t in zip(args, arg_types)
                        ]
                        if converted and all(v is None for v in converted):
                            return
                        self._state.step(*converted)
                except QueryInterrupt as exc:
                    adapter._pending_error = exc
                    raise
                except UdfExecutionError as exc:
                    adapter._pending_error = exc
                    raise
                except Exception as exc:
                    value = (
                        tuple(converted) if converted is not None else args
                    )
                    wrapped = UdfExecutionError(
                        name, exc, row=row, value=value
                    )
                    adapter._pending_error = wrapped
                    raise wrapped from exc

            def finalize(self):
                try:
                    return _to_sqlite(self._state.final(), out_type)
                except QueryInterrupt as exc:
                    adapter._pending_error = exc
                    raise
                except UdfExecutionError as exc:
                    adapter._pending_error = exc
                    raise
                except Exception as exc:
                    wrapped = UdfExecutionError(name, exc, phase="final")
                    adapter._pending_error = wrapped
                    raise wrapped from exc

        self.connection.create_aggregate(
            definition.name, definition.arity, Bridge
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def explain_plan(self, statement):
        raise ExecutionError(
            "SQLite exposes no structured plan; QFusor uses SQL rewriting"
        )

    def _execute_plan(self, planned) -> Table:
        raise ExecutionError("SQLite does not accept plan dispatch")

    def _execute_sql(self, statement: Union[str, ast.Statement]) -> Table:
        sql = statement if isinstance(statement, str) else to_sql(statement)
        cursor = self.connection.cursor()
        self._pending_error = None
        gov = _governor.current()
        if gov is not None:
            # Cooperative cancellation for UDF-free stretches of the
            # statement: SQLite polls the handler every N VM opcodes and
            # aborts when it returns nonzero.
            def _progress() -> int:
                return 1 if (gov.cancelled or gov.expired) else 0

            self.connection.set_progress_handler(_progress, 1000)
        try:
            cursor.execute(sql)
            if cursor.description is None:
                self.connection.commit()
                from ..storage.column import Column

                return Table(
                    "rowcount",
                    [Column("rows", SqlType.INT, [cursor.rowcount],
                            validate=False)],
                )
            names = [d[0] for d in cursor.description]
            rows = cursor.fetchall()
        except (sqlite3.Error, QueryInterrupt) as exc:
            # sqlite3 reports UDF failures as a generic OperationalError;
            # surface the real error the bridge recorded instead.
            pending, self._pending_error = self._pending_error, None
            if pending is not None and pending is not exc:
                raise pending from exc
            if gov is not None and isinstance(exc, sqlite3.Error):
                gov.check()  # progress-handler abort -> typed interrupt
            raise
        finally:
            if gov is not None:
                self.connection.set_progress_handler(None, 0)
        return _table_from_cursor(names, rows)


def _from_sqlite(value: Any, sql_type: SqlType) -> Any:
    if value is None:
        return None
    if sql_type is SqlType.JSON:
        return serde.deserialize(value)
    if sql_type is SqlType.BOOL:
        return bool(value)
    return value


def _to_sqlite(value: Any, sql_type: SqlType) -> Any:
    if value is None:
        return None
    if sql_type is SqlType.JSON:
        return serde.serialize(value)
    if sql_type is SqlType.BOOL:
        return int(value)
    return value


def _table_from_cursor(names: Sequence[str], rows: List[tuple]) -> Table:
    from ..storage.column import Column

    columns = []
    for index, name in enumerate(names):
        values = [row[index] for row in rows]
        sql_type = _infer_sqlite_type(values)
        columns.append(Column(name, sql_type, values, validate=False))
    return Table("result", columns)


def _infer_sqlite_type(values: Sequence[Any]) -> SqlType:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return SqlType.BOOL
        if isinstance(value, int):
            return SqlType.INT
        if isinstance(value, float):
            return SqlType.FLOAT
        return SqlType.TEXT
    return SqlType.TEXT
