"""Deterministic testing utilities (fault injection, crash harness)."""

from .crash import (
    CrashVerdict,
    build_workload,
    run_inprocess_crash,
    run_subprocess_crash,
)
from .failover import (
    FailoverVerdict,
    run_inprocess_failover,
    run_subprocess_failover,
)
from .faults import (
    DURABILITY_STAGES,
    REPLICATION_STAGES,
    FaultInjector,
    InjectedFault,
    PoisonedTraceError,
    inject,
    poison_traces,
)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "PoisonedTraceError",
    "DURABILITY_STAGES",
    "REPLICATION_STAGES",
    "inject",
    "poison_traces",
    "CrashVerdict",
    "build_workload",
    "run_inprocess_crash",
    "run_subprocess_crash",
    "FailoverVerdict",
    "run_inprocess_failover",
    "run_subprocess_failover",
]
