"""Deterministic testing utilities (fault injection, crash harness)."""

from .crash import (
    CrashVerdict,
    build_workload,
    run_inprocess_crash,
    run_subprocess_crash,
)
from .faults import (
    DURABILITY_STAGES,
    FaultInjector,
    InjectedFault,
    PoisonedTraceError,
    inject,
    poison_traces,
)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "PoisonedTraceError",
    "DURABILITY_STAGES",
    "inject",
    "poison_traces",
    "CrashVerdict",
    "build_workload",
    "run_inprocess_crash",
    "run_subprocess_crash",
]
