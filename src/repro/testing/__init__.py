"""Deterministic testing utilities (fault injection for resilience tests)."""

from .faults import (
    FaultInjector,
    InjectedFault,
    PoisonedTraceError,
    inject,
    poison_traces,
)

__all__ = [
    "FaultInjector",
    "InjectedFault",
    "PoisonedTraceError",
    "inject",
    "poison_traces",
]
