"""Crash-consistency harness: randomized kill injection + recovery audit.

The harness drives one deterministic, seeded catalog workload against a
WAL'd database directory, kills the writer at a randomized durability
fault point — a torn ``wal_append`` (cut at an arbitrary byte), a lost
``wal_fsync``, a torn ``checkpoint_write``, a crash straddling
``checkpoint_replace``, ``checkpoint_reset``, or the truncate-to-header
window of ``wal_reset`` — recovers the directory, and audits the
recovered state against an **uncrashed twin** that applied the same ops
in plain memory:

* **No acked loss / no unacked resurrection** — the recovered catalog
  (tables *and* snapshot epochs) must equal the twin at ``ops[:k]`` for
  some ``k`` with ``acked <= k <= acked + 1``.  ``k = acked`` is a torn
  in-flight op; ``k = acked + 1`` is the durable-but-unacknowledged
  window (the frame hit disk, the fsync acknowledgement didn't) — both
  legal, anything else is corruption.
* **Generation advance** — the recovered generation strictly exceeds
  the writer's, so any cache entry keyed before the crash is
  unreachable after it.
* **Post-recovery durability** — an op acknowledged by the recovered
  incarnation survives the *next* restart, and the generation advances
  again.  This is the invariant a torn ``wal_reset`` breaks when
  recovery fails to restore LSN monotonicity: the reopened log restarts
  at ``base_lsn=0`` and the following replay skips fresh appends as
  already-checkpointed.

Two writer modes share the verification path: ``run_inprocess_crash``
raises :class:`~repro.errors.SimulatedCrash` at the fault point
(cheap — hundreds of points per test run), and ``run_subprocess_crash``
forks a real writer process and lets the fault point ``SIGKILL`` it
mid-syscall, acknowledging ops through an fsync'd ack file exactly the
way a client would observe commits.
"""

from __future__ import annotations

import os
import random
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..errors import SimulatedCrash
from ..storage.catalog import Catalog
from ..storage.column import Column
from ..storage.durability import DurabilityManager
from ..storage.durability import records as dur_records
from ..storage.table import Table
from ..types import SqlType
from . import faults

__all__ = [
    "build_workload",
    "apply_op",
    "catalog_state",
    "random_crash_spec",
    "run_inprocess_crash",
    "run_subprocess_crash",
    "CrashVerdict",
]

_TABLE_NAMES = ("orders", "users", "events", "ext_rows")


# ----------------------------------------------------------------------
# Deterministic workload
# ----------------------------------------------------------------------


def _make_table(name: str, seed: int) -> Table:
    """A small deterministic table image derived from ``seed``."""
    rows = seed % 5 + 1
    ints = [(seed * 31 + i * 7) % 1000 for i in range(rows)]
    texts = [f"v{seed}_{i}" if (seed + i) % 4 else None for i in range(rows)]
    floats = [((seed + i) % 17) / 4.0 for i in range(rows)]
    return Table(
        name,
        [
            Column("a", SqlType.INT, ints),
            Column("b", SqlType.TEXT, texts),
            Column("c", SqlType.FLOAT, floats),
        ],
    )


def build_workload(seed: int, n_ops: int = 24) -> List[Tuple]:
    """A seeded list of catalog ops: register / replace / drop / touch.

    Fully deterministic in ``seed`` so the crashed writer, the uncrashed
    twin, and the subprocess writer all derive the identical op list.
    """
    rng = random.Random(seed)
    ops: List[Tuple] = []
    live = set()
    for i in range(n_ops):
        name = rng.choice(_TABLE_NAMES)
        if name == "ext_rows":
            # Externally-stored table: epoch-only traffic.
            ops.append(("touch", name))
            continue
        roll = rng.random()
        if name not in live:
            ops.append(("register", name, seed * 100 + i))
            live.add(name)
        elif roll < 0.15:
            ops.append(("drop", name))
            live.discard(name)
        elif roll < 0.35:
            ops.append(("touch", name))
        else:
            ops.append(("register", name, seed * 100 + i))
    return ops


def apply_op(catalog: Catalog, op: Tuple) -> None:
    kind = op[0]
    if kind == "register":
        catalog.register(_make_table(op[1], op[2]), replace=True)
    elif kind == "drop":
        catalog.drop(op[1])
    elif kind == "touch":
        catalog.touch(op[1])
    else:  # pragma: no cover - workload generator bug
        raise ValueError(f"unknown op {op!r}")


def catalog_state(catalog: Catalog) -> Dict[str, Any]:
    """Comparable full state: table images + snapshot epochs."""
    return {
        "tables": {
            t.name.lower(): dur_records.encode_table(t) for t in catalog
        },
        "epochs": dict(catalog._epochs),
    }


# ----------------------------------------------------------------------
# Crash spec selection
# ----------------------------------------------------------------------


def random_crash_spec(
    rng: random.Random, n_ops: int
) -> Tuple[str, int, Optional[int]]:
    """Pick a (stage, occurrence, cut) fault point for one run.

    WAL stages land anywhere in the workload; checkpoint stages target
    early occurrences (a small threshold makes them frequent).  ``cut``
    tears the write at a random byte; ``None`` lets the full write land
    before the crash — the durable-but-unacked window.
    """
    stage = rng.choice(faults.DURABILITY_STAGES)
    if stage in ("wal_append", "wal_fsync"):
        at = rng.randrange(max(1, n_ops))
    else:
        # Checkpoint-path stages (including wal_reset) only occur once
        # per threshold crossing: target the first few occurrences.
        at = rng.randrange(3)
    cut: Optional[int] = None
    if (
        stage in ("wal_append", "checkpoint_write", "wal_reset")
        and rng.random() < 0.7
    ):
        cut = rng.randrange(0, 200)
    return stage, at, cut


# ----------------------------------------------------------------------
# Verification (shared by both writer modes)
# ----------------------------------------------------------------------


class CrashVerdict:
    """Outcome of one crash/recover/verify round."""

    __slots__ = (
        "fired", "stage", "acked", "matched_k", "generation",
        "report", "crashed",
    )

    def __init__(self, **kw: Any):
        for slot in self.__slots__:
            setattr(self, slot, kw.get(slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<verdict fired={self.fired} stage={self.stage} "
            f"acked={self.acked} k={self.matched_k} gen={self.generation}>"
        )


def _verify_recovery(
    directory: Path,
    ops: List[Tuple],
    acked: int,
    *,
    writer_generation: int,
    crashed: bool,
    stage: Optional[str],
    checkpoint_threshold: int,
) -> CrashVerdict:
    """Recover ``directory`` and audit it against the uncrashed twin."""
    recovered = Catalog()
    manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    report = manager.attach(recovered)
    got = catalog_state(recovered)
    # Probe op: acknowledged by the recovered incarnation, so it must
    # survive the *next* restart too (verified below).  Guards WAL LSN
    # monotonicity across recovery — a torn ``wal_reset`` used to
    # restart LSNs below the checkpoint, making the following recovery
    # silently skip everything this incarnation acknowledged.
    recovered.touch("probe_t")
    probe_epoch = recovered.epoch("probe_t")
    manager.close()

    # Differential parity: recovered state must be *some* prefix of the
    # twin's history, no shorter than the acked prefix and at most one
    # op beyond it (durable-but-unacked).
    twin = Catalog()
    for op in ops[:acked]:
        apply_op(twin, op)
    candidates = [acked]
    if crashed and acked < len(ops):
        candidates.append(acked + 1)
    matched_k = None
    for k in candidates:
        if k > acked:
            apply_op(twin, ops[k - 1])
        if catalog_state(twin) == got:
            matched_k = k
            break
    if matched_k is None:
        raise AssertionError(
            f"recovered state matches no legal prefix "
            f"(acked={acked}, stage={stage}, dir={directory}): "
            f"got epochs {got['epochs']!r}"
        )
    if report.generation <= writer_generation:
        raise AssertionError(
            f"generation did not advance across recovery "
            f"({writer_generation} -> {report.generation}, stage={stage})"
        )

    # Second incarnation: everything the recovered incarnation held —
    # including the freshly acknowledged probe op — must come back on
    # the next restart, and the generation must advance again.
    second = Catalog()
    second_manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    second_report = second_manager.attach(second)
    second_manager.close()
    second_state = catalog_state(second)
    expected_epochs = dict(got["epochs"])
    expected_epochs["probe_t"] = probe_epoch
    if (
        second_state["tables"] != got["tables"]
        or second_state["epochs"] != expected_epochs
    ):
        raise AssertionError(
            f"second restart lost acknowledged state "
            f"(stage={stage}, dir={directory}): expected epochs "
            f"{expected_epochs!r}, got {second_state['epochs']!r}"
        )
    if second_report.generation <= report.generation:
        raise AssertionError(
            f"generation did not advance across second recovery "
            f"({report.generation} -> {second_report.generation}, "
            f"stage={stage})"
        )
    return CrashVerdict(
        fired=crashed,
        stage=stage,
        acked=acked,
        matched_k=matched_k,
        generation=report.generation,
        report=report,
        crashed=crashed,
    )


# ----------------------------------------------------------------------
# In-process writer (SimulatedCrash)
# ----------------------------------------------------------------------


def run_inprocess_crash(
    base_dir: Union[str, Path],
    seed: int,
    *,
    n_ops: int = 24,
    checkpoint_threshold: int = 1024,
) -> CrashVerdict:
    """One seeded crash/recover/verify round, in-process.

    Builds the workload, arms a random durability fault
    (``action="raise"``), runs the writer until
    :class:`~repro.errors.SimulatedCrash` lands (or the workload
    completes if the chosen point is never reached), then recovers and
    audits.  Raises ``AssertionError`` on any invariant violation.
    """
    rng = random.Random(seed ^ 0x5EED)
    ops = build_workload(seed, n_ops)
    stage, at, cut = random_crash_spec(rng, n_ops)
    directory = Path(base_dir) / f"crash_{seed}"

    catalog = Catalog()
    manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    manager.attach(catalog)
    writer_generation = manager.generation

    injector = faults.FaultInjector().durability_crash(
        stage, at=at, cut=cut, action="raise"
    )
    acked = 0
    crashed = False
    try:
        with faults.inject(injector):
            for op in ops:
                apply_op(catalog, op)
                acked += 1
    except SimulatedCrash:
        crashed = True
    finally:
        # Like the dead process: no checkpoint, no graceful close.
        manager.abandon()

    return _verify_recovery(
        directory,
        ops,
        acked,
        writer_generation=writer_generation,
        crashed=crashed,
        stage=stage if crashed else None,
        checkpoint_threshold=checkpoint_threshold,
    )


# ----------------------------------------------------------------------
# Subprocess writer (real SIGKILL)
# ----------------------------------------------------------------------


def _subprocess_writer(
    directory: str,
    ack_path: str,
    seed: int,
    n_ops: int,
    stage: str,
    at: int,
    cut: Optional[int],
    checkpoint_threshold: int,
) -> None:
    """Child body: apply the workload, acking each op through an fsync'd
    file, with a ``kill`` durability fault armed.  Never returns
    normally when the fault fires — SIGKILL lands inside the WAL or
    checkpoint syscall path, exactly where a real crash would."""
    ops = build_workload(seed, n_ops)
    catalog = Catalog()
    manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    manager.attach(catalog)
    injector = faults.FaultInjector().durability_crash(
        stage, at=at, cut=cut, action="kill"
    )
    ack = open(ack_path, "a", buffering=1)
    with faults.inject(injector):
        for index, op in enumerate(ops):
            apply_op(catalog, op)
            # The commit acknowledgement a client would see: written and
            # fsync'd only after the op (and its WAL fsync) returned.
            ack.write(f"{index + 1}\n")
            ack.flush()
            os.fsync(ack.fileno())
    ack.close()
    manager.close()


def _read_acked(ack_path: Path) -> int:
    """Highest op count with a *complete* ack line (partial tail from a
    kill mid-write is ignored — conservative, like a torn client ack)."""
    try:
        data = ack_path.read_bytes()
    except FileNotFoundError:
        return 0
    acked = 0
    for line in data.split(b"\n")[:-1]:
        try:
            acked = max(acked, int(line))
        except ValueError:
            break
    return acked


def run_subprocess_crash(
    base_dir: Union[str, Path],
    seed: int,
    *,
    n_ops: int = 24,
    checkpoint_threshold: int = 1024,
    timeout_s: float = 30.0,
) -> CrashVerdict:
    """One seeded crash round with a real SIGKILL'd writer subprocess."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    rng = random.Random(seed ^ 0x1A11)
    ops = build_workload(seed, n_ops)
    stage, at, cut = random_crash_spec(rng, n_ops)
    directory = Path(base_dir) / f"kill_{seed}"
    directory.mkdir(parents=True, exist_ok=True)
    ack_path = directory / "acks"

    proc = ctx.Process(
        target=_subprocess_writer,
        args=(
            str(directory), str(ack_path), seed, n_ops,
            stage, at, cut, checkpoint_threshold,
        ),
    )
    proc.start()
    proc.join(timeout_s)
    if proc.is_alive():  # pragma: no cover - hung writer
        proc.terminate()
        proc.join(5.0)
        raise AssertionError(f"writer subprocess hung (seed={seed})")
    crashed = proc.exitcode != 0  # -SIGKILL when the fault fired

    acked = _read_acked(ack_path)
    return _verify_recovery(
        directory,
        ops,
        acked,
        writer_generation=1,  # the child's attach produced generation 1
        crashed=crashed,
        stage=stage if crashed else None,
        checkpoint_threshold=checkpoint_threshold,
    )
