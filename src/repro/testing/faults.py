"""Deterministic fault injection for the resilience test suite.

The production wrappers carry disarmed hooks (``FAULTS.armed`` attribute
loads); this module supplies the armed side.  A :class:`FaultInjector`
holds an explicit list of fault specs — *which* UDF, *which* row, *how
many times* — so tests inject exactly the failures they assert on, with
no randomness:

``udf_exception``
    Raise from inside a UDF invocation (per-row in batch wrappers,
    per-call on tuple-at-a-time and sqlite bridges).  ``scope`` selects
    fused traces only (``"fused"``), interpreted execution only
    (``"interp"``), or both (``"any"``); the default ``"fused"`` models a
    poisoned trace whose constituent UDFs are healthy, so row-level
    reinterpretation and query-level de-optimization both recover.
``boundary_error``
    Raise during a C -> Python boundary conversion (models a corrupt
    serialized payload, e.g. ``json.loads`` on mangled bytes).
``channel``
    Make the out-of-process pickle channel misbehave: ``"timeout"``,
    ``"corrupt"`` (mangled blob), or ``"drop"`` (transfer error).
``worker_crash`` / ``worker_hang`` / ``worker_oom``
    Sabotage a process-isolated UDF worker with *real* failure modes —
    the spec is shipped to the worker with the batch and executed there:
    ``worker_crash`` SIGKILLs the worker mid-batch, ``worker_hang``
    sleeps past the batch's deadline slack (the supervisor must kill
    it), and ``worker_oom`` allocates past the worker's ``RLIMIT_AS``
    cap.  These are consulted by
    :meth:`repro.resilience.workers.WorkerPool` per dispatch via the
    ``worker_fault`` hook.

:func:`inject` arms :data:`repro.resilience.runtime.FAULTS` for the
duration of a ``with`` block; :func:`poison_traces` swaps cached fused
traces for versions that raise, modelling a stale/corrupt trace cache.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from ..resilience import runtime
from ..udf.definition import UdfDefinition, UdfKind

__all__ = [
    "InjectedFault",
    "PoisonedTraceError",
    "FaultInjector",
    "DURABILITY_STAGES",
    "REPLICATION_STAGES",
    "inject",
    "poison_traces",
]


class InjectedFault(RuntimeError):
    """The exception raised by injected UDF/boundary faults.

    Derives from :class:`RuntimeError` so it sits inside the concrete
    ``UDF_INVOCATION_ERRORS`` set the narrowed handlers catch — an
    injected fault must travel exactly the path a real user-code error
    would.
    """


class PoisonedTraceError(InjectedFault):
    """Raised by a poisoned (deliberately corrupted) fused trace."""


class _RowFault:
    __slots__ = ("udf", "row", "every", "remaining", "scope", "exc", "calls")

    def __init__(self, udf, row, every, times, scope, exc):
        self.udf = udf.lower()
        self.row = row
        self.every = every
        self.remaining = times
        self.scope = scope
        self.exc = exc
        #: Matching invocations seen so far — the surrogate row index for
        #: call sites that have no batch position (sqlite bridge,
        #: tuple-at-a-time execution).
        self.calls = 0


class _BoundaryFault:
    __slots__ = ("sql_type", "remaining")

    def __init__(self, sql_type, times):
        self.sql_type = sql_type
        self.remaining = times


class _ChannelFault:
    __slots__ = ("mode", "remaining")

    def __init__(self, mode, times):
        self.mode = mode
        self.remaining = times


class _DurabilityFault:
    __slots__ = ("stage", "at", "cut", "action", "fired")

    def __init__(self, stage, at, cut, action):
        self.stage = stage
        self.at = at
        self.cut = cut
        self.action = action
        self.fired = False


class _WorkerFault:
    __slots__ = ("udf", "mode", "remaining", "seconds", "alloc_bytes")

    def __init__(self, udf, mode, times, seconds=None, alloc_bytes=None):
        self.udf = udf.lower() if udf is not None else None
        self.mode = mode
        self.remaining = times
        self.seconds = seconds
        self.alloc_bytes = alloc_bytes


class FaultInjector:
    """A deterministic set of fault specs plus the hooks that fire them."""

    def __init__(self):
        self._row_faults: List[_RowFault] = []
        self._boundary_faults: List[_BoundaryFault] = []
        self._channel_faults: List[_ChannelFault] = []
        self._worker_faults: List[_WorkerFault] = []
        self._durability_faults: List[_DurabilityFault] = []
        #: Per-stage counters of durability fault points reached.
        self.durability_counts: dict = {}
        #: Total faults fired (all kinds).
        self.fired = 0
        #: ``(kind, detail)`` tuples, in firing order.
        self.log: List[Tuple[str, str]] = []

    # -- spec builders -------------------------------------------------

    def udf_exception(
        self,
        udf: str,
        *,
        row: Optional[int] = None,
        every: Optional[int] = None,
        times: int = 1,
        scope: str = "fused",
        exc: Optional[BaseException] = None,
    ) -> "FaultInjector":
        """Raise from ``udf`` on matching invocations.

        ``row`` pins the fault to one batch position; ``every`` fires on
        every N-th matching invocation; with neither, every matching
        invocation fires until ``times`` is exhausted.  ``scope`` is
        ``"fused"`` (default), ``"interp"``, or ``"any"``.
        """
        if scope not in ("fused", "interp", "any"):
            raise ValueError(f"unknown fault scope {scope!r}")
        self._row_faults.append(
            _RowFault(udf, row, every, times, scope, exc)
        )
        return self

    def boundary_error(
        self, sql_type: Any = None, *, times: int = 1
    ) -> "FaultInjector":
        """Raise during C -> Python conversion of ``sql_type`` values."""
        self._boundary_faults.append(_BoundaryFault(sql_type, times))
        return self

    def channel(self, mode: str, *, times: int = 1) -> "FaultInjector":
        """Make the process channel fail: timeout | corrupt | drop."""
        if mode not in ("timeout", "corrupt", "drop"):
            raise ValueError(f"unknown channel fault mode {mode!r}")
        self._channel_faults.append(_ChannelFault(mode, times))
        return self

    def worker_crash(
        self, udf: Optional[str] = None, *, times: int = 1
    ) -> "FaultInjector":
        """SIGKILL the worker mid-batch on matching dispatches.

        ``udf`` restricts the fault to batches of one UDF (matched
        against the fused chain too); ``None`` matches any batch.
        """
        self._worker_faults.append(_WorkerFault(udf, "crash", times))
        return self

    def worker_hang(
        self,
        udf: Optional[str] = None,
        *,
        seconds: float = 60.0,
        times: int = 1,
    ) -> "FaultInjector":
        """Make the worker sleep ``seconds`` mid-batch (a wedged batch
        that the supervisor must kill at the deadline slack)."""
        self._worker_faults.append(
            _WorkerFault(udf, "hang", times, seconds=seconds)
        )
        return self

    def worker_oom(
        self,
        udf: Optional[str] = None,
        *,
        alloc_bytes: int = 1 << 34,
        times: int = 1,
    ) -> "FaultInjector":
        """Make the worker allocate past its ``RLIMIT_AS`` memory cap."""
        self._worker_faults.append(
            _WorkerFault(udf, "oom", times, alloc_bytes=alloc_bytes)
        )
        return self

    #: Durability fault stages, in write-path order.  ``wal_append``
    #: supports a byte ``cut`` (torn frame); ``wal_fsync`` models a
    #: crash before the fsync returns (a short/lost fsync: the frame may
    #: be complete on disk but was never acknowledged); the checkpoint
    #: stages bracket the atomic-install protocol (mid temp-file write,
    #: before ``os.replace``, and after replace but before the WAL is
    #: reset); ``wal_reset`` lands inside the post-checkpoint log reset
    #: between the truncate and the new header (``cut`` tears the
    #: header itself), the window that loses the log's ``base_lsn``.
    DURABILITY_STAGES = (
        "wal_append",
        "wal_fsync",
        "checkpoint_write",
        "checkpoint_replace",
        "checkpoint_reset",
        "wal_reset",
    )

    #: Replication fault stages.  Kept separate from DURABILITY_STAGES —
    #: the crash harness samples stages with ``rng.choice`` over that
    #: tuple, and extending it would silently shift every seeded draw in
    #: existing tests.  ``repl_send`` lands in the primary's sender loop
    #: mid-frame (``cut`` tears the wire bytes); ``repl_handshake``
    #: brackets the HELLO/WELCOME exchange; ``repl_promote`` lands inside
    #: promotion after the listener closes but before the bumped fencing
    #: term is durable; ``repl_install`` lands inside the standby's
    #: shipped-checkpoint install after the spool file is created.
    REPLICATION_STAGES = (
        "repl_send",
        "repl_handshake",
        "repl_promote",
        "repl_install",
    )

    def durability_crash(
        self,
        stage: str,
        *,
        at: int = 0,
        cut: Optional[int] = None,
        action: str = "raise",
    ) -> "FaultInjector":
        """Crash the process at a durability fault point.

        ``stage`` is one of :data:`DURABILITY_STAGES`; ``at`` selects the
        n-th (0-based) time that stage is reached; ``cut`` (where the
        stage supports it) writes only the first ``cut`` bytes of the
        frame/file first — a torn write.  ``action`` is ``"raise"``
        (raise :class:`~repro.errors.SimulatedCrash`, for the in-process
        harness) or ``"kill"`` (``SIGKILL`` the calling process, for the
        subprocess harness — a real mid-write death).
        """
        if (
            stage not in self.DURABILITY_STAGES
            and stage not in self.REPLICATION_STAGES
        ):
            raise ValueError(f"unknown durability stage {stage!r}")
        if action not in ("raise", "kill"):
            raise ValueError(f"unknown crash action {action!r}")
        self._durability_faults.append(_DurabilityFault(stage, at, cut, action))
        return self

    # -- hooks (called from generated wrappers via FAULTS) -------------

    def fire_row(
        self, names: Sequence[str], idx: Optional[int], context: str
    ) -> None:
        """Hook run before each UDF invocation; raises to inject."""
        lowered = None
        for fault in self._row_faults:
            if fault.remaining <= 0:
                continue
            if fault.scope != "any" and fault.scope != context:
                continue
            if lowered is None:
                lowered = [n.lower() for n in names]
            if fault.udf not in lowered:
                continue
            position = idx if idx is not None else fault.calls
            fault.calls += 1
            if fault.row is not None and position != fault.row:
                continue
            if fault.every is not None and position % fault.every != 0:
                continue
            fault.remaining -= 1
            self.fired += 1
            detail = f"{fault.udf}@{position}/{context}"
            self.log.append(("udf", detail))
            if fault.exc is not None:
                raise fault.exc
            raise InjectedFault(f"injected UDF fault: {detail}")

    def fire_boundary(self, sql_type: Any) -> None:
        """Hook run on each C -> Python conversion; raises to inject."""
        for fault in self._boundary_faults:
            if fault.remaining <= 0:
                continue
            if fault.sql_type is not None and fault.sql_type is not sql_type:
                continue
            fault.remaining -= 1
            self.fired += 1
            self.log.append(("boundary", str(sql_type)))
            raise InjectedFault(
                f"injected boundary fault converting {sql_type}"
            )

    def channel_fault(self) -> Optional[str]:
        """Hook consulted per channel transfer attempt; returns a mode."""
        for fault in self._channel_faults:
            if fault.remaining <= 0:
                continue
            fault.remaining -= 1
            self.fired += 1
            self.log.append(("channel", fault.mode))
            return fault.mode
        return None

    def worker_fault(self, names: Sequence[str]) -> Optional[dict]:
        """Hook consulted by the worker pool per batch dispatch.

        Returns the sabotage spec shipped to (and executed inside) the
        worker process, or ``None`` when no fault matches.
        """
        lowered = None
        for fault in self._worker_faults:
            if fault.remaining <= 0:
                continue
            if fault.udf is not None:
                if lowered is None:
                    lowered = [n.lower() for n in names]
                if fault.udf not in lowered:
                    continue
            fault.remaining -= 1
            self.fired += 1
            self.log.append(("worker", f"{fault.mode}:{fault.udf or '*'}"))
            spec = {"mode": fault.mode}
            if fault.seconds is not None:
                spec["seconds"] = fault.seconds
            if fault.alloc_bytes is not None:
                spec["bytes"] = fault.alloc_bytes
            return spec
        return None

    def durability_fault(self, stage: str) -> Optional[dict]:
        """Hook consulted by the WAL/checkpoint writers per fault point.

        Returns the crash spec (``{"stage", "cut", "action"}``) when an
        armed fault matches this occurrence of ``stage``, else ``None``.
        The caller performs the torn write itself (it owns the file) and
        then executes the action — raising
        :class:`~repro.errors.SimulatedCrash` or SIGKILLing itself.
        """
        count = self.durability_counts.get(stage, 0)
        self.durability_counts[stage] = count + 1
        for fault in self._durability_faults:
            if fault.fired or fault.stage != stage or fault.at != count:
                continue
            fault.fired = True
            self.fired += 1
            self.log.append(("durability", f"{stage}@{count}"))
            return {"stage": stage, "cut": fault.cut, "action": fault.action}
        return None


#: Module-level alias for the durability crash stages.
DURABILITY_STAGES = FaultInjector.DURABILITY_STAGES

#: Module-level alias for the replication crash stages.
REPLICATION_STAGES = FaultInjector.REPLICATION_STAGES


@contextlib.contextmanager
def inject(injector: Optional[FaultInjector] = None):
    """Arm ``FAULTS`` with ``injector`` for the duration of the block."""
    injector = injector if injector is not None else FaultInjector()
    runtime.FAULTS.arm(injector)
    try:
        yield injector
    finally:
        runtime.FAULTS.disarm()


def _poison_definition(definition: UdfDefinition) -> UdfDefinition:
    """A copy of ``definition`` whose every entry point raises."""
    name = definition.name

    def poisoned(*args, **kwargs):
        raise PoisonedTraceError(f"poisoned trace {name!r}")

    if definition.kind is UdfKind.AGGREGATE:
        class PoisonedAggregate:
            def step(self, *args):
                raise PoisonedTraceError(f"poisoned trace {name!r}")

            def final(self):
                raise PoisonedTraceError(f"poisoned trace {name!r}")

        return dataclasses.replace(definition, func=PoisonedAggregate)

    replacements = {"func": poisoned}
    if definition.scalar_batch_func is not None:
        replacements["scalar_batch_func"] = poisoned
    if definition.expand_batch_func is not None:
        replacements["expand_batch_func"] = poisoned
    if definition.lineage_func is not None:
        replacements["lineage_func"] = poisoned
    return dataclasses.replace(definition, **replacements)


def poison_traces(
    qfusor: Any, names: Optional[Iterable[str]] = None
) -> List[str]:
    """Corrupt cached fused traces so their next execution raises.

    Models a stale or corrupt trace cache: every cached entry (or just
    those in ``names``) is replaced by a version raising
    :class:`PoisonedTraceError`, and any live engine registration under
    the same name is re-registered poisoned.  Returns the poisoned
    fused-UDF names.  The de-optimization guard must invalidate these
    entries and recover through the unfused path.
    """
    wanted = {n.lower() for n in names} if names is not None else None
    poisoned_names = []
    for key, fused in qfusor.cache.entries():
        name = fused.definition.name
        if wanted is not None and name not in wanted:
            continue
        poisoned = _poison_definition(fused.definition)
        qfusor.cache.replace(
            key, dataclasses.replace(fused, definition=poisoned)
        )
        if name in qfusor.adapter.registry:
            qfusor.adapter.register_udf(poisoned, replace=True)
        poisoned_names.append(name)
    return poisoned_names
