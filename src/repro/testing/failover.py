"""Failover chaos harness: kill the primary, promote, audit everything.

Extends the crash-consistency harness (:mod:`repro.testing.crash`) from
one node to a replicated pair.  Each round runs the same deterministic
seeded workload against a primary that streams its WAL to a live
standby, kills the primary at a randomized fault point — any of the six
durability stages *or* the replication stages (``repl_send`` torn at an
arbitrary wire byte, ``repl_handshake``, ``repl_install`` on the
standby, ``repl_promote`` inside promotion itself) — then promotes the
standby and audits the promoted state against an uncrashed twin:

* **Prefix consistency (zero corruption / zero resurrection)** — the
  promoted catalog must equal the twin at ``ops[:k]`` for some ``k``
  with ``k <= acked + 1``: nothing the client never submitted, nothing
  torn, nothing resurrected.  Because ops map 1:1 onto WAL records
  (the generation record is LSN 1, op *i* is LSN *i+1*), ``k`` is also
  checked **exactly** against the standby's flushed LSN — the lag
  accounting cannot drift from the truth.
* **Zero acked loss (sync mode)** — when the primary ran in sync-ack
  mode and never degraded (no ``repl.degraded`` marker / event),
  ``k >= acked``: every acknowledged write survives the failover.
* **Fencing** — after promotion the old primary is revived and pointed
  back at the cluster: its handshake must be REJECTed, its manager must
  raise :class:`~repro.errors.NodeFencedError` on the next write, and a
  *second* revival must arrive pre-fenced from the persisted
  ``fenced_by`` meta without needing a connection at all.
* **Post-failover durability** — a probe write acknowledged by the
  promoted node survives its next restart, and the generation advances
  across both recoveries (pre-failover cache entries are unreachable).

Two writer modes, as in the crash harness: in-process
(:class:`~repro.errors.SimulatedCrash`, cheap enough for hundreds of
rounds) and a forked subprocess writer the fault point SIGKILLs
mid-syscall while the standby keeps serving in the parent.
"""

from __future__ import annotations

import os
import random
import time
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from ..errors import NodeFencedError, ReplicationError, SimulatedCrash
from ..storage.catalog import Catalog
from ..storage.durability import DurabilityManager
from ..storage.replication import (
    DEGRADE_MARKER_NAME,
    ReplicationPrimary,
    ReplicationStandby,
)
from . import faults
from .crash import apply_op, build_workload, catalog_state

__all__ = [
    "FailoverVerdict",
    "random_failover_spec",
    "run_inprocess_failover",
    "run_subprocess_failover",
]

#: Stages a *primary-side* writer can die at (the subprocess harness
#: kills the child, which hosts the primary).
PRIMARY_STAGES = faults.DURABILITY_STAGES + ("repl_send", "repl_handshake")

#: All stages the in-process harness can exercise (standby-side install
#: and the promotion window included).
ALL_STAGES = faults.DURABILITY_STAGES + faults.REPLICATION_STAGES


class FailoverVerdict:
    """Outcome of one kill/promote/verify round."""

    __slots__ = (
        "fired", "stage", "acked", "matched_k", "flushed", "sync",
        "degraded", "term", "generation", "fence_checked",
    )

    def __init__(self, **kw: Any):
        for slot in self.__slots__:
            setattr(self, slot, kw.get(slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<failover fired={self.fired} stage={self.stage} "
            f"acked={self.acked} k={self.matched_k} flushed={self.flushed} "
            f"sync={self.sync} degraded={self.degraded} term={self.term}>"
        )


def random_failover_spec(
    rng: random.Random, n_ops: int, stages: Tuple[str, ...]
) -> Tuple[str, int, Optional[int]]:
    """Pick a (stage, occurrence, cut) fault point for one round."""
    stage = rng.choice(stages)
    if stage in ("wal_append", "wal_fsync", "repl_send"):
        at = rng.randrange(max(1, n_ops))
    elif stage in ("repl_handshake", "repl_install", "repl_promote"):
        at = 0
    else:
        at = rng.randrange(3)
    cut: Optional[int] = None
    if (
        stage in ("wal_append", "checkpoint_write", "wal_reset", "repl_send")
        and rng.random() < 0.7
    ):
        cut = rng.randrange(0, 200)
    return stage, at, cut


def _wait_for(predicate, timeout_s: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.005)
    return predicate()


# ----------------------------------------------------------------------
# Shared verification
# ----------------------------------------------------------------------


def _verify_failover(
    round_dir: Path,
    primary_dir: Path,
    promoted_dir: Path,
    ops: List[Tuple],
    acked: int,
    flushed: int,
    *,
    strict_sync: bool,
    sync: bool,
    degraded: bool,
    stage: Optional[str],
    fired: bool,
    term: int,
    checkpoint_threshold: int,
    fence_check: bool = True,
) -> FailoverVerdict:
    """Open the promoted directory as a primary and audit everything."""
    recovered = Catalog()
    manager = DurabilityManager(
        promoted_dir, checkpoint_threshold=checkpoint_threshold
    )
    report = manager.attach(recovered)
    got = catalog_state(recovered)

    # Differential parity against the uncrashed twin: the promoted
    # state must be *some* exact prefix of the twin's history...
    twin = Catalog()
    states = [catalog_state(twin)]
    for op in ops:
        apply_op(twin, op)
        states.append(catalog_state(twin))
    matched_k = None
    for k, state in enumerate(states):
        if state == got:
            matched_k = k
            break
    if matched_k is None:
        raise AssertionError(
            f"promoted state matches no prefix of the twin "
            f"(acked={acked}, flushed={flushed}, stage={stage}, "
            f"dir={promoted_dir}): got epochs {got['epochs']!r}"
        )
    # ... no longer than one op past the acked prefix (zero
    # resurrection: the standby only ever receives durable frames, and
    # the primary's durable tail leads its acked tail by at most one) ...
    if matched_k > acked + 1:
        raise AssertionError(
            f"promoted state resurrects unacknowledged ops: "
            f"k={matched_k} > acked+1={acked + 1} (stage={stage})"
        )
    # ... and exactly as long as the standby's flushed LSN claims (op i
    # is LSN i+1; the generation record is LSN 1).
    expected_k = max(0, flushed - 1)
    if matched_k != expected_k:
        raise AssertionError(
            f"standby lag accounting drifted from reality: promoted "
            f"state is prefix {matched_k} but flushed LSN {flushed} "
            f"promises prefix {expected_k} (stage={stage})"
        )
    if strict_sync and matched_k < acked:
        raise AssertionError(
            f"sync-ack mode lost an acknowledged write: k={matched_k} < "
            f"acked={acked} with no degrade event (stage={stage})"
        )
    # Generation fencing across failover: the gen record the primary
    # logged at LSN 1 reached the standby iff flushed >= 1, and the
    # promotion recovery must advance past it.
    floor = 2 if flushed >= 1 else 1
    if report.generation < floor:
        raise AssertionError(
            f"promoted generation {report.generation} below floor "
            f"{floor} (flushed={flushed}, stage={stage})"
        )

    # Probe write: acknowledged by the promoted node, must survive the
    # next restart (WAL LSN monotonicity across the promotion path).
    recovered.touch("probe_t")
    probe_epoch = recovered.epoch("probe_t")

    fence_checked = False
    if fence_check:
        _verify_fencing(round_dir, primary_dir, manager, term)
        fence_checked = True
    manager.close()

    second = Catalog()
    second_manager = DurabilityManager(
        promoted_dir, checkpoint_threshold=checkpoint_threshold
    )
    second_report = second_manager.attach(second)
    second_manager.close()
    second_state = catalog_state(second)
    expected_epochs = dict(got["epochs"])
    expected_epochs["probe_t"] = probe_epoch
    if (
        second_state["tables"] != got["tables"]
        or second_state["epochs"] != expected_epochs
    ):
        raise AssertionError(
            f"restart after failover lost acknowledged state "
            f"(stage={stage}): expected epochs {expected_epochs!r}, got "
            f"{second_state['epochs']!r}"
        )
    if second_report.generation <= report.generation:
        raise AssertionError(
            f"generation did not advance across post-failover restart "
            f"({report.generation} -> {second_report.generation})"
        )
    return FailoverVerdict(
        fired=fired,
        stage=stage,
        acked=acked,
        matched_k=matched_k,
        flushed=flushed,
        sync=sync,
        degraded=degraded,
        term=term,
        generation=report.generation,
        fence_checked=fence_checked,
    )


def _verify_fencing(
    round_dir: Path,
    primary_dir: Path,
    promoted_manager: DurabilityManager,
    term: int,
) -> None:
    """The old primary must be structurally incapable of rejoining.

    Chain the promoted node to a fresh standby (which durably adopts
    the promoted term), then revive the old primary against that
    standby: the handshake must REJECT it, its next write must raise
    :class:`NodeFencedError`, and a second revival must come up
    pre-fenced straight from its persisted meta.
    """
    # min_term closes a harness-only race: without it the old primary
    # could land its handshake before the promoted node's and be
    # accepted at term 0 as the standby's first lineage.
    s2 = ReplicationStandby(round_dir / "s2", min_term=term)
    new_primary = ReplicationPrimary(promoted_manager, s2.address)
    promoted_manager.replication = new_primary
    try:
        if not _wait_for(lambda: s2.term >= term and any(
            t["connected"] for t in new_primary.status()["targets"].values()
        )):
            raise AssertionError(
                f"promoted node never connected to its new standby "
                f"(term={term}, s2.term={s2.term})"
            )

        old_catalog = Catalog()
        old_manager = DurabilityManager(primary_dir)
        old_manager.attach(old_catalog)
        old_primary = ReplicationPrimary(old_manager, s2.address)
        old_manager.replication = old_primary
        try:
            if not _wait_for(lambda: old_primary.fenced_by is not None):
                raise AssertionError(
                    "revived old primary was never fenced on reconnect"
                )
            if old_primary.fenced_by < term:
                raise AssertionError(
                    f"old primary fenced by term {old_primary.fenced_by} "
                    f"< promoted term {term}"
                )
            try:
                apply_op(old_catalog, ("touch", "orders"))
            except NodeFencedError:
                pass
            else:
                raise AssertionError(
                    "fenced old primary acknowledged a write"
                )
        finally:
            old_manager.abandon()

        # Second revival: the fence must hold with no network at all —
        # the persisted fenced_by meta re-poisons the manager before a
        # single write can land.
        old2_catalog = Catalog()
        old2_manager = DurabilityManager(primary_dir)
        old2_manager.attach(old2_catalog)
        old2_primary = ReplicationPrimary(old2_manager, s2.address)
        old2_manager.replication = old2_primary
        try:
            if old2_primary.fenced_by is None:
                raise AssertionError(
                    "second revival forgot its persisted fence"
                )
            try:
                apply_op(old2_catalog, ("touch", "orders"))
            except NodeFencedError:
                pass
            else:
                raise AssertionError(
                    "persistently fenced primary acknowledged a write"
                )
        finally:
            old2_manager.abandon()
    finally:
        promoted_manager.replication = None
        new_primary.close()
        s2.close()


# ----------------------------------------------------------------------
# In-process rounds (SimulatedCrash)
# ----------------------------------------------------------------------


def run_inprocess_failover(
    base_dir: Union[str, Path],
    seed: int,
    *,
    n_ops: int = 24,
    checkpoint_threshold: int = 1024,
    fence_check: bool = True,
) -> FailoverVerdict:
    """One seeded kill/promote/verify round, in-process."""
    rng = random.Random(seed ^ 0xFA11)
    ops = build_workload(seed, n_ops)
    stage, at, cut = random_failover_spec(rng, n_ops, ALL_STAGES)
    sync = rng.random() < 0.5
    round_dir = Path(base_dir) / f"failover_{seed}"
    primary_dir = round_dir / "primary"
    standby_dir = round_dir / "standby"

    standby = ReplicationStandby(
        standby_dir, checkpoint_threshold=checkpoint_threshold
    )
    catalog = Catalog()
    manager = DurabilityManager(
        primary_dir, checkpoint_threshold=checkpoint_threshold
    )
    manager.attach(catalog)
    primary = ReplicationPrimary(
        manager, standby.address, sync=sync, ack_timeout_s=0.25
    )
    manager.replication = primary

    injector = faults.FaultInjector().durability_crash(
        stage, at=at, cut=cut, action="raise"
    )
    acked = 0
    fired = False
    term = 0
    with faults.inject(injector):
        try:
            for op in ops:
                apply_op(catalog, op)
                acked += 1
        except SimulatedCrash:
            fired = True

        def restart_standby(keep_port: bool = True) -> "ReplicationStandby":
            # Same port, so the primary's reconnect loop finds the new
            # incarnation and the stream resumes from its sealed tail.
            # Lingering accepted sockets can hold the port briefly;
            # retry, then fall back to an ephemeral port (the primary
            # simply never reconnects in that case).  Once the primary
            # is dead the port no longer matters.
            if not keep_port:
                return ReplicationStandby(
                    standby_dir, checkpoint_threshold=checkpoint_threshold
                )
            port = standby.address[1]
            deadline = time.monotonic() + 2.0
            while True:
                try:
                    return ReplicationStandby(
                        standby_dir, port=port,
                        checkpoint_threshold=checkpoint_threshold,
                    )
                except OSError:
                    if time.monotonic() >= deadline:
                        return ReplicationStandby(
                            standby_dir,
                            checkpoint_threshold=checkpoint_threshold,
                        )
                    time.sleep(0.05)

        # A fault may have killed the *standby* instead (the stages are
        # shared: its replica manager runs the same WAL code).  Restart
        # it — recovery seals the torn tail and sweeps spool files —
        # and let the live primary re-stream to it.
        if standby.crashed:
            standby = restart_standby()
        # Half the rounds promote at whatever lag exists right now; the
        # other half let the stream drain first, covering both the
        # laggy and the caught-up promotion paths.
        if rng.random() < 0.5 and not fired:
            tail = manager.wal.last_lsn if manager.wal is not None else 0
            _wait_for(lambda: standby.flushed_lsn >= tail, timeout_s=1.0)
        degraded = primary.degraded
        manager.abandon()  # takes primary (the sender fleet) down with it

        # Promotion under an armed fault: repl_promote dies after the
        # listener closes but before the bumped term is durable — the
        # next incarnation must come back unpromoted and retry cleanly.
        # The standby can also simulated-crash in a serve thread right
        # up to the promotion point, so retry around that too.
        term = -1
        for _ in range(3):
            try:
                term = standby.promote()
                break
            except SimulatedCrash:
                fired = True
                standby.abandon()
                standby = restart_standby(keep_port=False)
            except ReplicationError:
                # promote() refuses a closed standby: a serve thread
                # simulated-crashed it after our aliveness check.
                _wait_for(lambda: standby.crashed, timeout_s=1.0)
                if standby.crashed:
                    standby = restart_standby(keep_port=False)
                else:
                    raise
        if term < 0:
            raise AssertionError("standby promotion did not converge")
    # Faults on the replication stages fire in the sender / serve
    # threads, not the writer: the injector's counter sees them all.
    fired = fired or injector.fired > 0
    flushed = standby.flushed_lsn

    return _verify_failover(
        round_dir,
        primary_dir,
        standby_dir,
        ops,
        acked,
        flushed,
        strict_sync=sync and not degraded,
        sync=sync,
        degraded=degraded,
        stage=stage if fired else None,
        fired=fired,
        term=term,
        checkpoint_threshold=checkpoint_threshold,
        fence_check=fence_check,
    )


# ----------------------------------------------------------------------
# Subprocess rounds (real SIGKILL; standby survives in the parent)
# ----------------------------------------------------------------------


def _subprocess_primary(
    directory: str,
    ack_path: str,
    seed: int,
    n_ops: int,
    stage: str,
    at: int,
    cut: Optional[int],
    checkpoint_threshold: int,
    standby_host: str,
    standby_port: int,
    sync: bool,
) -> None:
    """Child body: a replicating primary with a ``kill`` fault armed.

    Acks each op through an fsync'd file exactly the way a client would
    observe commits — in sync mode the ack therefore happens only after
    the standby flush (or an explicit degrade)."""
    ops = build_workload(seed, n_ops)
    catalog = Catalog()
    manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    manager.attach(catalog)
    primary = ReplicationPrimary(
        manager, (standby_host, standby_port), sync=sync, ack_timeout_s=0.25
    )
    manager.replication = primary
    injector = faults.FaultInjector().durability_crash(
        stage, at=at, cut=cut, action="kill"
    )
    ack = open(ack_path, "a", buffering=1)
    with faults.inject(injector):
        for index, op in enumerate(ops):
            apply_op(catalog, op)
            ack.write(f"{index + 1}\n")
            ack.flush()
            os.fsync(ack.fileno())
    ack.close()
    manager.close()


def run_subprocess_failover(
    base_dir: Union[str, Path],
    seed: int,
    *,
    n_ops: int = 24,
    checkpoint_threshold: int = 1024,
    timeout_s: float = 30.0,
    fence_check: bool = True,
) -> FailoverVerdict:
    """One seeded round with a real SIGKILL'd primary subprocess."""
    import multiprocessing

    from .crash import _read_acked

    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    rng = random.Random(seed ^ 0xF0F0)
    ops = build_workload(seed, n_ops)
    stage, at, cut = random_failover_spec(rng, n_ops, PRIMARY_STAGES)
    sync = rng.random() < 0.5
    round_dir = Path(base_dir) / f"failover_kill_{seed}"
    primary_dir = round_dir / "primary"
    standby_dir = round_dir / "standby"
    primary_dir.mkdir(parents=True, exist_ok=True)
    ack_path = primary_dir / "acks"

    standby = ReplicationStandby(
        standby_dir, checkpoint_threshold=checkpoint_threshold
    )
    proc = ctx.Process(
        target=_subprocess_primary,
        args=(
            str(primary_dir), str(ack_path), seed, n_ops, stage, at, cut,
            checkpoint_threshold, standby.address[0], standby.address[1],
            sync,
        ),
    )
    proc.start()
    proc.join(timeout_s)
    if proc.is_alive():  # pragma: no cover - hung writer
        proc.terminate()
        proc.join(5.0)
        standby.close()
        raise AssertionError(f"primary subprocess hung (seed={seed})")
    fired = proc.exitcode != 0  # -SIGKILL when the fault fired

    acked = _read_acked(ack_path)
    # Everything the dead primary put on the wire is in the kernel
    # buffer; give the standby's serve thread a moment to drain it
    # (wait until the flushed LSN stops moving).
    deadline = time.monotonic() + 2.0
    last = standby.flushed_lsn
    settled_at = time.monotonic()
    while time.monotonic() < deadline:
        time.sleep(0.02)
        current = standby.flushed_lsn
        if current != last:
            last = current
            settled_at = time.monotonic()
        elif time.monotonic() - settled_at > 0.15:
            break
    degraded = (primary_dir / DEGRADE_MARKER_NAME).exists()
    term = standby.promote()
    flushed = standby.flushed_lsn

    return _verify_failover(
        round_dir,
        primary_dir,
        standby_dir,
        ops,
        acked,
        flushed,
        strict_sync=sync and not degraded,
        sync=sync,
        degraded=degraded,
        stage=stage if fired else None,
        fired=fired,
        term=term,
        checkpoint_threshold=checkpoint_threshold,
        fence_check=fence_check,
    )
