"""Fusible-section discovery — Algorithm 2 of the paper (section 5.2.1).

Dynamic programming over the topologically sorted DFG: for every operator
``v`` we track the cheapest fusible section ending at ``v``, extending
predecessors' sections when the pair is fusible or reorderable (cases
F1-F3).  A final reverse-topological sweep selects maximal,
non-overlapping sections ready for code generation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import QFusorConfig
from .cost import INFINITE, CostModel
from .dfg import DataFlowGraph, Operator
from .relops import is_loop_fusible, is_offloadable

__all__ = ["FusibleSection", "discover_sections", "fusible_or_reorderable"]

#: Cap on permutation search (factorial blow-up guard; the paper notes
#: memoization/bounded DP/pruning keep the algorithm practical).
_MAX_PERMUTE = 5

#: Extension slack: a section may grow through a (near) cost-neutral
#: operator — e.g. a cheap comparison between a UDF and a filter — so the
#: greedy DP can reach gains further downstream.  Without it, any
#: relational operator that costs marginally more in the UDF environment
#: would cut the section short of the materialization savings behind it.
_EXTENSION_SLACK = 0.10


@dataclass
class FusibleSection:
    """A maximal run of operators chosen for fusion."""

    ops: List[Operator]
    cost: float

    @property
    def op_ids(self) -> Set[int]:
        return {op.op_id for op in self.ops}

    @property
    def udf_count(self) -> int:
        return sum(1 for op in self.ops if op.is_udf)

    @property
    def kinds(self) -> List[str]:
        return [op.kind for op in self.ops]

    def __repr__(self) -> str:
        chain = " -> ".join(f"{op.name}" for op in self.ops)
        return f"FusibleSection({chain})"


def _op_fusible(op: Operator, config: QFusorConfig) -> bool:
    """Can this operator participate in a fusible section at all?"""
    if op.is_udf:
        if not config.fuse_udfs:
            return False
        if op.udf is not None and op.udf.materializes_input and op.kind == "table_udf":
            # Blocking table UDFs may terminate a section but we keep it
            # simple: they do not fuse (Table 2 "materializes input").
            return False
        return True
    if op.kind in ("builtin_agg", "groupby"):
        return config.offload_aggregations and is_offloadable(op.name)
    if op.kind in (
        "filter", "case", "arith", "compare", "between", "isnull", "in",
        "like", "logical", "cast", "distinct", "builtin_scalar",
    ):
        return config.offload_relational
    return False


def fusible_or_reorderable(
    graph: DataFlowGraph, u: Operator, v: Operator, config: QFusorConfig
) -> bool:
    """The FusibleOrReorderable check of Algorithm 2.

    ``u -> v`` is fusible when both ends can join a section (F1/F2);
    with reordering enabled, a pair with *disjoint field sets* may also
    be considered for permutation (F3).
    """
    if _op_fusible(u, config) and _op_fusible(v, config):
        return True
    if config.reorder and not (u.inputs & v.inputs) and not (
        u.outputs & v.inputs
    ):
        return _op_fusible(u, config) or _op_fusible(v, config)
    return False


def _is_valid_section(ops: Sequence[Operator], graph: DataFlowGraph) -> bool:
    """IsValidSection: consecutive fusible operators forming a chain with
    at most one aggregate (Table 2 constraint)."""
    if not ops:
        return False
    aggregates = sum(
        1 for op in ops if op.kind in ("aggregate_udf", "builtin_agg")
    )
    if aggregates > 1:
        return False
    # Each op after the first must depend on some earlier op in the
    # section (data dependencies preserved by the Bernstein edges).
    seen: Set[int] = {ops[0].op_id}
    for op in ops[1:]:
        preds = set(graph.predecessors(op.op_id))
        if not (preds & seen):
            return False
        seen.add(op.op_id)
    return True


def _optim_permutation(
    ops: List[Operator], graph: DataFlowGraph, cost: CostModel,
    config: QFusorConfig,
) -> List[Operator]:
    """OptimPermutation: search valid reorderings (F3) for the cheapest
    section layout.  Reordering is conservative — only operators that do
    not touch the same fields may swap (section 5.1.1)."""
    if not config.reorder or len(ops) > _MAX_PERMUTE:
        return ops
    best = ops
    best_cost = cost.section_cost(ops)
    for permutation in itertools.permutations(ops):
        candidate = list(permutation)
        if candidate == ops:
            continue
        if not _permutation_legal(candidate, ops):
            continue
        if not _is_valid_section(candidate, graph):
            continue
        candidate_cost = cost.section_cost(candidate)
        if candidate_cost < best_cost:
            best = candidate
            best_cost = candidate_cost
    return best


def _permutation_legal(
    candidate: Sequence[Operator], original: Sequence[Operator]
) -> bool:
    """A permutation is legal when every swapped pair operates on
    disjoint fields (the conservative F3 condition)."""
    position = {op.op_id: i for i, op in enumerate(candidate)}
    for i, earlier in enumerate(original):
        for later in original[i + 1:]:
            if position[earlier.op_id] > position[later.op_id]:
                # The pair was swapped: require disjoint field sets.
                touched_earlier = earlier.inputs | earlier.outputs
                touched_later = later.inputs | later.outputs
                if touched_earlier & touched_later:
                    return False
    return True


def discover_sections(
    graph: DataFlowGraph,
    cost_model: CostModel,
    config: Optional[QFusorConfig] = None,
) -> List[FusibleSection]:
    """Algorithm 2: DP over the DFG, then maximal non-overlapping
    section selection."""
    config = config or QFusorConfig()
    order = graph.topological_order()
    dp: Dict[int, float] = {op.op_id: INFINITE for op in graph.operators}
    section: Dict[int, List[Operator]] = {op.op_id: [] for op in graph.operators}

    for op_id in order:  # Update
        v = graph.operator(op_id)
        single_cost = cost_model.operator_cost(v)
        if _op_fusible(v, config) and single_cost < dp[op_id]:
            dp[op_id] = single_cost
            section[op_id] = [v]
        for pred_id in graph.predecessors(op_id):
            u = graph.operator(pred_id)
            if not fusible_or_reorderable(graph, u, v, config):
                continue
            candidate = section[pred_id] + [v]
            if not candidate[:-1]:
                continue
            if not _is_valid_section(candidate, graph):
                continue
            candidate_cost = cost_model.section_cost(candidate)
            # Potential gain (Algorithm 2, line 12's comment): fusing v
            # onto u's section must beat running that section and v
            # separately — and beat any other option already found for v.
            unfused_cost = (dp[pred_id] + single_cost) * (1 + _EXTENSION_SLACK)
            if candidate_cost < unfused_cost and (
                dp[op_id] == single_cost or candidate_cost < dp[op_id]
            ):
                dp[op_id] = candidate_cost
                section[op_id] = _optim_permutation(
                    candidate, graph, cost_model, config
                )

    visited: Set[int] = set()  # Section selection
    sections: List[FusibleSection] = []
    for op_id in reversed(order):
        ops = section[op_id]
        ids = {op.op_id for op in ops}
        if not ops or (ids & visited):
            continue
        if sum(1 for op in ops if op.is_udf) == 0:
            continue  # fusing pure relational runs buys nothing
        sections.append(FusibleSection(list(ops), dp[op_id]))
        visited |= ids
    return sections
