"""The QFusor client (paper sections 3.2 and 5).

``QFusor`` attaches to an engine adapter as a thin client layer.  For a
query containing UDFs it runs the four-step pipeline:

1. **Discover fusible operators** — probe the engine's optimizer (the
   EXPLAIN round trip), build the DFG over the plan (Algorithm 1);
2. **Fusion optimization** — discover fusible sections with the
   DP of Algorithm 2 under the hybrid cost/heuristic model;
3. **JIT code generation** — generate and compile the fused UDFs,
   registering them through the ordinary registration mechanism;
4. **Query rewrite** — dispatch the rewritten plan directly to the
   execution engine (path 2) or resubmit rewritten SQL (path 1, used for
   engines without plan dispatch and for DML).

Queries without UDFs pass through untouched.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

from ..cache import CacheManager
from ..cache.plan_cache import PlanEntry
from ..engine.database import Database
from ..engine.explain import explain_text
from ..engine.plan import Field
from ..engine.planner import PlannedQuery
from ..errors import CircuitOpenError, QueryTimeoutError, ReproError
from ..jit.cache import TraceCache
from ..jit.codegen import FusedUdf
from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from ..resilience import (
    AdmissionGate, DeoptEvent, FusionBlocklist, QueryContext,
    ResilienceContext, RowEvent, activate,
)
from ..resilience import governor
from ..sql import ast_nodes as ast
from ..sql.parser import parse
from ..sql.printer import to_sql
from ..sql.translate import TranslateEvent, TranslationResult, Untranslatable
from ..storage.table import Table
from ..udf.definition import UdfKind
from .config import QFusorConfig
from .cost import CostModel
from .dfg import build_dfg
from .heuristics import Heuristics
from .rewrite import rewrite_statement
from .sections import FusibleSection, discover_sections
from .transform import FusionOutcome, PlanFuser

__all__ = ["QFusor", "QFusorReport"]


@dataclass
class QFusorReport:
    """What QFusor did for one query (feeds Figure 4 bottom)."""

    sql: str
    is_udf_query: bool = False
    sections: List[FusibleSection] = field(default_factory=list)
    fused: List[FusedUdf] = field(default_factory=list)
    #: "fus-optim": discovery + fusion optimization seconds.
    fus_optim_seconds: float = 0.0
    #: "code-gen": fused-UDF and query/plan generation seconds.
    codegen_seconds: float = 0.0
    cache_hits: int = 0
    plan_before: str = ""
    plan_after: str = ""
    rewritten_sql: Optional[str] = None
    #: Query-level de-optimizations (fused -> unfused re-execution).
    deopt_events: List[DeoptEvent] = field(default_factory=list)
    #: Row-level exceptions recovered inside fused batch wrappers.
    row_events: List[RowEvent] = field(default_factory=list)
    #: Out-of-process channel incidents observed during this query.
    channel_events: List[Any] = field(default_factory=list)
    #: Worker-pool supervision incidents (crashes, hang kills, OOM
    #: kills, restarts, quarantines) observed during this query.
    worker_events: List[Any] = field(default_factory=list)
    #: UDF names whose open circuit breakers forced the unfused path.
    breaker_bypass: List[str] = field(default_factory=list)
    #: Cache interactions (:class:`repro.cache.manager.CacheEvent`):
    #: plan/result hits and stores, single-flight outcomes.
    cache_events: List[Any] = field(default_factory=list)
    #: UDF names compiled away by Froid-style translation (the query ran
    #: with no UDF boundary at all).
    translated: List[str] = field(default_factory=list)
    #: Translation decisions (:class:`repro.sql.translate.TranslateEvent`):
    #: hit / unsupported / deopt, with reasons.
    translate_events: List[TranslateEvent] = field(default_factory=list)

    @property
    def fused_names(self) -> List[str]:
        return [f.definition.name for f in self.fused]

    def translate_outcome(self) -> Optional[str]:
        """The last translation decision for this query, or None."""
        return self.translate_events[-1].outcome if self.translate_events else None

    @property
    def deopted(self) -> bool:
        return bool(self.deopt_events)

    def cache_outcome(self, tier: str) -> Optional[str]:
        """The last recorded action for one cache tier, or None."""
        for event in reversed(self.cache_events):
            if event.tier == tier:
                return event.action
        return None

    @property
    def recovered_rows(self) -> int:
        return len(self.row_events)

    @property
    def total_overhead_seconds(self) -> float:
        return self.fus_optim_seconds + self.codegen_seconds


class QFusor:
    """The pluggable UDF-query optimizer client."""

    def __init__(
        self,
        engine: Any,
        config: Optional[QFusorConfig] = None,
    ):
        from ..engines.base import EngineAdapter
        from ..engines.minidb import MiniDbAdapter

        if isinstance(engine, Database):
            engine = MiniDbAdapter(engine)
        if not isinstance(engine, EngineAdapter):
            raise ReproError(
                f"QFusor needs an EngineAdapter or Database, got {type(engine)}"
            )
        self.adapter = engine
        self.config = config or QFusorConfig()
        self.cost_model = CostModel(engine.registry.stats)
        self.heuristics = Heuristics(
            self.config, self.cost_model,
            FusionBlocklist(self.config.deopt_cooldown),
        )
        self.cache = TraceCache(
            self.config.trace_cache,
            capacity=self.config.trace_cache_capacity,
        )
        # Propagate channel hardening knobs to adapters with a resilient
        # out-of-process channel (the row-store deployment).
        channel = getattr(engine, "channel", None)
        if channel is not None and hasattr(channel, "configure"):
            channel.configure(
                timeout=self.config.channel_timeout,
                retries=self.config.channel_retries,
                backoff=self.config.channel_backoff,
            )
        # Propagate worker-pool supervision knobs to adapters running
        # UDFs in supervised worker processes (isolation="process").
        workers = getattr(engine, "workers", None)
        if workers is not None and hasattr(workers, "configure"):
            workers.configure(
                max_batch_retries=self.config.worker_max_batch_retries,
                quarantine_policy=self.config.worker_quarantine_policy,
                max_restarts=self.config.worker_max_restarts,
                memory_limit_mb=self.config.worker_memory_limit_mb,
                batch_timeout_s=self.config.worker_batch_timeout_s,
            )
        # Propagate columnar-plane knobs (typed buffers, morsel
        # parallelism, buffer transport).  All default to None so a plain
        # QFusorConfig never flips an adapter on or off the data plane.
        self._configure_columnar(engine)
        self.fuser = PlanFuser(
            engine.registry, engine.resolver, self.cost_model,
            self.heuristics, self.config, self.cache,
        )
        # Multi-tier caching subsystem (plan / UDF memo / result); all
        # tiers default off, so `caches.active` is the only cost the
        # uncached path pays.
        self.caches = CacheManager(self.adapter, self.config)
        # Fused UDFs must reach the engine itself (the sqlite3 adapter,
        # for example, registers through create_function).
        self.fuser.register_hook = engine.register_udf
        # Per-query report state is thread-local (and mirrored onto the
        # governed QueryContext) so concurrent queries sharing one
        # QFusor can never read each other's reports.
        self._reports = threading.local()
        self._last_context: Optional[QueryContext] = None
        # Per-UDF circuit breakers live on the registry (shared with any
        # other client of the same adapter); thresholds come from config.
        engine.registry.breakers.configure(
            enabled=self.config.breaker_enabled,
            window=self.config.breaker_window,
            min_calls=self.config.breaker_min_calls,
            failure_threshold=self.config.breaker_failure_threshold,
            latency_threshold_s=self.config.breaker_latency_threshold_s,
            cooldown_s=self.config.breaker_cooldown_s,
        )
        # Bounded admission control (None: unlimited concurrency).
        self.admission: Optional[AdmissionGate] = None
        if self.config.max_concurrent_queries is not None:
            self.admission = AdmissionGate(
                self.config.max_concurrent_queries,
                queue_timeout_s=self.config.admission_timeout_s,
            )
        # Froid-style UDF-to-SQL translation, tried ahead of fusion.
        # Built only when enabled so the disabled path pays exactly one
        # ``is None`` check per UDF query and makes zero translator calls.
        self.translator = None
        if self.config.translate_enabled:
            from ..sql.translate import UdfTranslator

            self.translator = UdfTranslator(
                engine.registry,
                getattr(engine, "translate_dialect", "python"),
                max_inline_depth=self.config.translate_max_inline_depth,
                self_check=self.config.translate_self_check,
            )

    def _configure_columnar(self, engine) -> None:
        """Apply the config's columnar-plane knobs to the adapter.

        ``morsel_enabled=True`` attaches (and enables) a policy on
        adapters that support one; ``False`` disables an attached policy;
        ``None`` leaves the adapter exactly as constructed.  Size/thread/
        transport knobs apply to whichever policy is (or becomes) live.
        """
        cfg = self.config
        knobs = (cfg.morsel_enabled, cfg.morsel_size, cfg.morsel_threads,
                 cfg.buffer_transport)
        if all(k is None for k in knobs):
            return
        enable = getattr(engine, "enable_columnar", None)
        if enable is None:
            return
        if cfg.morsel_enabled is False:
            disable = getattr(engine, "disable_columnar", None)
            if disable is not None and getattr(engine, "columnar", None) \
                    is not None:
                disable()
            return
        policy = getattr(engine, "columnar", None)
        if policy is None and cfg.morsel_enabled is not True:
            # Only size/thread/transport knobs set but no plane attached:
            # nothing to configure without flipping the adapter's mode.
            return
        enable(
            enabled=cfg.morsel_enabled,
            morsel_size=cfg.morsel_size,
            threads=cfg.morsel_threads,
            buffer_transport=cfg.buffer_transport,
        )

    # ------------------------------------------------------------------
    # Per-query report state
    # ------------------------------------------------------------------

    @property
    def last_report(self) -> Optional[QFusorReport]:
        """The report of the last query run *by this thread*.

        When a governed :class:`QueryContext` is active, its own report
        is authoritative — the context travels with the query, so even
        helper threads resolve the right one.  Otherwise the value falls
        back to this thread's last pipeline run.  Either way, concurrent
        queries never observe a neighbour's report.
        """
        ctx = governor.current()
        if ctx is not None and ctx.report is not None:
            return ctx.report
        return getattr(self._reports, "value", None)

    @last_report.setter
    def last_report(self, report: Optional[QFusorReport]) -> None:
        self._reports.value = report
        ctx = governor.current()
        if ctx is not None:
            ctx.report = report

    # ------------------------------------------------------------------
    # Registration passthrough
    # ------------------------------------------------------------------

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        self.adapter.register_table(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        self.adapter.register_udf(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def register_udfs(self, udfs: Sequence[Any], *, replace: bool = False) -> None:
        for udf in udfs:
            self.adapter.register_udf(udf, replace=replace)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(
        self,
        sql: Union[str, ast.Statement],
        *,
        context: Optional[QueryContext] = None,
        timeout_s: Optional[float] = None,
    ) -> Table:
        """Execute a statement through the QFusor pipeline.

        ``context`` (or the ``timeout_s`` shortcut / the config-level
        governance knobs) puts the whole pipeline — optimization, fused
        dispatch, and any de-optimized retry — under one governed scope:
        deadline, cancellation token, row budget, and the runaway-UDF
        watchdog all apply end to end.
        """
        with contextlib.ExitStack() as stack:
            trace = None
            if OBS.tracing:
                trace = stack.enter_context(
                    obs_tracer.maybe_trace("query", adapter=self.adapter.name)
                )
            sp = obs_tracer.span_start("parse") if OBS.tracing else None
            statement = parse(sql) if isinstance(sql, str) else sql
            sql_text = sql if isinstance(sql, str) else to_sql(statement)
            if sp is not None:
                obs_tracer.span_end(sp)
            if trace is not None:
                trace.root.attrs.setdefault("sql", sql_text)
            ctx = self._resolve_context(context, timeout_s, sql_text)
            if self.admission is not None:
                stack.enter_context(self.admission.admit())
            if ctx is not None:
                stack.enter_context(governor.activate(ctx))
            return self._execute_pipeline(statement, sql_text)

    def cancel(self, reason: str = "cancelled") -> bool:
        """Cancel the most recently started governed execution, if any."""
        ctx = self._last_context
        if ctx is None:
            return False
        ctx.cancel(reason)
        return True

    def _resolve_context(
        self,
        context: Optional[QueryContext],
        timeout_s: Optional[float],
        sql_text: str,
    ) -> Optional[QueryContext]:
        if context is None:
            effective_timeout = (
                timeout_s if timeout_s is not None
                else self.config.query_timeout_s
            )
            if (
                effective_timeout is None
                and self.config.udf_batch_timeout_s is None
                and self.config.row_budget is None
            ):
                self._last_context = None
                return None  # ungoverned legacy path
            context = QueryContext(
                timeout_s=effective_timeout,
                udf_batch_timeout_s=self.config.udf_batch_timeout_s,
                row_budget=self.config.row_budget,
            )
        elif timeout_s is not None and context.timeout_s is None:
            context.timeout_s = timeout_s
        if context.query is None:
            context.query = sql_text
        self._last_context = context
        return context

    def _execute_pipeline(
        self, statement: ast.Statement, sql_text: str
    ) -> Table:
        report = QFusorReport(sql=sql_text)
        self.last_report = report
        # Advance the deopt blocklist's per-query cooldown clock.
        self.heuristics.blocklist.tick()

        caches = self.caches
        if not caches.active:
            return self._run_pipeline(statement, report)
        if not isinstance(statement, ast.Select):
            # DML/DDL: run normally, then retire dependent result-cache
            # entries by bumping the written tables' snapshot epochs.
            try:
                return self._run_pipeline(statement, report)
            finally:
                caches.note_write(statement)
        rkey = caches.result_key(
            statement, sql_text, self._referenced_udfs(statement)
        )
        if rkey is None:
            return self._run_pipeline(statement, report)

        def execute():
            result = self._run_pipeline(statement, report)
            return result, CacheManager.storeable(report)

        result, outcome = caches.result_get_or_execute(rkey, report, execute)
        if outcome in ("hit", "shared"):
            # The pipeline never ran for this caller; reflect what kind
            # of query the cached answer stands for.
            report.is_udf_query = rkey.is_udf_query
        return result

    def _run_pipeline(
        self, statement: ast.Statement, report: QFusorReport
    ) -> Table:
        if not self.config.enabled or not self._involves_udfs(statement):
            try:
                return self.adapter.execute_sql(statement)
            finally:
                self._drain_runtime_events(report)
        report.is_udf_query = True

        # Circuit-breaker gate: a query referencing an open-breaker UDF
        # either fails fast or bypasses fusion entirely (policy).
        if not self._admit_breakers(statement, report):
            return self.adapter.execute_sql(statement)

        if isinstance(statement, ast.Select):
            return self._execute_select(statement, report)
        if self.translator is not None:
            result = self._try_translate(
                statement, report, None,
                fallback=lambda: self._run_dml_fused(statement, report),
            )
            if result is not None:
                return result
        return self._run_dml_fused(statement, report)

    def _run_dml_fused(
        self, statement: ast.Statement, report: QFusorReport
    ) -> Table:
        # DML with UDFs: rewrite expressions at the SQL level (4.2.5).
        sp = obs_tracer.span_start("fuse") if OBS.tracing else None
        start = time.perf_counter()
        rewritten = rewrite_statement(
            statement, self._fuse_expression_hook(report), self._catalog()
        )
        report.codegen_seconds = time.perf_counter() - start
        report.rewritten_sql = to_sql(rewritten)
        if sp is not None:
            obs_tracer.span_end(sp, fused=len(report.fused))
        return self._dispatch_sql(statement, rewritten, report)

    def _admit_breakers(
        self, statement: ast.Statement, report: QFusorReport
    ) -> bool:
        """Apply the per-UDF circuit-breaker policy before any work.

        Returns False when the query must run unfused (open breaker +
        ``unfused`` policy); raises :class:`CircuitOpenError` under the
        ``fail_fast`` policy.  Returning True admits the normal pipeline
        (a half-open breaker's single probe comes through here too).
        """
        board = self.adapter.registry.breakers
        if not board.enabled:
            return True
        refused = board.refusing(self._referenced_udfs(statement))
        if not refused:
            return True
        if self.config.breaker_policy == "fail_fast":
            first = refused[0]
            raise CircuitOpenError(
                first, retry_in_s=board.breaker(first).retry_in_s()
            )
        report.breaker_bypass = list(refused)
        if OBS.metrics:
            METRICS.counter("repro_breaker_bypass_total").inc()
        if OBS.tracing:
            obs_tracer.add_event("breaker_bypass", udfs=",".join(refused))
        return False

    def _referenced_udfs(self, statement: ast.Statement) -> List[str]:
        registry = self.adapter.registry
        names: List[str] = []
        for expr in _statement_expressions(statement):
            for node in ast.walk_expr(expr):
                if (
                    isinstance(node, ast.FunctionCall)
                    and node.name in registry
                    and node.name.lower() not in names
                ):
                    names.append(node.name.lower())
        return names

    def _execute_select(
        self, statement: ast.Select, report: QFusorReport
    ) -> Table:
        pkey = (
            self.caches.plan_key(statement, self._referenced_udfs(statement))
            if self.caches.active else None
        )
        if pkey is not None:
            entry = self.caches.plan_lookup(pkey, report)
            if entry is not None:
                return self._dispatch_cached_plan(statement, entry, report, pkey)

        # Froid-style translation first: when every UDF reference
        # compiles to SQL, the UDF boundary disappears and fusion has
        # nothing left to do.  Unsupported shapes fall through to the
        # fusion/JIT ladder below with an `unsupported` event.
        if self.translator is not None:
            result = self._try_translate(
                statement, report, pkey,
                fallback=lambda: self._execute_select_fused(
                    statement, report, pkey
                ),
            )
            if result is not None:
                return result
        return self._execute_select_fused(statement, report, pkey)

    def _execute_select_fused(
        self,
        statement: ast.Select,
        report: QFusorReport,
        pkey: Optional[tuple],
    ) -> Table:
        if not self.adapter.supports_plan_dispatch:
            # Path 1: SQL rewriting only (expression-level fusion).
            sp = obs_tracer.span_start("fuse") if OBS.tracing else None
            start = time.perf_counter()
            rewritten = rewrite_statement(
                statement, self._fuse_expression_hook(report), self._catalog()
            )
            report.codegen_seconds = time.perf_counter() - start
            report.rewritten_sql = to_sql(rewritten)
            if sp is not None:
                obs_tracer.span_end(
                    sp, fused=len(report.fused), cache_hits=report.cache_hits
                )
            if pkey is not None:
                self.caches.plan_store(
                    pkey,
                    PlanEntry(
                        kind="sql",
                        rewritten=rewritten,
                        fused=list(report.fused),
                    ),
                    report,
                )
            return self._dispatch_sql(statement, rewritten, report)

        # EXPLAIN probe: get the engine's optimized plan.
        sp = obs_tracer.span_start("plan") if OBS.tracing else None
        planned = self.adapter.explain_plan(statement)
        report.plan_before = explain_text(planned)
        if sp is not None:
            obs_tracer.span_end(sp)

        # Steps 1-3 under one "fuse" span: discovery + fusion
        # optimization + JIT code generation (the jit_compile span nests
        # inside, opened by TraceCache on a compile miss).
        sp = obs_tracer.span_start("fuse") if OBS.tracing else None
        start = time.perf_counter()
        graph = build_dfg(planned, self.adapter.resolver)
        report.sections = discover_sections(graph, self.cost_model, self.config)
        report.fus_optim_seconds = time.perf_counter() - start

        outcome = self.fuser.fuse_query(planned)
        report.codegen_seconds = outcome.codegen_seconds
        report.fused = outcome.fused
        report.cache_hits = outcome.cache_hits
        report.plan_after = explain_text(outcome.planned)
        if sp is not None:
            obs_tracer.span_end(
                sp,
                sections=len(report.sections),
                fused=len(report.fused),
                cache_hits=report.cache_hits,
            )

        if pkey is not None:
            self.caches.plan_store(
                pkey,
                PlanEntry(
                    kind="plan",
                    original=planned,
                    fused_planned=outcome.planned,
                    fused=list(outcome.fused),
                    sections=list(report.sections),
                    plan_before=report.plan_before,
                    plan_after=report.plan_after,
                ),
                report,
            )

        # Step 4: dispatch the rewritten plan (path 2), guarded.
        return self._dispatch_plan(planned, outcome, report)

    def _dispatch_cached_plan(
        self,
        statement: ast.Select,
        entry: PlanEntry,
        report: QFusorReport,
        pkey: Optional[tuple] = None,
    ) -> Table:
        """Dispatch a plan-cache hit: parse/probe/plan/fuse all skipped."""
        report.fused = list(entry.fused)
        if entry.kind == "translated":
            names = list(entry.translated)
            report.translated = names
            report.rewritten_sql = to_sql(entry.rewritten)
            report.translate_events.append(
                TranslateEvent(tuple(names), "hit", "plan-cache")
            )
            if OBS.metrics:
                METRICS.counter("repro_translate_total", outcome="hit").inc()
            return self._dispatch_translated(
                entry.rewritten, names, report, pkey=pkey,
                fallback=lambda: self._execute_select_fused(
                    statement, report, None
                ),
            )
        if entry.kind == "sql":
            report.rewritten_sql = to_sql(entry.rewritten)
            return self._dispatch_sql(statement, entry.rewritten, report)
        report.sections = list(entry.sections)
        report.plan_before = entry.plan_before
        report.plan_after = entry.plan_after
        outcome = FusionOutcome(entry.fused_planned)
        outcome.fused = list(entry.fused)
        return self._dispatch_plan(entry.original, outcome, report)

    # ------------------------------------------------------------------
    # Froid-style UDF-to-SQL translation (ahead of fusion)
    # ------------------------------------------------------------------

    def _try_translate(
        self,
        statement: ast.Statement,
        report: QFusorReport,
        pkey: Optional[tuple],
        *,
        fallback,
    ) -> Optional[Table]:
        """Compile every UDF reference away, or return None to fuse.

        All-or-nothing per statement: a single untranslatable reference
        keeps the whole query on the fusion ladder (mixing translated
        and boundary-crossing UDFs in one statement buys nothing — the
        boundary is still paid).
        """
        sp = obs_tracer.span_start("translate") if OBS.tracing else None
        try:
            outcome = self.translator.translate_statement(
                statement, self._catalog()
            )
        except Exception as exc:
            # A translator defect must degrade to fusion, never fail the
            # query: translation is an optimization, not a dependency.
            outcome = TranslationResult()
            outcome.failures[""] = Untranslatable(
                f"translator error: {type(exc).__name__}: {exc}"
            )
        if outcome.statement is None:
            reason = "; ".join(
                f"{f.udf}: {f.reason}" if f.udf else f.reason
                for f in outcome.failures.values()
            )
            report.translate_events.append(
                TranslateEvent(
                    tuple(sorted(n for n in outcome.failures if n)),
                    "unsupported",
                    reason,
                )
            )
            if OBS.metrics:
                METRICS.counter(
                    "repro_translate_total", outcome="unsupported"
                ).inc()
            if sp is not None:
                obs_tracer.span_end(sp, translated=0)
            return None
        names = sorted(outcome.translated)
        report.translated = list(names)
        report.rewritten_sql = to_sql(outcome.statement)
        report.translate_events.append(TranslateEvent(tuple(names), "hit"))
        if OBS.metrics:
            METRICS.counter("repro_translate_total", outcome="hit").inc()
        if sp is not None:
            obs_tracer.span_end(sp, translated=len(names))
        return self._dispatch_translated(
            outcome.statement, names, report, pkey=pkey, fallback=fallback
        )

    def _dispatch_translated(
        self,
        rewritten: ast.Statement,
        names: List[str],
        report: QFusorReport,
        *,
        pkey: Optional[tuple],
        fallback,
    ) -> Table:
        """Execute the translated statement; on a runtime fault, poison
        the translation and fall back through the fusion ladder."""
        try:
            result = self.adapter.execute_sql(rewritten)
        except QueryTimeoutError:
            # The translated statement has no UDF boundary left to blame;
            # re-running the same work unfused would time out again.
            self._drain_runtime_events(report)
            raise
        except Exception as exc:
            self._drain_runtime_events(report)
            if not self.config.deopt:
                raise
            self._translate_deopt(exc, names, report, pkey)
            return self._reexecute(report, fallback)
        self._drain_runtime_events(report)
        if pkey is not None and not report.deopted:
            # Stored only after a clean dispatch, so a poisoned
            # translation can never be re-served from the plan cache.
            self.caches.plan_store(
                pkey,
                PlanEntry(
                    kind="translated",
                    rewritten=rewritten,
                    translated=list(names),
                ),
                report,
            )
        return result

    def _translate_deopt(
        self,
        exc: BaseException,
        names: List[str],
        report: QFusorReport,
        pkey: Optional[tuple],
    ) -> None:
        """Record a translated-path runtime fault and poison the
        translations so later queries go straight to fusion."""
        reason = f"{type(exc).__name__}: {exc}"
        self.translator.poison(names, reason)
        if pkey is not None:
            self.caches.plan_invalidate(pkey, report)
        report.translated = []
        report.translate_events.append(
            TranslateEvent(tuple(names), "deopt", reason)
        )
        # A DeoptEvent keeps the existing machinery honest: storeable()
        # refuses to cache the degraded run, report.deopted flips, and
        # dashboards counting deopts see translated-path faults too.
        report.deopt_events.append(
            DeoptEvent(udf_names=tuple(names), error=reason)
        )
        if OBS.metrics:
            METRICS.counter("repro_translate_total", outcome="deopt").inc()
            METRICS.counter("repro_deopt_total").inc()
        if OBS.tracing:
            obs_tracer.add_event(
                "translate_deopt", udfs=",".join(names), error=reason
            )

    # ------------------------------------------------------------------
    # Guarded dispatch + de-optimization
    # ------------------------------------------------------------------

    def _dispatch_plan(
        self,
        original: PlannedQuery,
        outcome: FusionOutcome,
        report: QFusorReport,
    ) -> Table:
        """Execute the fused plan; on a runtime fault, de-optimize and
        transparently re-execute the original (unfused) plan."""
        if not outcome.fused:
            return self.adapter.execute_plan(outcome.planned)
        context = ResilienceContext(self.config.row_error_policy)
        try:
            with activate(context):
                result = self.adapter.execute_plan(outcome.planned)
        except QueryTimeoutError as exc:
            self._finish_guarded(report, context)
            if not self._timeout_retry_allowed(exc, report):
                raise
            self._deoptimize(exc, report.fused_names, report)
            return self._reexecute(
                report, lambda: self.adapter.execute_plan(original)
            )
        except Exception as exc:
            self._finish_guarded(report, context)
            if not self.config.deopt:
                raise
            self._deoptimize(exc, report.fused_names, report)
            # The original plan nodes were never mutated by fusion, so
            # re-dispatching them runs the pure per-UDF path.
            return self._reexecute(
                report, lambda: self.adapter.execute_plan(original)
            )
        self._finish_guarded(report, context)
        return result

    def _dispatch_sql(
        self,
        original: ast.Statement,
        rewritten: ast.Statement,
        report: QFusorReport,
    ) -> Table:
        """Path-1 / DML analogue of :meth:`_dispatch_plan`."""
        if not report.fused:
            return self.adapter.execute_sql(rewritten)
        context = ResilienceContext(self.config.row_error_policy)
        try:
            with activate(context):
                result = self.adapter.execute_sql(rewritten)
        except QueryTimeoutError as exc:
            self._finish_guarded(report, context)
            if not self._timeout_retry_allowed(exc, report):
                raise
            self._deoptimize(exc, report.fused_names, report)
            return self._reexecute(
                report, lambda: self.adapter.execute_sql(original)
            )
        except Exception as exc:
            self._finish_guarded(report, context)
            if not self.config.deopt:
                raise
            self._deoptimize(exc, report.fused_names, report)
            return self._reexecute(
                report, lambda: self.adapter.execute_sql(original)
            )
        self._finish_guarded(report, context)
        return result

    def _timeout_retry_allowed(
        self, exc: QueryTimeoutError, report: QFusorReport
    ) -> bool:
        """Whether a fused-path timeout warrants one unfused retry.

        Only when the fused trace is the suspect (a per-batch cap fired
        inside a UDF this query fused), deopt is on, and the query
        deadline still has slack — a whole-query timeout means the time
        is simply gone, so retrying would just time out again.
        """
        if not (self.config.deopt and self.config.timeout_deopt_retry):
            return False
        if exc.udf_name is None or exc.udf_name not in report.fused_names:
            return False
        ctx = governor.current()
        if ctx is not None:
            remaining = ctx.remaining()
            if remaining is not None and remaining <= 0:
                return False
            # Clear the fused attribution so the unfused retry is judged
            # (and annotated) on its own behaviour.
            ctx.timed_out_udf = None
            ctx.timeout_kind = None
        return True

    def _reexecute(self, report: QFusorReport, run) -> Table:
        try:
            return run()
        except Exception:
            # The unfused path fails too: the fault is genuine (a user
            # UDF raising), not a fused-trace artifact.  Propagate.
            if report.deopt_events:
                report.deopt_events[-1].recovered = False
            raise

    def _finish_guarded(
        self, report: QFusorReport, context: ResilienceContext
    ) -> None:
        report.row_events.extend(context.row_events)
        self._drain_runtime_events(report)

    def _drain_runtime_events(self, report: QFusorReport) -> None:
        """Move adapter-side channel/worker incidents into the report."""
        channel = getattr(self.adapter, "channel", None)
        if channel is not None and hasattr(channel, "drain_incidents"):
            report.channel_events.extend(channel.drain_incidents())
        else:
            incidents = getattr(channel, "incidents", None)
            if incidents:
                report.channel_events.extend(incidents)
                incidents.clear()
        workers = getattr(self.adapter, "workers", None)
        if workers is not None:
            report.worker_events.extend(workers.drain_incidents())

    def _deoptimize(
        self,
        exc: BaseException,
        fused_names: Sequence[str],
        report: QFusorReport,
    ) -> None:
        """Invalidate and blocklist the trace(s) behind a runtime fault."""
        # UdfExecutionError and QueryTimeoutError both carry udf_name.
        if getattr(exc, "udf_name", None) in fused_names:
            targets = [exc.udf_name]
        else:
            targets = list(fused_names)
        invalidated = []
        blocked = 0
        for name in targets:
            key = self.cache.key_for(name)
            if key is not None:
                if self.cache.invalidate(key):
                    invalidated.append(name)
                self.heuristics.blocklist.block(key)
                blocked += 1
            try:
                self.adapter.registry.drop(name)
            except Exception:
                pass  # already dropped, or engine-side registration only
        report.deopt_events.append(
            DeoptEvent(
                udf_names=tuple(targets),
                error=repr(exc),
                invalidated=tuple(invalidated),
                blocklisted=blocked,
            )
        )
        if OBS.metrics:
            METRICS.counter("repro_deopt_total").inc()
        if OBS.tracing:
            obs_tracer.add_event(
                "deopt", udfs=",".join(targets), error=type(exc).__name__
            )

    def analyze(self, sql: Union[str, ast.Statement]) -> QFusorReport:
        """Run the pipeline without executing; returns the report."""
        statement = parse(sql) if isinstance(sql, str) else sql
        sql_text = sql if isinstance(sql, str) else to_sql(statement)
        report = QFusorReport(sql=sql_text)
        if not isinstance(statement, ast.Select) or not self._involves_udfs(
            statement
        ):
            return report
        report.is_udf_query = True
        planned = self.adapter.explain_plan(statement)
        report.plan_before = explain_text(planned)
        start = time.perf_counter()
        graph = build_dfg(planned, self.adapter.resolver)
        report.sections = discover_sections(graph, self.cost_model, self.config)
        report.fus_optim_seconds = time.perf_counter() - start
        outcome = self.fuser.fuse_query(planned)
        report.codegen_seconds = outcome.codegen_seconds
        report.fused = outcome.fused
        report.cache_hits = outcome.cache_hits
        report.plan_after = explain_text(outcome.planned)
        self.last_report = report
        return report

    def profile_udfs(
        self,
        table_name: str,
        *,
        sample_rows: int = 256,
        rounds: int = 3,
    ) -> dict:
        """Warm the cost model by profiling registered UDFs on a sample.

        The paper's CherryPick-inspired adaptive profiling (section
        5.2.2): each scalar UDF whose argument types match a column of
        ``table_name`` is executed ``rounds`` times over a ``sample_rows``
        sample; the observations feed the Bayesian posterior that the
        fusion optimizer consults, eliminating cold starts.

        Returns ``{udf_name: bucketed_cost_per_tuple}`` for the UDFs
        profiled.
        """
        from ..udf.definition import UdfKind

        catalog = self._catalog()
        table = catalog.get(table_name)
        size = min(sample_rows, table.num_rows)
        sample = table.slice(0, size)
        profiled = {}
        for registered in self.adapter.registry:
            definition = registered.definition
            if definition.kind is not UdfKind.SCALAR or definition.is_fused:
                continue
            columns = []
            for arg_type in definition.signature.arg_types:
                match = next(
                    (c for c in sample.columns if c.sql_type is arg_type), None
                )
                if match is None:
                    break
                columns.append(match)
            if len(columns) != definition.arity or not columns:
                continue
            try:
                for _ in range(rounds):
                    registered.call_scalar(columns, size)
            except Exception:
                continue  # profiling must never break registration state
            profiled[definition.name] = (
                self.adapter.registry.stats.expected_cost(definition.name)
            )
        return profiled

    def rewrite_sql(self, sql: str) -> str:
        """Path 1: produce the fused SQL text for resubmission."""
        report = QFusorReport(sql=sql)
        statement = parse(sql)
        rewritten = rewrite_statement(
            statement, self._fuse_expression_hook(report), self._catalog()
        )
        self.last_report = report
        return to_sql(rewritten)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _catalog(self):
        catalog = getattr(self.adapter, "catalog", None)
        if catalog is not None:
            return catalog
        database = getattr(self.adapter, "database", None)
        if database is not None:
            return database.catalog
        from ..storage.catalog import Catalog

        return Catalog()

    def _fuse_expression_hook(self, report: QFusorReport):
        """An (expr, fields) -> expr callback for the SQL-rewrite path."""

        def hook(expr: ast.Expr, fields: Sequence[Field]) -> ast.Expr:
            holder = _SchemaHolder(fields)
            outcome = FusionOutcome(None)
            fused = self.fuser._fuse_expr(expr, holder, outcome)
            report.fused.extend(outcome.fused)
            report.cache_hits += outcome.cache_hits
            return fused

        return hook

    def _involves_udfs(self, statement: ast.Statement) -> bool:
        registry = self.adapter.registry
        for expr in _statement_expressions(statement):
            for node in ast.walk_expr(expr):
                if isinstance(node, ast.FunctionCall) and node.name in registry:
                    return True
        for item in _statement_from_items(statement):
            if isinstance(item, ast.TableFunctionRef):
                return True
        return False


class _SchemaHolder:
    """Duck-typed plan node exposing just a schema (for expr fusion)."""

    def __init__(self, fields: Sequence[Field]):
        self.schema = tuple(fields)


def _statement_expressions(statement: ast.Statement):
    if isinstance(statement, ast.Select):
        yield from _select_expressions(statement)
    elif isinstance(statement, ast.Update):
        for _, expr in statement.assignments:
            yield expr
        if statement.where is not None:
            yield statement.where
    elif isinstance(statement, ast.Delete):
        if statement.where is not None:
            yield statement.where
    elif isinstance(statement, ast.Insert):
        for row in statement.values:
            yield from row
        if statement.query is not None:
            yield from _select_expressions(statement.query)
    elif isinstance(statement, ast.CreateTableAs):
        yield from _select_expressions(statement.query)


def _select_expressions(select: ast.Select):
    for _, cte in select.ctes:
        yield from _select_expressions(cte)
    for item in select.items:
        if not isinstance(item.expr, ast.Star):
            yield item.expr
    if select.where is not None:
        yield select.where
    yield from select.group_by
    if select.having is not None:
        yield select.having
    for order in select.order_by:
        yield order.expr
    for item in select.from_items:
        yield from _from_item_expressions(item)
    if select.set_op is not None:
        yield from _select_expressions(select.set_op.right)


def _from_item_expressions(item: ast.FromItem):
    if isinstance(item, ast.SubqueryRef):
        yield from _select_expressions(item.query)
    elif isinstance(item, ast.TableFunctionRef):
        yield item.call
        for query in item.subquery_args:
            yield from _select_expressions(query)
    elif isinstance(item, ast.Join):
        yield from _from_item_expressions(item.left)
        yield from _from_item_expressions(item.right)
        if item.condition is not None:
            yield item.condition


def _statement_from_items(statement: ast.Statement):
    def walk_items(items):
        for item in items:
            yield item
            if isinstance(item, ast.Join):
                yield from walk_items([item.left, item.right])
            elif isinstance(item, ast.SubqueryRef):
                yield from walk_select(item.query)

    def walk_select(select: ast.Select):
        yield from walk_items(select.from_items)
        for _, cte in select.ctes:
            yield from walk_select(cte)
        if select.set_op is not None:
            yield from walk_select(select.set_op.right)

    if isinstance(statement, ast.Select):
        yield from walk_select(statement)
    elif isinstance(statement, ast.CreateTableAs):
        yield from walk_select(statement.query)
    elif isinstance(statement, ast.Insert) and statement.query is not None:
        yield from walk_select(statement.query)
