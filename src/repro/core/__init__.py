"""QFusor — the paper's primary contribution.

A pluggable optimizer that fuses UDF operators with each other and with
relational operators, JIT-compiles the fused pipelines, and rewrites the
query (or plan) to use them:

* :mod:`repro.core.dfg` — data-flow graph construction over query plans
  via Bernstein conditions (Algorithm 1);
* :mod:`repro.core.sections` — fusible-section discovery with dynamic
  programming over the DFG (Algorithm 2, cases F1-F3);
* :mod:`repro.core.cost` — the cost model: wrapper costs, stateful UDF
  statistics, and the F2 offloading inequality;
* :mod:`repro.core.heuristics` — cold-start fusion heuristics;
* :mod:`repro.core.relops` — Table 3: relational operators as fusible
  operators, with their Python offload implementations;
* :mod:`repro.core.compile` — SQL expressions to fused-pipeline specs;
* :mod:`repro.core.transform` — plan-level application of fusion
  decisions (the MAL-style direct plan dispatch, section 5.4 path 2);
* :mod:`repro.core.rewrite` — SQL-text query rewriting (path 1);
* :mod:`repro.core.dialect` — per-engine CREATE FUNCTION / type mapping;
* :mod:`repro.core.qfusor` — the client facade tying it all together.
"""

from .qfusor import QFusor, QFusorReport
from .config import QFusorConfig

__all__ = ["QFusor", "QFusorReport", "QFusorConfig"]
