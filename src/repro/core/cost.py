"""The fusion cost model (paper sections 5.2.2-5.2.3).

Operator cost ``F(v)`` and section cost ``F(S)`` combine:

* the *wrapping cost* — per-tuple data copying/conversion at the UDF
  boundary (:data:`W_IN`, :data:`W_OUT`), which is concrete and
  measurable;
* the *processing cost* of the UDF itself — learned from the stateful
  statistics store (:class:`~repro.udf.state.StatsStore`), bucketed, with
  a Bayesian prior covering the cold start;
* relational operator costs per tuple, both in the engine (``C_r``) and
  offloaded into the UDF environment (``C_ru``).

The F2 inequality (section 5.2.3) decides whether a relational operator
``r`` should run in the UDF environment::

    sum_u |u|*(W_in + W_out*s_u)  -  |u_f|*(W_in + W_out*s_uf)
        >  |r| * (C_ru*s_r - C_r*s_r)

i.e. fuse ``r`` when the boundary savings of fusing the N affected UDFs
exceed the loss of running ``r`` in Python instead of the engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..udf.state import StatsStore
from .dfg import Operator
from .relops import classify, is_offloadable

__all__ = ["CostModel", "CostParameters", "INFINITE"]

INFINITE = math.inf


@dataclass(frozen=True)
class CostParameters:
    """Calibrated per-tuple cost constants (seconds).

    Defaults reflect this substrate: boundary crossings cost on the order
    of a microsecond (encode/decode + list handling), engine-side
    vectorized relational work tens of nanoseconds per tuple, Python-side
    offloaded relational work a few hundred nanoseconds.
    """

    w_in: float = 1.2e-6
    w_out: float = 1.2e-6
    c_engine: Dict[str, float] = None
    c_udf: Dict[str, float] = None

    def __post_init__(self):
        object.__setattr__(self, "c_engine", self.c_engine or {
            "filter": 4e-8, "compare": 4e-8, "arith": 4e-8, "case": 1.5e-7,
            "between": 8e-8, "isnull": 3e-8, "in": 8e-8, "like": 4e-7,
            "logical": 4e-8, "cast": 8e-8, "distinct": 2.5e-7,
            "groupby": 4e-7, "builtin_agg": 6e-8, "builtin_scalar": 1.5e-7,
        })
        object.__setattr__(self, "c_udf", self.c_udf or {
            "filter": 1.5e-7, "compare": 1.5e-7, "arith": 1.5e-7,
            "case": 2.5e-7, "between": 2e-7, "isnull": 1e-7, "in": 2e-7,
            "like": 6e-7, "logical": 1.5e-7, "cast": 2e-7,
            "distinct": 4e-7, "groupby": 4e-7, "builtin_agg": 2e-7,
            "builtin_scalar": 3e-7,
        })


#: Operator kinds that can never join a fusible section (infinite cost).
_UNFUSIBLE_KINDS = frozenset({"join", "sort", "setop", "limit"})


class CostModel:
    """Evaluates F(v), F(S), and the F2 offloading inequality."""

    def __init__(
        self,
        stats: StatsStore,
        parameters: Optional[CostParameters] = None,
        *,
        default_rows: float = 10_000.0,
    ):
        self.stats = stats
        self.parameters = parameters or CostParameters()
        self.default_rows = default_rows

    # ------------------------------------------------------------------
    # Per-operator quantities
    # ------------------------------------------------------------------

    def rows_of(self, op: Operator) -> float:
        node = op.plan_node
        if node is not None and node.est_rows is not None:
            return max(node.est_rows, 1.0)
        return self.default_rows

    def selectivity_of(self, op: Operator) -> float:
        """Output rows per input row."""
        if op.kind == "scalar_udf":
            return 1.0  # known: scalar output size equals input size
        if op.kind == "aggregate_udf" or op.kind == "builtin_agg":
            return 0.0  # known: one value per group
        if op.is_udf:
            return self.stats.selectivity(op.name, default=3.0)
        if op.kind == "filter":
            return 0.33
        if op.kind == "distinct":
            return 0.5
        return 1.0

    def processing_cost_per_tuple(self, op: Operator) -> float:
        if op.is_udf:
            if op.udf is not None and op.udf.cost_hint is not None and not (
                self.stats.known(op.name)
            ):
                return op.udf.cost_hint
            return self.stats.expected_cost(op.name)
        engine_cost = self.parameters.c_engine.get(op.kind)
        if engine_cost is None:
            return INFINITE
        return engine_cost

    def wrapping_cost(self, op: Operator) -> float:
        """Per-execution wrapper cost of running ``op`` in isolation."""
        if not op.is_udf:
            return 0.0
        rows = self.rows_of(op)
        return rows * (
            self.parameters.w_in
            + self.parameters.w_out * max(self.selectivity_of(op), 0.0)
        )

    # ------------------------------------------------------------------
    # F(v) and F(S)
    # ------------------------------------------------------------------

    def operator_cost(self, op: Operator) -> float:
        """F({v}): the cost of executing one operator unfused."""
        if op.kind in _UNFUSIBLE_KINDS:
            return INFINITE
        rows = self.rows_of(op)
        return self.wrapping_cost(op) + rows * self.processing_cost_per_tuple(op)

    def section_cost(self, ops: Sequence[Operator]) -> float:
        """F(S): the cost of executing the section as one fused UDF.

        One wrapper entry/exit for the whole section; interior boundary
        costs disappear; offloaded relational operators run at their
        UDF-environment per-tuple rate.
        """
        if not ops:
            return INFINITE
        if any(op.kind in _UNFUSIBLE_KINDS for op in ops):
            return INFINITE
        rows = max(self.rows_of(op) for op in ops)
        out_selectivity = self.selectivity_of(ops[-1])
        cost = rows * (
            self.parameters.w_in + self.parameters.w_out * out_selectivity
        )
        for op in ops:
            if op.is_udf:
                per_tuple = self.processing_cost_per_tuple(op)
            else:
                per_tuple = self.parameters.c_udf.get(op.kind, INFINITE)
            if per_tuple is INFINITE:
                return INFINITE
            cost += self.rows_of(op) * per_tuple
        return cost

    # ------------------------------------------------------------------
    # The F2 inequality
    # ------------------------------------------------------------------

    def should_offload(
        self,
        rel_op: Operator,
        udf_ops: Sequence[Operator],
        fused_rows: Optional[float] = None,
        fused_selectivity: Optional[float] = None,
        rel_selectivity: Optional[float] = None,
    ) -> bool:
        """Evaluate the F2 inequality for relational operator ``rel_op``.

        ``udf_ops`` is the maximal set of UDF operators affected by the
        relational operator in the examined section.
        """
        if not is_offloadable(rel_op.name) and not is_offloadable(rel_op.kind):
            return False
        w_in, w_out = self.parameters.w_in, self.parameters.w_out

        isolated = sum(
            self.rows_of(u) * (w_in + w_out * self.selectivity_of(u))
            for u in udf_ops
        )
        if fused_rows is None:
            fused_rows = max((self.rows_of(u) for u in udf_ops), default=1.0)
        if fused_selectivity is None:
            fused_selectivity = (
                self.selectivity_of(udf_ops[-1]) if udf_ops else 1.0
            )
        fused = fused_rows * (w_in + w_out * fused_selectivity)
        gain = isolated - fused

        rel_rows = self.rows_of(rel_op)
        if rel_selectivity is None:
            rel_selectivity = self.selectivity_of(rel_op)
        c_udf = self.parameters.c_udf.get(rel_op.kind, INFINITE)
        c_engine = self.parameters.c_engine.get(rel_op.kind, 0.0)
        if c_udf is INFINITE:
            return False
        loss = rel_rows * (c_udf * rel_selectivity - c_engine * rel_selectivity)
        # If the right-hand side is a gain (negative loss), always offload.
        if loss <= 0:
            return True
        return gain > loss
