"""Compile SQL expressions into fused-pipeline stages.

This is the bridge between the query side (AST expressions over plan
schemas) and the JIT side (:class:`~repro.jit.codegen.PipelineSpec`).
UDF calls become :class:`ScalarUdfStage`s; relational scalar operations
(CASE, BETWEEN, comparisons, arithmetic, LIKE, IS NULL) are *offloaded*
as :class:`ExprStage`s — rewritten in Python with SQL NULL semantics
preserved (paper section 5.3.2).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.expressions import FunctionResolver, infer_type
from ..engine.functions import like_to_regex
from ..engine.plan import Field
from ..errors import FusionError
from ..sql import ast_nodes as ast
from ..types import SqlType
from ..udf.definition import UdfKind
from ..jit.codegen import ExprStage, ScalarUdfStage, Stage

__all__ = ["CompiledExpr", "PipelineCompiler", "count_scalar_udfs", "expr_is_fusible"]

#: Builtin scalar functions rendered directly as Python source.
_BUILTIN_RENDER = {
    "upper": "{0}.upper()",
    "length": "len({0})",
    "abs": "abs({0})",
    "trim": "{0}.strip()",
    "ltrim": "{0}.lstrip()",
    "rtrim": "{0}.rstrip()",
    "round": "float(round({0}))",
    "sqrt": "({0}) ** 0.5",
    "replace": "{0}.replace({1}, {2})",
    "instr": "({0}.find({1}) + 1)",
    "mod": "({0} % {1})",
    "sign": "(({0} > 0) - ({0} < 0))",
}

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_COMPARE_OPS = {"=", "!=", "<", "<=", ">", ">="}
_PY_COMPARE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


@dataclass
class CompiledExpr:
    """Result of compiling one expression into pipeline stages."""

    stages: List[Stage]
    out_var: str
    #: fused-UDF inputs in parameter order: (var name, source column, type)
    inputs: List[Tuple[str, ast.ColumnRef, SqlType]]
    #: number of scalar UDF calls folded into the pipeline
    udf_count: int
    #: number of offloaded relational scalar operations
    relop_count: int


class PipelineCompiler:
    """Compiles expressions over one input schema into pipeline stages.

    One compiler instance accumulates shared inputs, so several
    expressions compiled by the same instance (e.g. a filter predicate
    and a projection that reuse the same UDF chain) share input slots —
    and, through common-subexpression caching, share stages (the paper's
    udf1_res reuse in the filter-fusion example of section 5.3.2).
    """

    def __init__(
        self,
        fields: Sequence[Field],
        resolver: FunctionResolver,
        *,
        offload_relational: bool = True,
    ):
        self.fields = tuple(fields)
        self.resolver = resolver
        self.offload_relational = offload_relational
        self.stages: List[Stage] = []
        self.inputs: List[Tuple[str, ast.ColumnRef, SqlType]] = []
        self._input_by_key: Dict[Tuple, str] = {}
        self._cse: Dict[ast.Expr, str] = {}
        self._counter = 0
        self.udf_count = 0
        self.relop_count = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def compile(self, expr: ast.Expr) -> str:
        """Compile ``expr``; returns the variable holding its value."""
        if expr in self._cse:
            return self._cse[expr]
        out = self._compile(expr)
        self._cse[expr] = out
        return out

    def snapshot(self) -> CompiledExpr:
        """The accumulated pipeline state."""
        return CompiledExpr(
            list(self.stages),
            self.stages[-1].out if self.stages and hasattr(self.stages[-1], "out") else "",
            list(self.inputs),
            self.udf_count,
            self.relop_count,
        )

    def is_fusible(self, expr: ast.Expr) -> bool:
        """Can ``expr`` be compiled without executing it?"""
        return _fusible(expr, self.resolver, self.offload_relational)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fresh(self, prefix: str = "v") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _input_var(self, ref: ast.ColumnRef, sql_type: SqlType) -> str:
        key = (ref.name.lower(), (ref.table or "").lower())
        var = self._input_by_key.get(key)
        if var is None:
            var = f"in{len(self.inputs)}"
            self._input_by_key[key] = var
            self.inputs.append((var, ref, sql_type))
        return var

    def _emit_expr_stage(
        self,
        src: str,
        args: Sequence[str],
        *,
        strict: bool = True,
        bindings: Sequence[Tuple[str, Any]] = (),
    ) -> str:
        out = self._fresh()
        self.stages.append(
            ExprStage(src, tuple(args), out, strict, tuple(bindings))
        )
        self.relop_count += 1
        return out

    def _compile(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.ColumnRef):
            sql_type = infer_type(expr, self.fields, self.resolver) or SqlType.TEXT
            return self._input_var(expr, sql_type)
        if isinstance(expr, ast.Literal):
            out = self._fresh("lit")
            self.stages.append(ExprStage(repr(expr.value), (), out, False))
            return out
        if isinstance(expr, ast.FunctionCall):
            return self._compile_call(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._compile_binary(expr)
        if isinstance(expr, ast.UnaryOp):
            value = self.compile(expr.operand)
            if expr.op == "NOT":
                return self._emit_expr_stage(
                    f"(None if {value} is None else (not {value}))",
                    (value,), strict=False,
                )
            return self._emit_expr_stage(f"(-{value})", (value,))
        if isinstance(expr, ast.Between):
            value = self.compile(expr.expr)
            low = self.compile(expr.low)
            high = self.compile(expr.high)
            src = f"({low} <= {value} <= {high})"
            if expr.negated:
                src = f"(not {src})"
            return self._emit_expr_stage(src, (value, low, high))
        if isinstance(expr, ast.IsNull):
            value = self.compile(expr.expr)
            test = "is not None" if expr.negated else "is None"
            return self._emit_expr_stage(
                f"({value} {test})", (value,), strict=False
            )
        if isinstance(expr, ast.InList):
            return self._compile_in_list(expr)
        if isinstance(expr, ast.CaseExpr):
            return self._compile_case(expr)
        if isinstance(expr, ast.Cast):
            value = self.compile(expr.expr)
            return self._emit_expr_stage(
                f"_cast_value({value}, _T_{expr.target.name})",
                (value,),
                bindings=(
                    ("_cast_value", _cast_value),
                    (f"_T_{expr.target.name}", expr.target),
                ),
            )
        raise FusionError(f"cannot compile {type(expr).__name__} into a pipeline")

    def _compile_call(self, call: ast.FunctionCall) -> str:
        registered = self.resolver.udf(call.name)
        if registered is not None:
            if registered.kind is not UdfKind.SCALAR:
                raise FusionError(
                    f"{call.name!r} is not a scalar UDF; table/aggregate "
                    f"stages are assembled by the transformer"
                )
            args = [self.compile(a) for a in call.args]
            out = self._fresh()
            self.stages.append(
                ScalarUdfStage(registered.definition, tuple(args), out)
            )
            self.udf_count += 1
            return out
        builtin = self.resolver.builtin_scalar(call.name)
        if builtin is None:
            raise FusionError(f"unknown function {call.name!r}")
        args = [self.compile(a) for a in call.args]
        template = _BUILTIN_RENDER.get(call.lowered_name)
        if template is not None:
            return self._emit_expr_stage(template.format(*args), args)
        bound = f"_b_{call.lowered_name}"
        return self._emit_expr_stage(
            f"{bound}({', '.join(args)})", args, bindings=((bound, builtin),)
        )

    def _compile_binary(self, expr: ast.BinaryOp) -> str:
        op = expr.op
        if op in ("AND", "OR"):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if op == "AND":
                src = (
                    f"(False if ({left} is False or {right} is False) else "
                    f"(None if ({left} is None or {right} is None) else True))"
                )
            else:
                src = (
                    f"(True if ({left} is True or {right} is True) else "
                    f"(None if ({left} is None or {right} is None) else False))"
                )
            return self._emit_expr_stage(src, (left, right), strict=False)
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if op in _COMPARE_OPS:
            return self._emit_expr_stage(
                f"({left} {_PY_COMPARE[op]} {right})", (left, right)
            )
        if op in _ARITH_OPS:
            py_op = op
            return self._emit_expr_stage(f"({left} {py_op} {right})", (left, right))
        if op == "||":
            return self._emit_expr_stage(
                f"(str({left}) + str({right}))", (left, right)
            )
        if op == "LIKE":
            pattern = expr.right
            if isinstance(pattern, ast.Literal) and isinstance(pattern.value, str):
                regex = like_to_regex(pattern.value)
                bound = f"_rx_{abs(hash(pattern.value)) % 10**8}"
                return self._emit_expr_stage(
                    f"({bound}.match({left}) is not None)", (left,),
                    bindings=((bound, regex),),
                )
            return self._emit_expr_stage(
                f"(_like2rx({right}).match({left}) is not None)",
                (left, right), bindings=(("_like2rx", like_to_regex),),
            )
        raise FusionError(f"cannot offload operator {op!r}")

    def _compile_in_list(self, expr: ast.InList) -> str:
        if not all(
            isinstance(i, ast.Literal) and i.value is not None for i in expr.items
        ):
            raise FusionError("IN lists must be non-NULL literals to fuse")
        value = self.compile(expr.expr)
        items = tuple(i.value for i in expr.items)
        test = "not in" if expr.negated else "in"
        return self._emit_expr_stage(f"({value} {test} {items!r})", (value,))

    def _compile_case(self, expr: ast.CaseExpr) -> str:
        """CASE compiles into a non-strict nested conditional."""
        if expr.operand is not None:
            operand = self.compile(expr.operand)
            branches = []
            for cond, result in expr.whens:
                cond_var = self.compile(cond)
                result_var = self.compile(result)
                branches.append(
                    (f"({operand} is not None and {operand} == {cond_var})",
                     result_var, (cond_var, result_var))
                )
        else:
            branches = []
            for cond, result in expr.whens:
                cond_var = self.compile(cond)
                result_var = self.compile(result)
                branches.append(
                    (f"({cond_var} is True)", result_var, (cond_var, result_var))
                )
        else_var = (
            self.compile(expr.else_result)
            if expr.else_result is not None
            else None
        )
        src = else_var if else_var is not None else "None"
        args: List[str] = [else_var] if else_var is not None else []
        for test, result_var, used in reversed(branches):
            src = f"({result_var} if {test} else {src})"
            args.extend(used)
        if expr.operand is not None:
            args.append(operand)
        return self._emit_expr_stage(src, _dedupe(args), strict=False)


def _dedupe(items: Sequence[str]) -> Tuple[str, ...]:
    return tuple(dict.fromkeys(items))


def _cast_value(value: Any, target: SqlType) -> Any:
    from ..engine.expressions import _cast_value as engine_cast

    return engine_cast(value, target)


# ----------------------------------------------------------------------
# Fusibility analysis
# ----------------------------------------------------------------------


def count_scalar_udfs(expr: ast.Expr, resolver: FunctionResolver) -> int:
    """How many scalar UDF calls occur in ``expr``."""
    count = 0
    for node in ast.walk_expr(expr):
        if isinstance(node, ast.FunctionCall):
            registered = resolver.udf(node.name)
            if registered is not None and registered.kind is UdfKind.SCALAR:
                count += 1
    return count


def expr_is_fusible(
    expr: ast.Expr, resolver: FunctionResolver, offload_relational: bool = True
) -> bool:
    """Whole-expression fusibility check (no side effects)."""
    return _fusible(expr, resolver, offload_relational)


def _fusible(expr: ast.Expr, resolver: FunctionResolver, offload: bool) -> bool:
    if isinstance(expr, (ast.ColumnRef, ast.Literal)):
        return True
    if isinstance(expr, ast.FunctionCall):
        registered = resolver.udf(expr.name)
        if registered is not None:
            if registered.kind is not UdfKind.SCALAR:
                return False
            return all(_fusible(a, resolver, offload) for a in expr.args)
        if resolver.builtin_scalar(expr.name) is None:
            return False
        return offload and all(_fusible(a, resolver, offload) for a in expr.args)
    if not offload:
        return False
    if isinstance(expr, ast.BinaryOp):
        return _fusible(expr.left, resolver, offload) and _fusible(
            expr.right, resolver, offload
        )
    if isinstance(expr, ast.UnaryOp):
        return _fusible(expr.operand, resolver, offload)
    if isinstance(expr, ast.Between):
        return all(
            _fusible(e, resolver, offload) for e in (expr.expr, expr.low, expr.high)
        )
    if isinstance(expr, ast.IsNull):
        return _fusible(expr.expr, resolver, offload)
    if isinstance(expr, ast.InList):
        return _fusible(expr.expr, resolver, offload) and all(
            isinstance(i, ast.Literal) and i.value is not None for i in expr.items
        )
    if isinstance(expr, ast.CaseExpr):
        parts: List[ast.Expr] = []
        if expr.operand is not None:
            parts.append(expr.operand)
        for cond, result in expr.whens:
            parts.extend((cond, result))
        if expr.else_result is not None:
            parts.append(expr.else_result)
        return all(_fusible(p, resolver, offload) for p in parts)
    if isinstance(expr, ast.Cast):
        return _fusible(expr.expr, resolver, offload)
    return False
