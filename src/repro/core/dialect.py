"""Engine dialects — the paper's ``db_dialect.py`` (section 5.5).

Pluggability across engines is carried by a small dialect table: the
engine-specific ``CREATE FUNCTION`` statement shapes and SQL-type
mappings.  The paper reports this file at 300-400 lines per deployment;
ours covers the six engine profiles the evaluation uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import DialectError
from ..types import SqlType
from ..udf.definition import UdfDefinition, UdfKind

__all__ = ["Dialect", "DIALECTS", "dialect_for"]


@dataclass(frozen=True)
class Dialect:
    """One engine's registration dialect."""

    name: str
    type_map: Dict[SqlType, str]
    #: CREATE FUNCTION template per UDF kind; ``{name}``, ``{args}``,
    #: ``{returns}``, ``{entry}`` are substituted.
    create_templates: Dict[UdfKind, str]
    #: The engine supports in-process C UDFs (enables the exported-
    #: internals group-by path of section 5.3.2).
    in_process: bool = True

    def render_type(self, sql_type: SqlType) -> str:
        try:
            return self.type_map[sql_type]
        except KeyError:
            raise DialectError(
                f"dialect {self.name!r} has no mapping for {sql_type}"
            ) from None

    def create_function_sql(self, udf: UdfDefinition) -> str:
        """The CREATE FUNCTION statement registering ``udf``."""
        template = self.create_templates.get(udf.kind)
        if template is None:
            raise DialectError(
                f"dialect {self.name!r} does not support {udf.kind} UDFs"
            )
        args = ", ".join(
            f"{name} {self.render_type(t)}"
            for name, t in zip(udf.signature.arg_names, udf.signature.arg_types)
        )
        if udf.kind is UdfKind.TABLE:
            returns = "TABLE (" + ", ".join(
                f"{name} {self.render_type(t)}"
                for name, t in zip(udf.out_columns, udf.signature.return_types)
            ) + ")"
        else:
            returns = self.render_type(udf.signature.return_types[0])
        return template.format(
            name=udf.name, args=args, returns=returns,
            entry=f"qfusor_wrapper_{udf.name}",
        )


_STANDARD_TYPES = {
    SqlType.INT: "BIGINT",
    SqlType.FLOAT: "DOUBLE",
    SqlType.TEXT: "VARCHAR",
    SqlType.BOOL: "BOOLEAN",
    SqlType.JSON: "JSON",
}

_SQLITE_TYPES = {
    SqlType.INT: "INTEGER",
    SqlType.FLOAT: "REAL",
    SqlType.TEXT: "TEXT",
    SqlType.BOOL: "INTEGER",
    SqlType.JSON: "TEXT",
}

_PG_TYPES = {
    SqlType.INT: "bigint",
    SqlType.FLOAT: "double precision",
    SqlType.TEXT: "text",
    SqlType.BOOL: "boolean",
    SqlType.JSON: "jsonb",
}


DIALECTS: Dict[str, Dialect] = {
    "minidb": Dialect(
        name="minidb",
        type_map=_STANDARD_TYPES,
        create_templates={
            UdfKind.SCALAR: (
                "CREATE FUNCTION {name}({args}) RETURNS {returns} "
                "LANGUAGE C EXTERNAL NAME '{entry}'"
            ),
            UdfKind.AGGREGATE: (
                "CREATE AGGREGATE {name}({args}) RETURNS {returns} "
                "LANGUAGE C EXTERNAL NAME '{entry}'"
            ),
            UdfKind.TABLE: (
                "CREATE FUNCTION {name}({args}) RETURNS {returns} "
                "LANGUAGE C EXTERNAL NAME '{entry}'"
            ),
        },
    ),
    "minidb_row": Dialect(
        name="minidb_row",
        type_map=_PG_TYPES,
        create_templates={
            UdfKind.SCALAR: (
                "CREATE FUNCTION {name}({args}) RETURNS {returns} "
                "AS '{entry}' LANGUAGE c STRICT"
            ),
            UdfKind.AGGREGATE: (
                "CREATE AGGREGATE {name}({args}) (SFUNC = {entry}_step, "
                "STYPE = internal, FINALFUNC = {entry}_final)"
            ),
            UdfKind.TABLE: (
                "CREATE FUNCTION {name}({args}) RETURNS SETOF record "
                "AS '{entry}' LANGUAGE c"
            ),
        },
        in_process=False,
    ),
    "sqlite": Dialect(
        name="sqlite",
        type_map=_SQLITE_TYPES,
        create_templates={
            # SQLite registers through the C API, not SQL; we record the
            # equivalent call for inspection.
            UdfKind.SCALAR: (
                "-- sqlite3_create_function(db, '{name}', nargs, "
                "SQLITE_UTF8, 0, {entry}, 0, 0)"
            ),
            UdfKind.AGGREGATE: (
                "-- sqlite3_create_function(db, '{name}', nargs, "
                "SQLITE_UTF8, 0, 0, {entry}_step, {entry}_final)"
            ),
        },
    ),
    "duckdb": Dialect(
        name="duckdb",
        type_map=_STANDARD_TYPES,
        create_templates={
            UdfKind.SCALAR: (
                "CREATE FUNCTION {name}({args}) RETURNS {returns} "
                "LANGUAGE C AS '{entry}'"
            ),
            UdfKind.AGGREGATE: (
                "CREATE AGGREGATE FUNCTION {name}({args}) RETURNS "
                "{returns} LANGUAGE C AS '{entry}'"
            ),
            UdfKind.TABLE: (
                "CREATE FUNCTION {name}({args}) RETURNS {returns} "
                "LANGUAGE C AS '{entry}'"
            ),
        },
    ),
    "spark": Dialect(
        name="spark",
        type_map={
            SqlType.INT: "LONG",
            SqlType.FLOAT: "DOUBLE",
            SqlType.TEXT: "STRING",
            SqlType.BOOL: "BOOLEAN",
            SqlType.JSON: "STRING",
        },
        create_templates={
            UdfKind.SCALAR: (
                "-- spark.udf.register('{name}', {entry}, {returns})"
            ),
            UdfKind.AGGREGATE: (
                "-- spark.udf.register('{name}', {entry})  # UDAF"
            ),
        },
        in_process=False,
    ),
    "dbx": Dialect(
        name="dbx",
        type_map=_STANDARD_TYPES,
        create_templates={
            UdfKind.SCALAR: (
                "CREATE OR REPLACE FUNCTION {name}({args}) RETURN "
                "{returns} AS LANGUAGE C NAME '{entry}'"
            ),
            UdfKind.AGGREGATE: (
                "CREATE OR REPLACE AGGREGATE {name}({args}) RETURN "
                "{returns} AS LANGUAGE C NAME '{entry}'"
            ),
            UdfKind.TABLE: (
                "CREATE OR REPLACE TABLE FUNCTION {name}({args}) RETURN "
                "{returns} AS LANGUAGE C NAME '{entry}'"
            ),
        },
    ),
}


def dialect_for(name: str) -> Dialect:
    """Look up a dialect by engine name."""
    try:
        return DIALECTS[name.lower()]
    except KeyError:
        raise DialectError(f"unknown dialect {name!r}") from None
