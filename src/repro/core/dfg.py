"""Data-flow graph construction over query plans (paper section 5.1).

The plan is first decomposed into fine-grained *operators*: every UDF
call, every offloadable relational operation (filter, case, arithmetic,
comparison, distinct, group-by, aggregation), and every coarse relational
operator (join, sort, ...).  Each operator carries its input and output
symbol sets.  Algorithm 1 then inserts an edge for every operator pair
satisfying the Bernstein RAW condition (o1.out ∩ o2.in ≠ ∅).

The resulting DFG is what the fusion optimizer (Algorithm 2 in
:mod:`repro.core.sections`) traverses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..engine.expressions import FunctionResolver
from ..engine.plan import (
    Aggregate, CteScan, Distinct, Expand, Filter, Join, Limit, OneRow,
    PlanNode, Project, Requalify, Scan, SetOperation, Sort,
    TableFunctionScan,
)
from ..engine.planner import PlannedQuery
from ..sql import ast_nodes as ast
from ..udf.definition import UdfDefinition, UdfKind

__all__ = ["Operator", "DataFlowGraph", "build_dfg", "extract_operators"]


@dataclass
class Operator:
    """One fine-grained operator in the data-flow graph."""

    op_id: int
    kind: str  # scalar_udf | aggregate_udf | table_udf | filter | case |
    #           arith | compare | like | isnull | cast | between | in |
    #           logical | distinct | groupby | builtin_agg | builtin_scalar |
    #           join | sort | setop | limit | expand | concat
    name: str
    inputs: FrozenSet[str]
    outputs: FrozenSet[str]
    plan_node: Optional[PlanNode] = None
    expr: Optional[ast.Expr] = None
    udf: Optional[UdfDefinition] = None

    @property
    def is_udf(self) -> bool:
        return self.kind in ("scalar_udf", "aggregate_udf", "table_udf")

    def __repr__(self) -> str:
        return f"Op#{self.op_id}({self.kind}:{self.name})"


class DataFlowGraph:
    """Operators plus RAW dependency edges."""

    def __init__(self, operators: Sequence[Operator]):
        self.operators = list(operators)
        self.edges: Set[Tuple[int, int]] = set()
        self._succ: Dict[int, List[int]] = {op.op_id: [] for op in operators}
        self._pred: Dict[int, List[int]] = {op.op_id: [] for op in operators}

    def add_edge(self, producer: int, consumer: int) -> None:
        if (producer, consumer) in self.edges:
            return
        self.edges.add((producer, consumer))
        self._succ[producer].append(consumer)
        self._pred[consumer].append(producer)

    def successors(self, op_id: int) -> List[int]:
        return self._succ[op_id]

    def predecessors(self, op_id: int) -> List[int]:
        return self._pred[op_id]

    def operator(self, op_id: int) -> Operator:
        return self.operators[op_id]

    def topological_order(self) -> List[int]:
        """Kahn's algorithm; operators were created bottom-up, so ties
        break in creation order (stable)."""
        in_degree = {op.op_id: len(self._pred[op.op_id]) for op in self.operators}
        ready = [op.op_id for op in self.operators if in_degree[op.op_id] == 0]
        order: List[int] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for succ in self._succ[current]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        return order

    def udf_count(self) -> int:
        return sum(1 for op in self.operators if op.is_udf)


def bernstein_raw(producer: Operator, consumer: Operator) -> bool:
    """The RAW part of the Bernstein condition: o1.out ∩ o2.in ≠ ∅."""
    return bool(producer.outputs & consumer.inputs)


def build_dfg(
    planned: PlannedQuery, resolver: FunctionResolver
) -> DataFlowGraph:
    """Algorithm 1: extract operators, then add an edge for every pair
    satisfying the Bernstein RAW condition."""
    operators = extract_operators(planned, resolver)
    graph = DataFlowGraph(operators)
    for producer, consumer in itertools.permutations(operators, 2):
        if bernstein_raw(producer, consumer):
            graph.add_edge(producer.op_id, consumer.op_id)
    return graph


# ----------------------------------------------------------------------
# Operator extraction
# ----------------------------------------------------------------------


class _Extractor:
    def __init__(self, resolver: FunctionResolver):
        self.resolver = resolver
        self.operators: List[Operator] = []
        self._temp = 0

    def fresh(self) -> str:
        self._temp += 1
        return f"%t{self._temp}"

    def add(self, kind, name, inputs, outputs, plan_node=None, expr=None, udf=None):
        op = Operator(
            len(self.operators), kind, name,
            frozenset(inputs), frozenset(outputs), plan_node, expr, udf,
        )
        self.operators.append(op)
        return op

    # -- expressions ----------------------------------------------------

    def expr_symbol(self, expr: ast.Expr, node: PlanNode) -> str:
        """Decompose an expression into operators; return the symbol that
        carries its value."""
        if isinstance(expr, ast.ColumnRef):
            return _column_symbol(expr, node)
        if isinstance(expr, ast.Literal):
            return f"#lit:{expr.value!r}"
        if isinstance(expr, ast.FunctionCall):
            args = [self.expr_symbol(a, node) for a in expr.args]
            out = self.fresh()
            registered = self.resolver.udf(expr.name)
            if registered is not None:
                kind = f"{registered.kind.value}_udf"
                self.add(kind, registered.name, _real(args), [out], node, expr,
                         registered.definition)
            elif self.resolver.builtin_aggregate(expr.name) is not None:
                self.add("builtin_agg", expr.lowered_name, _real(args), [out],
                         node, expr)
            else:
                self.add("builtin_scalar", expr.lowered_name, _real(args),
                         [out], node, expr)
            return out
        if isinstance(expr, ast.BinaryOp):
            left = self.expr_symbol(expr.left, node)
            right = self.expr_symbol(expr.right, node)
            out = self.fresh()
            kind = {
                "AND": "logical", "OR": "logical", "LIKE": "like",
            }.get(expr.op)
            if kind is None:
                kind = "compare" if expr.op in ("=", "!=", "<", "<=", ">", ">=") \
                    else "arith"
            self.add(kind, expr.op, _real([left, right]), [out], node, expr)
            return out
        if isinstance(expr, ast.UnaryOp):
            value = self.expr_symbol(expr.operand, node)
            out = self.fresh()
            self.add("arith" if expr.op == "-" else "logical", expr.op,
                     _real([value]), [out], node, expr)
            return out
        if isinstance(expr, ast.Between):
            symbols = [
                self.expr_symbol(e, node)
                for e in (expr.expr, expr.low, expr.high)
            ]
            out = self.fresh()
            self.add("between", "between", _real(symbols), [out], node, expr)
            return out
        if isinstance(expr, ast.IsNull):
            value = self.expr_symbol(expr.expr, node)
            out = self.fresh()
            self.add("isnull", "is null", _real([value]), [out], node, expr)
            return out
        if isinstance(expr, ast.InList):
            symbols = [self.expr_symbol(expr.expr, node)]
            symbols += [self.expr_symbol(i, node) for i in expr.items]
            out = self.fresh()
            self.add("in", "in", _real(symbols), [out], node, expr)
            return out
        if isinstance(expr, ast.CaseExpr):
            symbols: List[str] = []
            if expr.operand is not None:
                symbols.append(self.expr_symbol(expr.operand, node))
            for cond, result in expr.whens:
                symbols.append(self.expr_symbol(cond, node))
                symbols.append(self.expr_symbol(result, node))
            if expr.else_result is not None:
                symbols.append(self.expr_symbol(expr.else_result, node))
            out = self.fresh()
            self.add("case", "case", _real(symbols), [out], node, expr)
            return out
        if isinstance(expr, ast.Cast):
            value = self.expr_symbol(expr.expr, node)
            out = self.fresh()
            self.add("cast", "cast", _real([value]), [out], node, expr)
            return out
        return f"#opaque:{type(expr).__name__}"

    # -- plan nodes -------------------------------------------------------

    def walk(self, node: PlanNode) -> Dict[str, str]:
        """Returns the mapping output-field-name -> symbol for ``node``."""
        child_maps = [self.walk(c) for c in node.children]

        if isinstance(node, (Scan, CteScan, OneRow)):
            return {
                f.name.lower(): _field_symbol(f) for f in node.schema
            }
        if isinstance(node, Requalify):
            # Same columns, re-qualified: carry the child symbols through.
            child = child_maps[0]
            return {
                f.name.lower(): child.get(f.name.lower(), _field_symbol(f))
                for f in node.schema
            }
        if isinstance(node, Filter):
            predicate_symbol = self.expr_symbol(node.predicate, node.child)
            self.add(
                "filter", "filter", _real([predicate_symbol]),
                [self.fresh()], node, node.predicate,
            )
            return child_maps[0]
        if isinstance(node, Project):
            out: Dict[str, str] = {}
            for item in node.items:
                out[item.name.lower()] = self.expr_symbol(item.expr, node.child)
            return out
        if isinstance(node, Expand):
            registered = self.resolver.udf(node.call.name)
            args = [self.expr_symbol(e, node.child) for e in node.arg_exprs]
            outs = [self.fresh() for _ in node.out_names]
            self.add(
                "table_udf", registered.name, _real(args), outs, node,
                node.call, registered.definition,
            )
            mapping = dict(zip((n.lower() for n in node.out_names), outs))
            for item in node.passthrough:
                mapping[item.name.lower()] = self.expr_symbol(
                    item.expr, node.child
                )
            return mapping
        if isinstance(node, Aggregate):
            mapping: Dict[str, str] = {}
            key_symbols = []
            for item in node.group_items:
                symbol = self.expr_symbol(item.expr, node.child)
                key_symbols.append(symbol)
                mapping[item.name.lower()] = symbol
            if node.group_items:
                self.add(
                    "groupby", "group by", _real(key_symbols),
                    [self.fresh()], node,
                )
            for call in node.agg_calls:
                args = [self.expr_symbol(a, node.child) for a in call.args]
                out = self.fresh()
                if call.is_udf:
                    registered = self.resolver.udf(call.func_name)
                    self.add("aggregate_udf", call.func_name, _real(args),
                             [out], node, None, registered.definition)
                else:
                    self.add("builtin_agg", call.func_name, _real(args),
                             [out], node)
                mapping[call.out_name.lower()] = out
            return mapping
        if isinstance(node, Join):
            symbols: List[str] = []
            if node.condition is not None:
                symbols.append(self.expr_symbol(node.condition, node))
            self.add("join", f"{node.kind.lower()} join", _real(symbols),
                     [self.fresh()], node, node.condition)
            merged = {}
            for child_map in child_maps:
                merged.update(child_map)
            return merged
        if isinstance(node, Sort):
            symbols = [self.expr_symbol(k.expr, node.child) for k in node.keys]
            self.add("sort", "order by", _real(symbols), [self.fresh()], node)
            return child_maps[0]
        if isinstance(node, Distinct):
            child = child_maps[0]
            inputs = list(child.values())
            self.add("distinct", "distinct", _real(inputs),
                     [self.fresh()], node)
            return child
        if isinstance(node, Limit):
            self.add("limit", "limit", [], [self.fresh()], node)
            return child_maps[0]
        if isinstance(node, SetOperation):
            self.add("setop", node.op.lower(), [], [self.fresh()], node)
            merged = dict(child_maps[0])
            return merged
        if isinstance(node, TableFunctionScan):
            registered = self.resolver.udf(node.udf_name)
            inputs: List[str] = []
            if node.input_plan is not None:
                input_map = child_maps[0]
                inputs = list(input_map.values())
            outs = [self.fresh() for _ in node.schema]
            self.add("table_udf", node.udf_name, _real(inputs), outs, node,
                     None, registered.definition)
            return {
                f.name.lower(): symbol for f, symbol in zip(node.schema, outs)
            }
        # Unknown node: opaque passthrough.
        return child_maps[0] if child_maps else {}


def extract_operators(
    planned: PlannedQuery, resolver: FunctionResolver
) -> List[Operator]:
    """Decompose a planned query (CTEs included) into operators."""
    extractor = _Extractor(resolver)
    for _, cte_plan in planned.ctes:
        extractor.walk(cte_plan)
    extractor.walk(planned.root)
    return extractor.operators


def _column_symbol(ref: ast.ColumnRef, node: PlanNode) -> str:
    for f in node.schema:
        if f.matches(ref):
            return _field_symbol(f)
    return f"col:{(ref.table or '?').lower()}.{ref.name.lower()}"


def _field_symbol(field) -> str:
    qualifier = (field.qualifier or "?").lower()
    return f"col:{qualifier}.{field.name.lower()}"


def _real(symbols: Sequence[str]) -> List[str]:
    """Drop literal/opaque pseudo-symbols from dependency sets."""
    return [s for s in symbols if not s.startswith("#")]
