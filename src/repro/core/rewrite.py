"""SQL-text query rewriting — path 1 of section 5.4.

QFusor's default execution path dispatches a rewritten *plan* directly to
the engine (path 2, :mod:`repro.core.transform`).  This module implements
the alternative: produce a new SQL statement with fused UDF calls spliced
into the text, suitable for resubmission to any engine — including DML
statements (section 4.2.5), which is how UPDATE/DELETE with UDFs are
accelerated.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..engine.plan import Field
from ..sql import ast_nodes as ast
from ..sql.printer import to_sql
from ..storage.catalog import Catalog
from ..types import SqlType

__all__ = ["rewrite_statement", "rewrite_sql"]


def rewrite_sql(sql: str, fuse_expr: Callable, catalog: Catalog) -> str:
    """Rewrite a SQL string, fusing UDF chains in its expressions.

    ``fuse_expr(expr, fields)`` must return a (possibly unchanged)
    expression with fused calls substituted — the
    :class:`~repro.core.qfusor.QFusor` client passes its own fuser.
    """
    from ..sql.parser import parse

    statement = rewrite_statement(parse(sql), fuse_expr, catalog)
    return to_sql(statement)


def rewrite_statement(
    statement: ast.Statement, fuse_expr: Callable, catalog: Catalog
) -> ast.Statement:
    """Rewrite one parsed statement."""
    if isinstance(statement, ast.Select):
        return _rewrite_select(statement, fuse_expr, catalog, {})
    if isinstance(statement, ast.Update):
        fields = _table_fields(catalog, statement.table)
        assignments = tuple(
            (column, fuse_expr(expr, fields))
            for column, expr in statement.assignments
        )
        where = (
            fuse_expr(statement.where, fields)
            if statement.where is not None
            else None
        )
        return ast.Update(statement.table, assignments, where)
    if isinstance(statement, ast.Delete):
        fields = _table_fields(catalog, statement.table)
        where = (
            fuse_expr(statement.where, fields)
            if statement.where is not None
            else None
        )
        return ast.Delete(statement.table, where)
    if isinstance(statement, ast.Insert):
        if statement.query is not None:
            return ast.Insert(
                statement.table, statement.columns, (),
                _rewrite_select(statement.query, fuse_expr, catalog, {}),
            )
        return statement
    if isinstance(statement, ast.CreateTableAs):
        return ast.CreateTableAs(
            statement.name,
            _rewrite_select(statement.query, fuse_expr, catalog, {}),
            statement.temporary,
        )
    return statement


def _rewrite_select(
    select: ast.Select, fuse_expr: Callable, catalog: Catalog,
    cte_fields: dict,
) -> ast.Select:
    cte_fields = dict(cte_fields)
    new_ctes: List[Tuple[str, ast.Select]] = []
    for name, query in select.ctes:
        rewritten = _rewrite_select(query, fuse_expr, catalog, cte_fields)
        new_ctes.append((name, rewritten))
        cte_fields[name.lower()] = None  # schema opaque at text level

    fields = _from_fields(select.from_items, catalog, cte_fields)

    def fuse(expr: Optional[ast.Expr]) -> Optional[ast.Expr]:
        if expr is None or fields is None:
            return expr
        return fuse_expr(expr, fields)

    items = tuple(
        ast.SelectItem(
            item.expr if isinstance(item.expr, ast.Star) else fuse(item.expr),
            item.alias,
        )
        for item in select.items
    )
    from_items = tuple(
        _rewrite_from_item(f, fuse_expr, catalog, cte_fields)
        for f in select.from_items
    )
    return ast.Select(
        items=items,
        from_items=from_items,
        where=fuse(select.where),
        group_by=tuple(fuse(g) for g in select.group_by),
        having=fuse(select.having),
        order_by=tuple(
            ast.OrderItem(fuse(o.expr), o.ascending) for o in select.order_by
        ),
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
        ctes=tuple(new_ctes),
        set_op=(
            ast.SetOp(
                select.set_op.op,
                _rewrite_select(select.set_op.right, fuse_expr, catalog, cte_fields),
            )
            if select.set_op is not None
            else None
        ),
    )


def _rewrite_from_item(
    item: ast.FromItem, fuse_expr: Callable, catalog: Catalog, cte_fields: dict
) -> ast.FromItem:
    if isinstance(item, ast.SubqueryRef):
        return ast.SubqueryRef(
            _rewrite_select(item.query, fuse_expr, catalog, cte_fields),
            item.alias,
        )
    if isinstance(item, ast.TableFunctionRef):
        return ast.TableFunctionRef(
            item.call,
            item.alias,
            tuple(
                _rewrite_select(q, fuse_expr, catalog, cte_fields)
                for q in item.subquery_args
            ),
        )
    if isinstance(item, ast.Join):
        return ast.Join(
            item.kind,
            _rewrite_from_item(item.left, fuse_expr, catalog, cte_fields),
            _rewrite_from_item(item.right, fuse_expr, catalog, cte_fields),
            item.condition,
        )
    return item


def _table_fields(catalog: Catalog, table_name: str) -> List[Field]:
    table = catalog.get(table_name)
    return [
        Field(name, sql_type, table.name) for name, sql_type in table.schema
    ]


def _from_fields(
    from_items: Sequence[ast.FromItem], catalog: Catalog, cte_fields: dict
) -> Optional[List[Field]]:
    """Best-effort schema of a FROM clause for text-level rewriting.

    Returns None when any item's schema is not statically known (CTE or
    derived table) — expression fusion is then skipped for that scope;
    the plan-level path still covers it.
    """
    fields: List[Field] = []
    for item in from_items:
        if isinstance(item, ast.TableRef):
            if item.name.lower() in cte_fields:
                return None
            if item.name not in catalog:
                return None
            table = catalog.get(item.name)
            fields.extend(
                Field(name, sql_type, item.binding)
                for name, sql_type in table.schema
            )
        else:
            return None
    return fields
