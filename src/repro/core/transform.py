"""Plan-level application of fusion decisions.

The paper's query-rewrite step has two paths (section 5.4): emit a new
SQL statement, or dispatch a rewritten *execution plan* directly to the
engine (the MAL path on MonetDB).  This module implements the plan path:
it walks an optimized :class:`~repro.engine.planner.PlannedQuery`,
matches the fusion patterns selected by the optimizer, generates the
fused UDFs through the JIT, registers them, and splices fused calls into
the plan.

Patterns handled (Table 2 templates in parentheses):

* scalar UDF chains inside any expression (TF1), incl. offloaded
  relational scalars — CASE, BETWEEN, comparisons, arithmetic, LIKE;
* aggregate fusion — UDF or builtin aggregates over fused scalar chains
  (TF2), with group-by staying on the engine's exported internals;
* filter offload — ``Project(Filter(...))`` with UDF-bearing predicates
  becomes an :class:`~repro.engine.plan.Expand` over a fused table UDF
  sharing the chain between predicate and projection; bare filters
  become :class:`~repro.engine.plan.FusedFilter` (F2);
* table UDF fusion — scalars into table inputs (TF3), table-over-table
  (TF4), scalars over table outputs (TF5), aggregate over table (TF6);
* DISTINCT offload into a fused table UDF (heuristic-gated).

Every transformation is correctness-preserving: if a pattern cannot be
compiled the plan is left untouched.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cache.fingerprint import trace_key
from ..engine.expressions import FunctionResolver, infer_type
from ..engine.plan import (
    Aggregate, AggCall, Distinct, Expand, Field, Filter, FusedFilter,
    PlanNode, Project, ProjectItem, Requalify, TableFunctionScan,
)
from ..engine.planner import PlannedQuery
from ..errors import CatalogError, FusionError, JitError, PlanError
from ..jit.cache import TraceCache
from ..jit.codegen import (
    AggregateStage, DistinctStage, FilterStage, FusedUdf, PipelineSpec,
    ScalarUdfStage, TableUdfStage,
)
from ..sql import ast_nodes as ast
from ..types import SqlType
from ..udf.definition import UdfKind
from ..udf.registry import UdfRegistry
from .compile import PipelineCompiler, count_scalar_udfs, expr_is_fusible
from .config import QFusorConfig
from .cost import CostModel
from .heuristics import Heuristics
from .relops import BLOCKING_AGGREGATES, PIPELINED_AGGREGATES

__all__ = ["PlanFuser", "FusionOutcome"]

# Fused-UDF names must be unique across *all* QFusor instances: several
# clients (e.g. different configuration profiles) may share one engine
# registry, and a per-instance counter would collide.
import itertools as _itertools

_FUSED_NAME_COUNTER = _itertools.count(1)


@dataclass
class FusionOutcome:
    """Result of fusing one planned query."""

    planned: PlannedQuery
    fused: List[FusedUdf] = field(default_factory=list)
    codegen_seconds: float = 0.0
    cache_hits: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def fused_count(self) -> int:
        return len(self.fused)


class PlanFuser:
    def __init__(
        self,
        registry: UdfRegistry,
        resolver: FunctionResolver,
        cost_model: CostModel,
        heuristics: Heuristics,
        config: QFusorConfig,
        cache: Optional[TraceCache] = None,
    ):
        self.registry = registry
        self.resolver = resolver
        self.cost_model = cost_model
        self.heuristics = heuristics
        self.config = config
        self.cache = cache if cache is not None else TraceCache(config.trace_cache)
        #: How fused definitions reach the engine.  Defaults to the plain
        #: registry; adapters with engine-side registration (e.g. the
        #: sqlite3 bridge) substitute their own hook so the generated
        #: CREATE FUNCTION actually runs.
        self.register_hook = lambda definition: registry.register(definition)
        self._name_counter = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def fuse_query(self, planned: PlannedQuery) -> FusionOutcome:
        outcome = FusionOutcome(planned)
        if not self.config.enabled or not self.config.jit:
            return outcome
        start = time.perf_counter()
        new_ctes = [
            (name, self._transform(plan, outcome))
            for name, plan in planned.ctes
        ]
        new_root = self._transform(planned.root, outcome)
        outcome.planned = PlannedQuery(new_root, new_ctes)
        outcome.codegen_seconds = time.perf_counter() - start
        return outcome

    # ------------------------------------------------------------------
    # Registration helpers
    # ------------------------------------------------------------------

    def _fresh_name(self) -> str:
        return f"qf_fused_{next(_FUSED_NAME_COUNTER)}"

    def _register(self, spec: PipelineSpec, outcome: FusionOutcome) -> str:
        if not self.heuristics.allow_fusion(trace_key(spec.signature_key)):
            # A trace with this structure de-optimized recently; sit out
            # the cooldown rather than re-fusing a known-bad section.
            outcome.notes.append(f"blocklisted: {spec.name}")
            raise JitError(
                f"pipeline {spec.name!r} is blocklisted after a runtime "
                f"de-optimization"
            )
        fused, was_cached = self.cache.get_or_compile(spec)
        if was_cached:
            outcome.cache_hits += 1
        if self.registry.lookup(fused.definition.name) is None:
            self.register_hook(fused.definition)
        outcome.fused.append(fused)
        return fused.definition.name

    # ------------------------------------------------------------------
    # Plan walk
    # ------------------------------------------------------------------

    def _transform(self, node: PlanNode, outcome: FusionOutcome) -> PlanNode:
        # The Project-over-Filter sandwich must be matched *before*
        # descending into the Filter, or the filter fuses on its own and
        # the shared-chain opportunity (section 5.3.2's udf1_res reuse)
        # is lost.
        if isinstance(node, Project) and isinstance(node.child, Filter):
            inner = self._transform(node.child.child, outcome)
            filter_node = Filter(inner, node.child.predicate)
            filter_node.est_rows = node.child.est_rows
            candidate = Project(filter_node, node.items, node.schema)
            candidate.est_rows = node.est_rows
            return self._apply_patterns(candidate, outcome)

        est_rows = node.est_rows
        children = [self._transform(c, outcome) for c in node.children]
        if children:
            node = node.with_children(children)
            node.est_rows = est_rows

        if isinstance(node, (Project, Filter)):
            flattened = self._flatten_derived(node)
            if flattened is not node:
                flattened.est_rows = est_rows
                return self._apply_patterns(flattened, outcome)
        return self._apply_patterns(node, outcome)

    def _apply_patterns(self, node: PlanNode, outcome: FusionOutcome) -> PlanNode:
        if isinstance(node, Project):
            if isinstance(node.child, Filter):
                fused = self._fuse_project_filter(node, outcome)
                if fused is not None:
                    return fused
                new_filter = self._fuse_bare_filter(node.child, outcome)
                if new_filter is not None:
                    node = Project(new_filter, node.items, node.schema)
            if isinstance(node.child, TableFunctionScan):
                fused = self._fuse_project_over_table(node, outcome)
                if fused is not None:
                    return fused
            fused = self._fuse_project_siblings(node, outcome)
            if fused is not None:
                return fused
            return self._fuse_project_exprs(node, outcome)
        if isinstance(node, Filter):
            fused = self._fuse_bare_filter(node, outcome)
            if fused is not None:
                return fused
            return node
        if isinstance(node, Aggregate):
            return self._fuse_aggregate(node, outcome)
        if isinstance(node, Expand):
            return self._fuse_expand(node, outcome)
        if isinstance(node, TableFunctionScan):
            return self._fuse_table_function(node, outcome)
        if isinstance(node, Distinct):
            fused = self._fuse_distinct(node, outcome)
            if fused is not None:
                return fused
            return node
        return node

    # ------------------------------------------------------------------
    # Derived-table flattening (UDF-aware subquery inlining)
    # ------------------------------------------------------------------

    def _flatten_derived(self, node: PlanNode) -> PlanNode:
        """Inline ``Requalify(Project(X))`` children into Project/Filter
        expressions, exposing cross-subquery fusion opportunities the
        native (UDF-oblivious) optimizer leaves on the table."""
        child = node.children[0] if node.children else None
        if not isinstance(child, Requalify):
            return node
        inner = child.child
        if not isinstance(inner, Project):
            return node
        # Substitution may duplicate an inner expression at several outer
        # references; that is only sound for deterministic UDFs.
        for item in inner.items:
            for expr_node in ast.walk_expr(item.expr):
                if isinstance(expr_node, ast.FunctionCall):
                    registered = self.resolver.udf(expr_node.name)
                    if registered is not None and not (
                        registered.definition.deterministic
                    ):
                        return node
        mapping: Dict[str, ast.Expr] = {
            item.name.lower(): item.expr for item in inner.items
        }

        def substitute(expr: ast.Expr) -> ast.Expr:
            if isinstance(expr, ast.ColumnRef):
                replacement = mapping.get(expr.name.lower())
                return replacement if replacement is not None else expr
            return ast.rewrite_children(expr, substitute)

        try:
            if isinstance(node, Project):
                items = [
                    ProjectItem(substitute(item.expr), item.name)
                    for item in node.items
                ]
                return Project(inner.child, items, node.schema)
            if isinstance(node, Filter):
                lifted = Filter(inner.child, substitute(node.predicate))
                # Keep the original projection shape above the filter.
                return Project(lifted, inner.items, child.schema)
        except (PlanError, CatalogError, KeyError, TypeError,
                AttributeError) as exc:
            # Substitution can produce expressions the plan layer rejects
            # (schema/type mismatches); keep the original subtree, but
            # say so — silent catch-alls mask real runtime faults.
            warnings.warn(
                f"derived-table flattening skipped: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return node
        return node

    # ------------------------------------------------------------------
    # Expression-level fusion (TF1 + relational scalar offload)
    # ------------------------------------------------------------------

    def _fuse_project_exprs(self, node: Project, outcome: FusionOutcome) -> Project:
        items = [
            ProjectItem(
                self._fuse_expr(item.expr, node.child, outcome), item.name
            )
            for item in node.items
        ]
        return Project(node.child, items, node.schema)

    def _fuse_project_siblings(
        self, node: Project, outcome: FusionOutcome
    ) -> Optional[PlanNode]:
        """Sibling fusion: several UDF-bearing select items run in ONE
        loop — the paper's "same JIT trace" / "remove conversions"
        techniques for queries like Q9 where independent UDFs share an
        input column.  The fused pipeline is a one-row-per-row table UDF
        with one output column per item; shared inputs are decoded once
        and shared sub-chains are CSE'd.
        """
        if not (self.config.fuse_udfs and self.config.fuse_nonscalar):
            return None
        offload = self.config.offload_relational
        fusible = [
            i for i, item in enumerate(node.items)
            if count_scalar_udfs(item.expr, self.resolver) > 0
            and expr_is_fusible(item.expr, self.resolver, offload)
        ]
        if len(fusible) < 2:
            return None
        compiler = PipelineCompiler(
            node.child.schema, self.resolver, offload_relational=offload
        )
        out_vars: List[str] = []
        out_names: List[str] = []
        out_types: List[SqlType] = []
        passthrough: List[ProjectItem] = []
        layout: List[Tuple[str, int]] = []
        try:
            for i, (item, field_) in enumerate(zip(node.items, node.schema)):
                if i in fusible:
                    out_vars.append(compiler.compile(item.expr))
                    out_names.append(item.name)
                    out_types.append(field_.sql_type)
                    layout.append(("expand", len(out_vars) - 1))
                else:
                    passthrough.append(
                        ProjectItem(
                            self._fuse_expr(item.expr, node.child, outcome),
                            item.name,
                        )
                    )
                    layout.append(("pass", len(passthrough) - 1))
        except (FusionError, JitError):
            return None
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(compiler.stages),
            outputs=tuple(out_vars),
            output_types=tuple(out_types),
            output_names=tuple(out_names),
        )
        if spec.result_kind is not UdfKind.SCALAR and len(spec.outputs) < 2:
            return None
        # Force table kind: multi-output, one row per input row.
        try:
            fused_name = self._register_as_table(spec, outcome)
        except JitError:
            return None
        arg_refs = tuple(ref for _, ref, _ in compiler.inputs)
        call = ast.FunctionCall(fused_name, arg_refs)
        return Expand(
            node.child, call, arg_refs, (), tuple(out_names),
            tuple(passthrough), node.schema, tuple(layout),
        )

    def _register_as_table(self, spec: PipelineSpec, outcome: FusionOutcome) -> str:
        """Register a multi-output pipeline as a one-row-per-row table
        UDF by appending an identity TableUdfStage-free marker: the
        codegen emits a table generator whenever the spec is not purely
        scalar, so we add a no-op filter that always passes."""
        from ..jit.codegen import FilterStage as _FilterStage

        if spec.result_kind is not UdfKind.SCALAR:
            return self._register(spec, outcome)
        table_spec = PipelineSpec(
            name=spec.name,
            inputs=spec.inputs,
            stages=tuple(spec.stages) + (_FilterStage("True", ()),),
            outputs=spec.outputs,
            output_types=spec.output_types,
            output_names=spec.output_names,
        )
        return self._register(table_spec, outcome)

    def _fuse_expr(
        self, expr: ast.Expr, child: PlanNode, outcome: FusionOutcome
    ) -> ast.Expr:
        """Replace maximal fusible subtrees of ``expr`` with fused calls."""
        replaced = self._try_fuse_subtree(expr, child, outcome)
        if replaced is not None:
            return replaced
        return ast.rewrite_children(
            expr, lambda e: self._fuse_expr(e, child, outcome)
        )

    def _try_fuse_subtree(
        self, expr: ast.Expr, child: PlanNode, outcome: FusionOutcome
    ) -> Optional[ast.Expr]:
        udf_count = count_scalar_udfs(expr, self.resolver)
        if udf_count == 0:
            return None
        offload = self.config.offload_relational
        if not expr_is_fusible(expr, self.resolver, offload):
            return None
        # Trivial single-column refs wrapped in a single UDF: only JIT.
        multi = udf_count >= 2 or not isinstance(expr, ast.FunctionCall) or any(
            not isinstance(a, (ast.ColumnRef, ast.Literal)) for a in expr.args
        )
        if multi and not self.config.fuse_udfs:
            # Fusion disabled: JIT individual UDF calls only.
            return None
        compiler = PipelineCompiler(
            child.schema, self.resolver, offload_relational=offload
        )
        try:
            out_var = compiler.compile(expr)
        except (FusionError, JitError):
            return None
        out_type = infer_type(expr, child.schema, self.resolver) or SqlType.TEXT
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(compiler.stages),
            outputs=(out_var,),
            output_types=(out_type,),
        )
        if spec.result_kind is not UdfKind.SCALAR:
            return None
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        args = tuple(ref for _, ref, _ in compiler.inputs)
        return ast.FunctionCall(fused_name, args)

    # ------------------------------------------------------------------
    # Aggregate fusion (TF2, TF6, TF7)
    # ------------------------------------------------------------------

    def _fuse_aggregate(self, node: Aggregate, outcome: FusionOutcome) -> Aggregate:
        if not self.config.fuse_nonscalar:
            # Scalar-only profile (YeSQL): fuse inside argument
            # expressions but never the aggregation itself.
            group_items = [
                ProjectItem(
                    self._fuse_expr(item.expr, node.child, outcome), item.name
                )
                for item in node.group_items
            ]
            new_calls = []
            for call in node.agg_calls:
                fused_call = self._fuse_agg_args_only(call, node.child, outcome)
                new_calls.append(fused_call if fused_call is not None else call)
            return Aggregate(node.child, group_items, new_calls, node.schema)

        # TF6 first: aggregate directly over a table UDF, no grouping.
        fused_tf6 = self._fuse_aggregate_over_table(node, outcome)
        if fused_tf6 is not None:
            return fused_tf6

        group_items = [
            ProjectItem(
                self._fuse_expr(item.expr, node.child, outcome), item.name
            )
            for item in node.group_items
        ]
        new_calls: List[AggCall] = []
        for call in node.agg_calls:
            fused_call = self._fuse_agg_call(call, node.child, outcome)
            new_calls.append(fused_call if fused_call is not None else call)
        return Aggregate(node.child, group_items, new_calls, node.schema)

    def _fuse_agg_call(
        self, call: AggCall, child: PlanNode, outcome: FusionOutcome
    ) -> Optional[AggCall]:
        if call.distinct or not call.args:
            return self._fuse_agg_args_only(call, child, outcome)
        if not self.config.fuse_udfs:
            return self._fuse_agg_args_only(call, child, outcome)

        if call.is_udf:
            registered = self.resolver.udf(call.func_name)
            if registered is None or registered.definition.materializes_input:
                return self._fuse_agg_args_only(call, child, outcome)
            agg_udf = registered.definition
            agg_builtin = None
        else:
            if not self.heuristics.should_fuse_aggregation(
                _DummyOp(call.func_name)
            ):
                return self._fuse_agg_args_only(call, child, outcome)
            if call.func_name not in PIPELINED_AGGREGATES:
                return self._fuse_agg_args_only(call, child, outcome)
            agg_udf = None
            agg_builtin = call.func_name

        # Compile the argument expression(s) into a scalar prefix.
        has_udf_args = any(
            count_scalar_udfs(a, self.resolver) > 0 for a in call.args
        )
        if not has_udf_args and not call.is_udf:
            return None  # plain builtin aggregation: engine wins
        offload = self.config.offload_relational
        if not all(
            expr_is_fusible(a, self.resolver, offload) for a in call.args
        ):
            return self._fuse_agg_args_only(call, child, outcome)
        compiler = PipelineCompiler(
            child.schema, self.resolver, offload_relational=offload
        )
        try:
            arg_vars = [compiler.compile(a) for a in call.args]
        except (FusionError, JitError):
            return self._fuse_agg_args_only(call, child, outcome)
        if not compiler.stages and call.is_udf:
            return None  # bare aggregate UDF over raw columns: no gain
        out_var = f"agg_out"
        stages = list(compiler.stages)
        stages.append(
            AggregateStage(tuple(arg_vars), out_var, udf=agg_udf, builtin=agg_builtin)
        )
        out_type = _agg_result_type(call, child, self.resolver)
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(stages),
            outputs=(out_var,),
            output_types=(out_type,),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return self._fuse_agg_args_only(call, child, outcome)
        args = tuple(ref for _, ref, _ in compiler.inputs)
        return AggCall(fused_name, args, False, call.out_name, is_udf=True)

    def _fuse_agg_args_only(
        self, call: AggCall, child: PlanNode, outcome: FusionOutcome
    ) -> Optional[AggCall]:
        """Fallback: fuse scalar chains *inside* the aggregate's argument
        expressions but keep the aggregation itself where it was."""
        new_args = tuple(
            self._fuse_expr(a, child, outcome) for a in call.args
        )
        if new_args == call.args:
            return None
        return AggCall(call.func_name, new_args, call.distinct, call.out_name,
                       call.is_udf)

    def _fuse_aggregate_over_table(
        self, node: Aggregate, outcome: FusionOutcome
    ) -> Optional[Aggregate]:
        """TF6: aggregate over a table UDF with no group-by in between."""
        if node.group_items or not self.config.fuse_udfs:
            return None
        child = node.child
        if not isinstance(child, TableFunctionScan):
            return None
        if child.input_plan is None:
            return None
        table_udf = self.resolver.udf(child.udf_name)
        if table_udf is None or table_udf.definition.materializes_input:
            return None
        if len(node.agg_calls) != 1:
            return None
        call = node.agg_calls[0]
        if call.distinct or len(call.args) != 1:
            return None
        arg = call.args[0]
        if not isinstance(arg, ast.ColumnRef):
            return None
        try:
            out_index = child.resolve(arg)
        except (PlanError, CatalogError, KeyError) as exc:
            warnings.warn(
                f"TF6 aggregate-over-table fusion skipped: cannot resolve "
                f"{arg!r} against the table UDF's outputs: {exc!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return None
        if call.is_udf:
            registered = self.resolver.udf(call.func_name)
            if registered is None or registered.definition.materializes_input:
                return None
            agg_udf, agg_builtin = registered.definition, None
        else:
            if call.func_name in BLOCKING_AGGREGATES:
                return None
            if not self.heuristics.should_fuse_aggregation(
                _DummyOp(call.func_name)
            ):
                return None
            agg_udf, agg_builtin = None, call.func_name

        input_schema = child.input_plan.schema
        inputs = tuple(
            (f"in{i}", f.sql_type) for i, f in enumerate(input_schema)
        )
        outs = tuple(f"t{i}" for i in range(len(child.schema)))
        stages: Tuple = (
            TableUdfStage(
                table_udf.definition,
                tuple(name for name, _ in inputs),
                child.const_args,
                outs,
            ),
            AggregateStage((outs[out_index],), "agg_out",
                           udf=agg_udf, builtin=agg_builtin),
        )
        out_type = node.schema[0].sql_type
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=inputs,
            stages=stages,
            outputs=("agg_out",),
            output_types=(out_type,),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        arg_refs = tuple(
            ast.ColumnRef(f.name, table=f.qualifier) for f in input_schema
        )
        fused_call = AggCall(fused_name, arg_refs, False, call.out_name, True)
        return Aggregate(child.input_plan, (), (fused_call,), node.schema)

    # ------------------------------------------------------------------
    # Filter fusion (F2)
    # ------------------------------------------------------------------

    def _filter_keep_fraction(self, node: Filter) -> Optional[float]:
        child_rows = node.child.est_rows
        rows = node.est_rows
        if child_rows and rows is not None and child_rows > 0:
            return rows / child_rows
        return None

    def _fuse_project_filter(
        self, node: Project, outcome: FusionOutcome
    ) -> Optional[PlanNode]:
        """``Project(Filter(X))`` where predicate and/or items carry UDF
        chains -> one Expand over a fused table UDF."""
        if not (self.config.fuse_udfs and self.config.offload_relational):
            return None
        filter_node = node.child
        assert isinstance(filter_node, Filter)
        predicate = filter_node.predicate
        offload = True
        pred_udfs = count_scalar_udfs(predicate, self.resolver)
        item_udfs = sum(
            count_scalar_udfs(item.expr, self.resolver) for item in node.items
        )
        if pred_udfs == 0:
            return None  # plain filters stay in the engine
        if not expr_is_fusible(predicate, self.resolver, offload):
            return None
        keep = self._filter_keep_fraction(filter_node)
        udf_ops = [_DummyOp(f"udf{i}", rows=filter_node.child.est_rows)
                   for i in range(max(pred_udfs + item_udfs, 1))]
        if not self.heuristics.should_fuse_filter(
            _DummyOp("filter", kind="filter", rows=filter_node.child.est_rows),
            udf_ops, keep,
        ):
            return None

        base = filter_node.child
        compiler = PipelineCompiler(
            base.schema, self.resolver, offload_relational=True
        )
        try:
            pred_var = compiler.compile(predicate)
        except (FusionError, JitError):
            return None
        pred_stage_count = len(compiler.stages)
        # Items that are fusible join the pipeline as outputs; the rest
        # become Expand passthrough (evaluated over the child, filtered by
        # lineage).  Item stages compile *after* the predicate, so in the
        # generated loop they run only for surviving rows; shared
        # sub-chains are reused through the compiler's CSE.
        out_vars: List[str] = []
        out_names: List[str] = []
        out_types: List[SqlType] = []
        passthrough: List[ProjectItem] = []
        layout: List[Tuple[str, int]] = []
        for item, field_ in zip(node.items, node.schema):
            # Plain column refs and UDF-free expressions stay engine-side
            # passthrough (no reason to route them through the boundary);
            # UDF-bearing items join the pipeline and share stages with
            # the predicate via CSE.
            if count_scalar_udfs(item.expr, self.resolver) > 0 and (
                expr_is_fusible(item.expr, self.resolver, offload)
            ):
                try:
                    var = compiler.compile(item.expr)
                except (FusionError, JitError):
                    passthrough.append(item)
                    layout.append(("pass", len(passthrough) - 1))
                    continue
                out_vars.append(var)
                out_names.append(item.name)
                out_types.append(field_.sql_type)
                layout.append(("expand", len(out_vars) - 1))
            else:
                passthrough.append(item)
                layout.append(("pass", len(passthrough) - 1))
        stages: List = (
            list(compiler.stages[:pred_stage_count])
            + [FilterStage(f"{pred_var} is True", ())]
            + list(compiler.stages[pred_stage_count:])
        )
        if not out_vars:
            # Nothing projected from the pipeline: plain fused filter.
            fused_filter = self._build_fused_filter(
                filter_node, compiler, pred_var, outcome
            )
            if fused_filter is None:
                return None
            return Project(fused_filter, node.items, node.schema)

        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(stages),
            outputs=tuple(out_vars),
            output_types=tuple(out_types),
            output_names=tuple(out_names),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        arg_refs = tuple(ref for _, ref, _ in compiler.inputs)
        call = ast.FunctionCall(fused_name, arg_refs)
        return Expand(
            base, call, arg_refs, (), tuple(out_names), tuple(passthrough),
            node.schema, tuple(layout),
        )

    def _fuse_bare_filter(
        self, node: Filter, outcome: FusionOutcome
    ) -> Optional[PlanNode]:
        if not (self.config.fuse_udfs and self.config.offload_relational):
            return None
        predicate = node.predicate
        pred_udfs = count_scalar_udfs(predicate, self.resolver)
        if pred_udfs == 0:
            return None
        if not expr_is_fusible(predicate, self.resolver, True):
            return None
        keep = self._filter_keep_fraction(node)
        udf_ops = [_DummyOp(f"udf{i}", rows=node.child.est_rows)
                   for i in range(pred_udfs)]
        if not self.heuristics.should_fuse_filter(
            _DummyOp("filter", kind="filter", rows=node.child.est_rows),
            udf_ops, keep,
        ):
            return None
        compiler = PipelineCompiler(
            node.child.schema, self.resolver, offload_relational=True
        )
        try:
            pred_var = compiler.compile(predicate)
        except (FusionError, JitError):
            return None
        return self._build_fused_filter(node, compiler, pred_var, outcome)

    def _build_fused_filter(
        self,
        node: Filter,
        compiler: PipelineCompiler,
        pred_var: str,
        outcome: FusionOutcome,
    ) -> Optional[FusedFilter]:
        # The offloaded filter is a *scalar* UDF returning bool (Table 3:
        # "filter: scalar, row -> bool"): one batched wrapper invocation
        # computes the whole predicate column, the engine applies the
        # mask.  All interior UDF/relational stages fuse into the loop.
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(compiler.stages),
            outputs=(pred_var,),
            output_types=(SqlType.BOOL,),
        )
        if spec.result_kind is not UdfKind.SCALAR:
            return None
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        arg_refs = tuple(ref for _, ref, _ in compiler.inputs)
        return FusedFilter(node.child, fused_name, arg_refs)

    # ------------------------------------------------------------------
    # Table UDF fusion (TF3, TF4, TF5)
    # ------------------------------------------------------------------

    def _fuse_expand(self, node: Expand, outcome: FusionOutcome) -> Expand:
        """TF3 for select-list table UDFs: fold scalar chains in the
        arguments into the table UDF's pipeline."""
        if not self.config.fuse_udfs:
            return node
        if not self.config.fuse_nonscalar or not any(
            count_scalar_udfs(e, self.resolver) > 0 for e in node.arg_exprs
        ):
            new_pass = tuple(
                ProjectItem(
                    self._fuse_expr(i.expr, node.child, outcome), i.name
                )
                for i in node.passthrough
            )
            return Expand(
                node.child, node.call, node.arg_exprs, node.const_args,
                node.out_names, new_pass, node.schema, node.layout,
            )
        offload = self.config.offload_relational
        if not all(
            expr_is_fusible(e, self.resolver, offload) for e in node.arg_exprs
        ):
            return node
        table_udf = self.resolver.udf(node.call.name)
        if table_udf is None or table_udf.definition.materializes_input:
            return node
        compiler = PipelineCompiler(
            node.child.schema, self.resolver, offload_relational=offload
        )
        try:
            arg_vars = [compiler.compile(e) for e in node.arg_exprs]
        except (FusionError, JitError):
            return node
        outs = tuple(f"t{i}" for i in range(len(node.out_names)))
        stages = list(compiler.stages)
        stages.append(
            TableUdfStage(
                table_udf.definition, tuple(arg_vars), node.const_args, outs
            )
        )
        out_types = tuple(
            table_udf.definition.signature.return_types[
                : len(node.out_names)
            ]
        )
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(stages),
            outputs=outs,
            output_types=out_types,
            output_names=tuple(node.out_names),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return node
        arg_refs = tuple(ref for _, ref, _ in compiler.inputs)
        new_pass = tuple(
            ProjectItem(self._fuse_expr(i.expr, node.child, outcome), i.name)
            for i in node.passthrough
        )
        call = ast.FunctionCall(fused_name, arg_refs)
        return Expand(
            node.child, call, arg_refs, (), node.out_names, new_pass,
            node.schema, node.layout,
        )

    def _fuse_table_function(
        self, node: TableFunctionScan, outcome: FusionOutcome
    ) -> TableFunctionScan:
        """TF3 (input scalars) and TF4 (table over table) for FROM-clause
        table UDFs."""
        if not self.config.fuse_udfs or node.input_plan is None:
            return node
        if not self.config.fuse_nonscalar:
            return node
        table_udf = self.resolver.udf(node.udf_name)
        if table_udf is None or table_udf.definition.materializes_input:
            return node

        inner = node.input_plan
        # TF4: table UDF directly over another table UDF.
        if isinstance(inner, TableFunctionScan):
            inner_udf = self.resolver.udf(inner.udf_name)
            if inner_udf is not None and not inner_udf.definition.materializes_input:
                composed = self._compose_table_over_table(
                    node, inner, table_udf.definition,
                    inner_udf.definition, outcome,
                )
                if composed is not None:
                    return composed
            return node

        # TF3: scalar chains computed in the input projection.
        if not isinstance(inner, Project):
            return node
        offload = self.config.offload_relational
        if not any(
            count_scalar_udfs(i.expr, self.resolver) > 0 for i in inner.items
        ):
            return node
        if not all(
            expr_is_fusible(i.expr, self.resolver, offload) for i in inner.items
        ):
            return node
        compiler = PipelineCompiler(
            inner.child.schema, self.resolver, offload_relational=offload
        )
        try:
            arg_vars = [compiler.compile(i.expr) for i in inner.items]
        except (FusionError, JitError):
            return node
        outs = tuple(f"t{i}" for i in range(len(node.schema)))
        stages = list(compiler.stages)
        stages.append(
            TableUdfStage(
                table_udf.definition, tuple(arg_vars), node.const_args, outs
            )
        )
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(stages),
            outputs=outs,
            output_types=tuple(f.sql_type for f in node.schema),
            output_names=tuple(f.name for f in node.schema),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return node
        leaf_items = [
            ProjectItem(ref, f"l{i}")
            for i, (_, ref, _) in enumerate(compiler.inputs)
        ]
        leaf_fields = [
            Field(f"l{i}", t, None)
            for i, (_, _, t) in enumerate(compiler.inputs)
        ]
        new_input = Project(inner.child, leaf_items, leaf_fields)
        return TableFunctionScan(
            fused_name, node.binding, new_input, (), node.schema
        )

    def _compose_table_over_table(
        self, outer, inner, outer_def, inner_def, outcome
    ) -> Optional[TableFunctionScan]:
        input_plan = inner.input_plan
        if input_plan is None:
            return None
        inputs = tuple(
            (f"in{i}", f.sql_type) for i, f in enumerate(input_plan.schema)
        )
        inner_outs = tuple(f"m{i}" for i in range(len(inner.schema)))
        outer_outs = tuple(f"t{i}" for i in range(len(outer.schema)))
        stages = (
            TableUdfStage(
                inner_def, tuple(n for n, _ in inputs), inner.const_args,
                inner_outs,
            ),
            TableUdfStage(outer_def, inner_outs, outer.const_args, outer_outs),
        )
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=inputs,
            stages=stages,
            outputs=outer_outs,
            output_types=tuple(f.sql_type for f in outer.schema),
            output_names=tuple(f.name for f in outer.schema),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        return TableFunctionScan(
            fused_name, outer.binding, input_plan, (), outer.schema
        )

    # ------------------------------------------------------------------
    # Distinct offload
    # ------------------------------------------------------------------

    def _fuse_distinct(
        self, node: Distinct, outcome: FusionOutcome
    ) -> Optional[PlanNode]:
        if not (self.config.fuse_udfs and self.config.offload_relational):
            return None
        child = node.child
        if not isinstance(child, Project):
            return None
        offload = True
        udfs = sum(count_scalar_udfs(i.expr, self.resolver) for i in child.items)
        if udfs == 0:
            return None
        if not all(
            expr_is_fusible(i.expr, self.resolver, offload) for i in child.items
        ):
            return None
        drop = None
        if node.est_rows is not None and child.est_rows:
            drop = 1.0 - node.est_rows / child.est_rows
        if not self.heuristics.should_fuse_distinct(drop):
            return None
        compiler = PipelineCompiler(
            child.child.schema, self.resolver, offload_relational=offload
        )
        try:
            out_vars = [compiler.compile(i.expr) for i in child.items]
        except (FusionError, JitError):
            return None
        stages = list(compiler.stages)
        stages.append(DistinctStage(tuple(out_vars)))
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=tuple((v, t) for v, _, t in compiler.inputs),
            stages=tuple(stages),
            outputs=tuple(out_vars),
            output_types=tuple(f.sql_type for f in node.schema),
            output_names=tuple(f.name for f in node.schema),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        arg_refs = tuple(ref for _, ref, _ in compiler.inputs)
        call = ast.FunctionCall(fused_name, arg_refs)
        layout = tuple(("expand", i) for i in range(len(node.schema)))
        return Expand(
            child.child, call, arg_refs, (),
            tuple(f.name for f in node.schema), (), node.schema, layout,
        )

    def _fuse_project_over_table(
        self, node: Project, outcome: FusionOutcome
    ) -> Optional[PlanNode]:
        """TF5: scalar chains over a table UDF's outputs."""
        if not self.config.fuse_udfs or not self.config.fuse_nonscalar:
            return None
        child = node.child
        assert isinstance(child, TableFunctionScan)
        table_udf = self.resolver.udf(child.udf_name)
        if table_udf is None or table_udf.definition.materializes_input:
            return None
        offload = self.config.offload_relational
        if not any(
            count_scalar_udfs(i.expr, self.resolver) > 0 for i in node.items
        ):
            return None
        if not all(
            expr_is_fusible(i.expr, self.resolver, offload) for i in node.items
        ):
            return None
        if child.input_plan is None:
            return None
        input_schema = child.input_plan.schema
        inputs = tuple(
            (f"in{i}", f.sql_type) for i, f in enumerate(input_schema)
        )
        table_outs = tuple(f"m{i}" for i in range(len(child.schema)))
        stages: List = [
            TableUdfStage(
                table_udf.definition, tuple(n for n, _ in inputs),
                child.const_args, table_outs,
            )
        ]
        # The projection's expressions see the table outputs; compile them
        # over a synthetic schema mapped to the table-out variables.
        compiler = PipelineCompiler(
            child.schema, self.resolver, offload_relational=offload
        )
        # Pre-seed inputs so column refs bind to table-out vars.
        for (var, field_) in zip(table_outs, child.schema):
            key = (field_.name.lower(), (field_.qualifier or "").lower())
            compiler._input_by_key[key] = var
            key_unqualified = (field_.name.lower(), "")
            compiler._input_by_key.setdefault(key_unqualified, var)
        try:
            out_vars = [compiler.compile(i.expr) for i in node.items]
        except (FusionError, JitError):
            return None
        if compiler.inputs:
            return None  # an item referenced something outside the table
        stages.extend(compiler.stages)
        spec = PipelineSpec(
            name=self._fresh_name(),
            inputs=inputs,
            stages=tuple(stages),
            outputs=tuple(out_vars),
            output_types=tuple(f.sql_type for f in node.schema),
            output_names=tuple(f.name for f in node.schema),
        )
        try:
            fused_name = self._register(spec, outcome)
        except JitError:
            return None
        schema = [
            Field(f.name, f.sql_type, child.binding) for f in node.schema
        ]
        fused_scan = TableFunctionScan(
            fused_name, child.binding, child.input_plan, (), schema
        )
        # Keep the original output schema (names/qualifiers) via Project.
        items = [
            ProjectItem(ast.ColumnRef(f.name, table=child.binding), f.name)
            for f in node.schema
        ]
        return Project(fused_scan, items, node.schema)


class _DummyOp:
    """A minimal Operator-like carrier for heuristic/cost queries made
    outside the DFG context."""

    def __init__(self, name: str, kind: str = "scalar_udf", rows=None):
        self.name = name
        self.kind = kind
        self.is_udf = kind.endswith("_udf")
        self.udf = None
        self.plan_node = None
        self._rows = rows

    @property
    def est_rows(self):
        return self._rows


def _agg_result_type(call: AggCall, child: PlanNode, resolver) -> SqlType:
    if call.is_udf:
        registered = resolver.udf(call.func_name)
        return registered.definition.signature.return_types[0]
    from ..engine.functions import BUILTIN_AGGREGATES

    builtin = BUILTIN_AGGREGATES[call.func_name]
    arg_types = [infer_type(a, child.schema, resolver) for a in call.args]
    return builtin.result_type(arg_types)
