"""QFusor configuration switches.

Each flag corresponds to a technique the paper evaluates separately
(Figures 6a and 6c ablate them), so benchmarks can turn layers on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

__all__ = ["QFusorConfig"]


@dataclass
class QFusorConfig:
    """Feature switches for the QFusor pipeline.

    The defaults enable everything (the full system); the physio-logical
    and physical-optimization benchmarks disable layers selectively.
    """

    #: Master switch: disable to pass queries through untouched.
    enabled: bool = True
    #: JIT-compile single (unfused) UDF pipelines too ("JIT only" mode).
    jit: bool = True
    #: Fuse scalar/table/aggregate UDF chains (F1).
    fuse_udfs: bool = True
    #: Fuse table and aggregate UDF types too.  Disabled by the
    #: YeSQL-style profile, which "supports fusion primarily for scalar
    #: UDFs" (section 2).
    fuse_nonscalar: bool = True
    #: Offload scalar relational operators (case, filters, arithmetic)
    #: into the UDF environment when beneficial (F2).
    offload_relational: bool = True
    #: Offload aggregations (sum/count/...) and drive group-by through the
    #: engine's exported internals (section 5.3.2).
    offload_aggregations: bool = True
    #: Allow operator reordering to unlock fusion (F3).
    reorder: bool = True
    #: Inline simple scalar UDF bodies into the fused loop.
    inline: bool = True
    #: Use the compiled-trace cache across queries (Fig. 6d "cache").
    trace_cache: bool = True
    #: Use learned statistics when available; otherwise heuristics.
    cost_based: bool = True
    #: Filter-offload selectivity threshold: fuse a filter with UDFs when
    #: it keeps at least this fraction of rows (heuristics, section 5.2.4:
    #: "if the filter is not highly selective; e.g., it filters out less
    #: than 20% of its input" — i.e. keeps >= 80%).
    filter_fusion_min_keep: float = 0.0
    #: Distinct-offload threshold: fuse DISTINCT when it drops at least
    #: this fraction of rows (heuristics: "filters out more than 90%").
    distinct_fusion_min_drop: float = 0.9
    #: Runtime de-optimization: a fused execution that raises invalidates
    #: the trace, blocklists the section, and transparently re-executes
    #: the query through the unfused path.
    deopt: bool = True
    #: How many queries a deopted section stays blocklisted before the
    #: optimizer may try fusing it again.
    deopt_cooldown: int = 4
    #: Row-level exception policy inside fused batch wrappers:
    #: ``raise`` | ``null`` | ``skip`` | ``reinterpret`` (default: replay
    #: the failed row through the interpreted per-UDF chain).
    row_error_policy: str = "reinterpret"
    #: Bounded LRU capacity for the compiled-trace cache (None: unbounded).
    trace_cache_capacity: Optional[int] = 256
    #: Out-of-process channel hardening: per-batch transfer timeout (s).
    channel_timeout: float = 5.0
    #: Bounded retry count for failed channel transfers.
    channel_retries: int = 3
    #: Base of the exponential backoff between channel retries (s).
    channel_backoff: float = 0.01
    # -- process-isolated worker pool (isolation="process") ------------
    #: Crash-retry budget per batch fingerprint before quarantine.
    #: None leaves the adapter pool's own setting untouched.
    worker_max_batch_retries: Optional[int] = None
    #: Quarantine outcome: "degrade" (in-process fallback) | "fail"
    #: (typed BatchQuarantinedError).  None: leave pool setting.
    worker_quarantine_policy: Optional[str] = None
    #: Pool-wide worker restart budget.  None: leave pool setting.
    worker_max_restarts: Optional[int] = None
    #: Per-worker RLIMIT_AS memory cap (MB), applied to workers started
    #: after configuration.  None: leave pool setting.
    worker_memory_limit_mb: Optional[int] = None
    #: Pool-enforced per-batch wall-clock cap (s) independent of query
    #: governance.  None: leave pool setting.
    worker_batch_timeout_s: Optional[float] = None
    # -- columnar data plane (typed buffers + morsel parallelism) -------
    #: Master switch for the typed-buffer data plane (batch kernels and
    #: morsel-sharded operators).  None: leave the adapter's setting
    #: (enabled via ``adapter.enable_columnar()`` or constructor knobs);
    #: True attaches/enables a policy; False disables an attached one.
    morsel_enabled: Optional[bool] = None
    #: Rows per morsel (scheduler shard + kernel governance chunk).
    #: None: leave the policy's current value.
    morsel_size: Optional[int] = None
    #: Morsel worker threads (1 = serial sharding, no thread pool).
    #: None: leave the policy's current value.
    morsel_threads: Optional[int] = None
    #: Ship UDF batches to workers/channel as typed out-of-band buffers
    #: instead of object-list pickling.  None: leave current setting.
    buffer_transport: Optional[bool] = None
    # -- query lifecycle governance ------------------------------------
    #: Whole-query wall-clock deadline (s); None disables (legacy).
    query_timeout_s: Optional[float] = None
    #: Per-batch UDF wall-clock cap (s) enforced by the watchdog; a batch
    #: (or single tuple-at-a-time call) exceeding it times out even if
    #: the query deadline has slack left.  None disables.
    udf_batch_timeout_s: Optional[float] = None
    #: Approximate cap on rows flowing through governed checkpoints;
    #: None disables.
    row_budget: Optional[int] = None
    #: On a fused-path timeout attributable to a fused trace, de-optimize
    #: and retry unfused once (when deadline slack remains).
    timeout_deopt_retry: bool = True
    #: Bounded admission control: max concurrently executing queries
    #: through one QFusor; None disables the gate.
    max_concurrent_queries: Optional[int] = None
    #: How long an arriving query waits in the admission queue before it
    #: is shed with AdmissionTimeoutError; None waits forever.
    admission_timeout_s: Optional[float] = None
    # -- per-UDF circuit breakers --------------------------------------
    #: Master switch for per-UDF sliding-window circuit breakers.
    breaker_enabled: bool = False
    #: Sliding-window size (boundary invocations) per UDF.
    breaker_window: int = 32
    #: Minimum observations before a breaker may trip.
    breaker_min_calls: int = 8
    #: Failure-rate trip threshold over the window.
    breaker_failure_threshold: float = 0.5
    #: p95 per-tuple latency trip threshold (s); None disables.
    breaker_latency_threshold_s: Optional[float] = None
    #: OPEN -> HALF_OPEN cooldown (s).
    breaker_cooldown_s: float = 30.0
    #: What an open breaker means: "unfused" (bypass fusion for queries
    #: referencing the UDF) or "fail_fast" (raise CircuitOpenError).
    breaker_policy: str = "unfused"
    # -- multi-tier caching subsystem (repro.cache) --------------------
    #: Plan cache: normalized-SQL fingerprint -> parsed/planned/fused
    #: pipeline; a hot query skips parse/plan/fuse entirely.
    plan_cache: bool = False
    #: Bounded LRU capacity of the plan cache.
    plan_cache_capacity: int = 256
    #: UDF memoization: per-(udf, definition-version) LRU over batch
    #: inputs.  Only UDFs explicitly annotated ``deterministic=True``
    #: participate; admission is cost-aware via the StatsStore.
    udf_memo: bool = False
    #: Bounded LRU capacity of the UDF memo cache (entries).
    udf_memo_capacity: int = 1024
    #: Expected per-tuple cost (s) below which a UDF is never memoized.
    udf_memo_min_cost_s: float = 1e-6
    #: Query result cache keyed by (SQL fingerprint, table snapshot
    #: epochs, UDF definition versions, config fingerprint).
    result_cache: bool = False
    #: Bounded LRU capacity of the result cache (entries).
    result_cache_capacity: int = 128
    #: Single-flight dogpile protection: concurrent identical queries
    #: elect one leader; the rest share its result.
    single_flight: bool = True
    #: Cache isolation scope (the multi-tenant service sets this to the
    #: tenant id).  Folded into every plan/result cache key, so two
    #: QFusor instances that happened to share cache state could still
    #: never serve one tenant's rows to another.  None: unscoped.
    cache_scope: Optional[str] = None
    # -- Froid-style UDF-to-SQL translation (repro.sql.translate) ------
    #: Compile simple scalar UDFs into SQL expressions ahead of fusion;
    #: when every UDF reference in a statement translates, the UDF
    #: boundary is skipped entirely.  Untranslatable statements fall
    #: back to the fusion/JIT ladder unchanged.
    translate_enabled: bool = False
    #: Verify every accepted translation against the Python function
    #: over a probe battery at translate time; a mismatch rejects the
    #: translation instead of risking wrong answers.
    translate_self_check: bool = True
    #: Depth bound for inlining calls to other translatable UDFs.
    translate_max_inline_depth: int = 3

    def ablated(self, **changes) -> "QFusorConfig":
        """A copy with the given switches changed (for ablation benches)."""
        return replace(self, **changes)

    @classmethod
    def disabled(cls) -> "QFusorConfig":
        """Baseline: no JIT, no fusion — native UDF execution."""
        return cls(enabled=False, jit=False, fuse_udfs=False,
                   offload_relational=False, offload_aggregations=False,
                   reorder=False, inline=False, trace_cache=False)

    @classmethod
    def jit_only(cls) -> "QFusorConfig":
        """JIT-compiled UDFs but no fusion (Fig. 6a technique b)."""
        return cls(fuse_udfs=False, offload_relational=False,
                   offload_aggregations=False, reorder=False)

    @classmethod
    def fusion_no_offload(cls) -> "QFusorConfig":
        """UDF-only fusion: scalar+table chains, no relational offload
        (Fig. 6a technique c)."""
        return cls(offload_relational=False, offload_aggregations=False)

    @classmethod
    def no_aggregation_offload(cls) -> "QFusorConfig":
        """Everything except aggregation offload (Fig. 6a technique d)."""
        return cls(offload_aggregations=False)

    @classmethod
    def cached(cls, **changes) -> "QFusorConfig":
        """Full system plus every cache tier (plan + UDF memo + result)."""
        config = cls(plan_cache=True, udf_memo=True, result_cache=True)
        return replace(config, **changes) if changes else config

    @classmethod
    def translated(cls, **changes) -> "QFusorConfig":
        """Full system plus Froid-style UDF-to-SQL translation."""
        config = cls(translate_enabled=True)
        return replace(config, **changes) if changes else config

    @classmethod
    def yesql_like(cls) -> "QFusorConfig":
        """The YeSQL profile: tracing JIT plus scalar-only fusion, no
        relational offloading, no table/aggregate fusion."""
        return cls(fuse_nonscalar=False, offload_relational=False,
                   offload_aggregations=False, reorder=False)
