"""Cold-start fusion heuristics (paper section 5.2.4).

When a UDF has no execution statistics yet, the cost model's posterior is
all prior; rather than trusting it, FO falls back on rules distilled from
"common practices and extensive experimentation":

1. fuse all fusible scalar, aggregate, and table UDFs;
2. fuse a filter with its dependent UDF(s) if the filter is not highly
   selective (filters out less than ~20% of its input);
3. fuse group-by operators when possible;
4. fuse a distinct only when highly selective (drops more than ~90%);
5. never fuse joins and sorts — the gain is minimal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence

from ..resilience.blocklist import FusionBlocklist
from .config import QFusorConfig
from .cost import CostModel
from .dfg import Operator

__all__ = ["Heuristics"]


@dataclass
class Heuristics:
    """Rule-based fusion decisions, used when statistics are missing and
    blended with the cost model otherwise (the paper's hybrid strategy)."""

    config: QFusorConfig
    cost_model: CostModel
    #: Sections that de-optimized at runtime sit out fusion for a
    #: cooldown period (rule 0: never immediately re-fuse a trace that
    #: just failed).
    blocklist: FusionBlocklist = field(default_factory=FusionBlocklist)

    # -- rule 0 ----------------------------------------------------------

    def allow_fusion(self, signature_key: Hashable) -> bool:
        """False while the pipeline's signature is blocklisted after a
        runtime de-optimization."""
        return not self.blocklist.is_blocked(signature_key)

    # -- rule 1 ----------------------------------------------------------

    def should_fuse_udf_chain(self, ops: Sequence[Operator]) -> bool:
        """F1 chains: always fuse — eliminates wrapping cost and lengthens
        JIT traces (section 5.2.3 says FO *always* recommends this)."""
        return self.config.fuse_udfs and len(ops) >= 1

    # -- rule 2 ----------------------------------------------------------

    def should_fuse_filter(
        self,
        filter_op: Operator,
        udf_ops: Sequence[Operator],
        keep_fraction: Optional[float] = None,
    ) -> bool:
        """Filter + UDF fusion (an F2 case).

        With statistics: the F2 inequality.  Without: the rule-based
        threshold on the filter's selectivity.
        """
        if not self.config.offload_relational:
            return False
        have_stats = all(
            self.cost_model.stats.known(u.name) for u in udf_ops if u.is_udf
        )
        if self.config.cost_based and have_stats:
            return self.cost_model.should_offload(
                filter_op, list(udf_ops), rel_selectivity=keep_fraction
            )
        if keep_fraction is None:
            keep_fraction = 0.33  # planner default
        return keep_fraction >= self.config.filter_fusion_min_keep

    # -- rule 3 ----------------------------------------------------------

    def should_fuse_groupby(self) -> bool:
        return self.config.offload_aggregations

    def should_fuse_aggregation(self, agg_op: Operator) -> bool:
        """Offload a builtin aggregation (sum/count/...) into the fused
        UDF; blocking aggregates (median) never fuse (Table 3)."""
        if not self.config.offload_aggregations:
            return False
        from .relops import BLOCKING_AGGREGATES

        return agg_op.name not in BLOCKING_AGGREGATES

    # -- rule 4 ----------------------------------------------------------

    def should_fuse_distinct(self, drop_fraction: Optional[float] = None) -> bool:
        if not self.config.offload_relational:
            return False
        if drop_fraction is None:
            drop_fraction = 0.5  # planner default
        return drop_fraction >= self.config.distinct_fusion_min_drop

    # -- rule 5 ----------------------------------------------------------

    def should_fuse_join(self) -> bool:
        return False

    def should_fuse_sort(self) -> bool:
        return False
