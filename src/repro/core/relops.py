"""Relational operators as fusible operators (paper Table 3).

Each relational operator is classified as scalar, aggregate, or
table-returning, with a loop-fusibility flag.  The classification guides
both the fusion optimizer (which operators may join a fusible section)
and code generation (which may run them inside the fused hot loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["RelOpInfo", "REL_OPS", "classify", "is_offloadable", "is_loop_fusible"]


@dataclass(frozen=True)
class RelOpInfo:
    """Classification of one relational operator (one row of Table 3)."""

    name: str
    kind: str  # scalar | aggregate | table
    loop_fusible: bool
    signature: str  # human-readable input -> output
    #: QFusor can offload this operator into the UDF environment (either
    #: rewritten in Python or via exported engine internals).
    offloadable: bool = True


#: Table 3 of the paper, verbatim.
REL_OPS: Dict[str, RelOpInfo] = {
    info.name: info
    for info in [
        RelOpInfo("filter", "scalar", True, "row -> bool"),
        RelOpInfo("inner join", "scalar", True, "row1, row2 -> bool",
                  offloadable=False),  # heuristics: avoid fusing joins
        RelOpInfo("distinct", "table", True, "resultset1 -> resultset2"),
        RelOpInfo("case", "scalar", True, "row -> row"),
        RelOpInfo("order by", "table", False, "resultset1 -> resultset2",
                  offloadable=False),  # heuristics: avoid fusing sorts
        RelOpInfo("group by", "table", False, "resultset1 -> resultset2"),
        RelOpInfo("pipelined aggregate", "aggregate", True, "resultset -> row"),
        RelOpInfo("blocking aggregate", "aggregate", False, "resultset -> row"),
        RelOpInfo("union all", "table", True,
                  "resultset1, resultset2 -> resultset"),
        RelOpInfo("union", "table", False,
                  "resultset1, resultset2 -> resultset", offloadable=False),
        RelOpInfo("arithmetic", "scalar", True, "row -> row"),
        RelOpInfo("pivot", "table", False, "resultset1 -> resultset2",
                  offloadable=False),
        RelOpInfo("is null", "scalar", True, "row -> bool"),
        RelOpInfo("between", "scalar", True, "row -> bool"),
        RelOpInfo("like", "scalar", True, "row -> bool"),
        RelOpInfo("cast", "scalar", True, "row -> row"),
        RelOpInfo("limit", "table", True, "resultset1 -> resultset2",
                  offloadable=False),
    ]
}

#: Builtin pipelined aggregates eligible for in-UDF offloading.
PIPELINED_AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})
#: Builtin blocking aggregates (materialize input; never loop-fused).
BLOCKING_AGGREGATES = frozenset({"median", "stddev"})


def classify(name: str) -> Optional[RelOpInfo]:
    """Look up a relational operator's classification."""
    key = name.lower()
    if key in PIPELINED_AGGREGATES:
        return REL_OPS["pipelined aggregate"]
    if key in BLOCKING_AGGREGATES:
        return REL_OPS["blocking aggregate"]
    return REL_OPS.get(key)


def is_offloadable(name: str) -> bool:
    """Can QFusor run this operator inside the UDF environment at all?"""
    info = classify(name)
    return info is not None and info.offloadable


def is_loop_fusible(name: str) -> bool:
    """May this operator execute inside the fused hot loop?"""
    info = classify(name)
    return info is not None and info.loop_fusible
