"""The cache manager: three coordinated tiers behind one facade.

``CacheManager`` owns the plan cache, the UDF memoization cache, and the
query result cache for one :class:`~repro.core.qfusor.QFusor`, derives
every key through :mod:`repro.cache.fingerprint`, performs
snapshot-epoch/version bookkeeping, and reports hits, misses, stores,
and single-flight events into ``repro_cache_*`` metrics, trace events,
and ``QFusorReport.cache_events``.

The manager is deliberately engine-agnostic: it reaches the adapter only
through ``registry`` (UDF versions, memo attachment) and ``catalog``
(table schemas and snapshot epochs), both of which every adapter
exposes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from . import fingerprint
from .memo import UdfMemoCache
from .plan_cache import PlanCache, PlanEntry
from .result_cache import ResultCache

__all__ = ["CacheManager", "CacheEvent", "ResultKey"]


@dataclass
class CacheEvent:
    """One cache interaction, recorded onto the query report."""

    tier: str    # "plan" | "udf_memo" | "result" | "trace"
    action: str  # "hit" | "miss" | "store" | "shared" | "lead" | "skip"
    detail: str = ""

    def __repr__(self) -> str:  # compact in report dumps
        suffix = f" {self.detail}" if self.detail else ""
        return f"<cache {self.tier}:{self.action}{suffix}>"


@dataclass
class ResultKey:
    """A fully-derived result-cache key plus its eligibility context."""

    key: Tuple
    is_udf_query: bool


class CacheManager:
    """Plan / UDF-memo / result caches for one QFusor client."""

    def __init__(self, adapter: Any, config: Any):
        self.adapter = adapter
        self.config = config
        self._config_fp = fingerprint.config_fingerprint(config)
        #: Tenant/cache isolation scope: an explicit key element (beyond
        #: its participation in the config fingerprint) so scoped entries
        #: are structurally unreachable from any other scope.
        self.scope = getattr(config, "cache_scope", None)
        self.plan: Optional[PlanCache] = (
            PlanCache(config.plan_cache_capacity)
            if config.plan_cache else None
        )
        self.memo: Optional[UdfMemoCache] = (
            UdfMemoCache(
                config.udf_memo_capacity,
                min_cost_s=config.udf_memo_min_cost_s,
            )
            if config.udf_memo else None
        )
        self.results: Optional[ResultCache] = (
            ResultCache(
                config.result_cache_capacity,
                single_flight=config.single_flight,
            )
            if config.result_cache else None
        )
        if self.memo is not None:
            adapter.registry.memo = self.memo
        # UDF version bumps invalidate dependent memo entries eagerly
        # (result/plan entries rotate by key, but memo entries for the
        # old version would otherwise linger until evicted).
        adapter.registry.add_version_listener(self._on_udf_version)

    # ------------------------------------------------------------------
    # Activity / lifecycle
    # ------------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Any tier enabled?  The disabled path costs this one check."""
        return (
            self.plan is not None
            or self.memo is not None
            or self.results is not None
        )

    def _on_udf_version(self, name: str, version: int) -> None:
        if self.memo is not None:
            self.memo.invalidate_udf(name)

    def clear(self) -> None:
        for tier in (self.plan, self.memo, self.results):
            if tier is not None:
                tier.clear()

    # ------------------------------------------------------------------
    # Catalog access
    # ------------------------------------------------------------------

    def _catalog(self):
        catalog = getattr(self.adapter, "catalog", None)
        if catalog is not None:
            return catalog
        database = getattr(self.adapter, "database", None)
        if database is not None:
            return database.catalog
        return None

    # ------------------------------------------------------------------
    # Write tracking (snapshot-epoch invalidation)
    # ------------------------------------------------------------------

    def note_write(self, statement: Any) -> None:
        """Bump the snapshot epoch of every table a DML statement writes.

        Engines whose DML flows through :class:`~repro.storage.catalog.
        Catalog` (the minidb family) bump epochs on their own; this hook
        covers engines with external storage (the sqlite3 adapter), where
        an INSERT executes inside the engine without touching our
        catalog.  Double bumps are harmless — epochs only need to move.
        """
        catalog = self._catalog()
        if catalog is None:
            return
        for name in fingerprint.written_tables(statement):
            catalog.touch(name)
        if OBS.tracing:
            written = fingerprint.written_tables(statement)
            if written:
                obs_tracer.add_event(
                    "cache_epoch_bump", tables=",".join(written)
                )

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    def _referenced_udf_versions(
        self, udf_names: Sequence[str]
    ) -> Optional[Tuple]:
        """((name, version, deterministic), ...) or None when any
        referenced UDF is not annotated deterministic."""
        registry = self.adapter.registry
        versions = []
        for name in udf_names:
            registered = registry.lookup(name)
            if registered is None:
                continue
            if not registered.definition.deterministic_annotated:
                return None
            versions.append((name, registered.version))
        return tuple(versions)

    def _table_epochs(self, tables: Sequence[str]) -> Optional[Tuple]:
        catalog = self._catalog()
        if catalog is None:
            return None
        epochs = []
        for name in tables:
            if name not in catalog:
                return None  # unknown table: let execution raise normally
            epochs.append((name, catalog.epoch(name)))
        return tuple(epochs)

    def _table_schemas(self, tables: Sequence[str]) -> Optional[Tuple]:
        catalog = self._catalog()
        if catalog is None:
            return None
        schemas = []
        for name in tables:
            if name not in catalog:
                return None
            schema = catalog.get(name).schema
            schemas.append((name, fingerprint.digest(repr(schema))))
        return tuple(schemas)

    def result_key(
        self, statement: Any, sql_text: str, udf_names: Sequence[str]
    ) -> Optional[ResultKey]:
        """Derive the result-cache key, or None when ineligible.

        Eligible: result tier enabled, the statement is a SELECT over
        known tables, and every referenced UDF is explicitly annotated
        deterministic (unannotated UDFs conservatively disqualify)."""
        if self.results is None:
            return None
        tables = fingerprint.statement_tables(statement)
        if tables is None:
            return None  # not a SELECT
        epochs = self._table_epochs(tables)
        if epochs is None:
            return None
        versions = self._referenced_udf_versions(udf_names)
        if versions is None:
            return None
        catalog = self._catalog()
        # Database generation: bumped by every durability recovery, so a
        # cache that outlives an adapter restart (warm service restart)
        # can never serve an entry keyed before the crash — even if an
        # unlogged in-memory epoch bump died with the old process.
        generation = getattr(catalog, "generation", 0) if catalog else 0
        key = (
            self.scope,
            self.adapter.name,
            generation,
            fingerprint.sql_fingerprint(statement),
            epochs,
            versions,
            self._config_fp,
        )
        return ResultKey(key=key, is_udf_query=bool(udf_names))

    def plan_key(
        self, statement: Any, udf_names: Sequence[str]
    ) -> Optional[Tuple]:
        """Derive the plan-cache key, or None when ineligible.

        Unlike result keys, plan keys use table *schema* fingerprints
        (plans survive data changes) and do not require determinism
        annotations (a plan is not a result — replanning the same text
        yields the same plan regardless of UDF purity)."""
        if self.plan is None:
            return None
        tables = fingerprint.statement_tables(statement)
        if tables is None:
            return None
        schemas = self._table_schemas(tables)
        if schemas is None:
            return None
        registry = self.adapter.registry
        versions = tuple(
            (name, registry.version_of(name)) for name in udf_names
        )
        return (
            self.scope,
            self.adapter.name,
            fingerprint.sql_fingerprint(statement),
            schemas,
            versions,
            self._config_fp,
        )

    # ------------------------------------------------------------------
    # Tier operations (with event/report bookkeeping)
    # ------------------------------------------------------------------

    def record(self, report: Any, tier: str, action: str, detail: str = ""):
        event = CacheEvent(tier=tier, action=action, detail=detail)
        if report is not None:
            report.cache_events.append(event)
        if OBS.tracing:
            obs_tracer.add_event(
                f"cache_{action}", tier=tier, detail=detail
            )
        return event

    def plan_lookup(self, key: Tuple, report: Any) -> Optional[PlanEntry]:
        entry = self.plan.lookup(key, self.adapter.registry)
        self.record(
            report, "plan", "hit" if entry is not None else "miss"
        )
        return entry

    def plan_store(self, key: Tuple, entry: PlanEntry, report: Any) -> None:
        self.plan.store(key, entry)
        self.record(report, "plan", "store")

    def plan_invalidate(self, key: Tuple, report: Any) -> None:
        if self.plan is not None and self.plan.invalidate(key):
            self.record(report, "plan", "invalidate")

    def result_get_or_execute(
        self,
        rkey: ResultKey,
        report: Any,
        execute: Callable[[], Tuple[Any, bool]],
    ) -> Tuple[Any, str]:
        return self.results.get_or_execute(
            rkey.key,
            execute,
            on_event=lambda action: self.record(report, "result", action),
        )

    @staticmethod
    def storeable(report: Any) -> bool:
        """Population policy: only clean, undegraded runs are cached.

        A run that de-optimized, recovered rows, bypassed an open
        breaker, or saw channel/worker incidents may have produced
        policy-dependent output (and signals instability regardless);
        fault-injection runs never populate.
        """
        from ..resilience import runtime

        if runtime.FAULTS.armed:
            return False
        return not (
            report.deopt_events
            or report.row_events
            or report.breaker_bypass
            or report.channel_events
            or report.worker_events
        )
