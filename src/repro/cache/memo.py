"""Tier 2: per-UDF batch memoization with cost-aware admission.

Deterministic UDFs are algebraically transparent (the Froid premise), so
a batch of inputs seen before can be answered from memory.  Memoization
is only worth its hashing cost for UDFs whose per-tuple cost is high
enough; the admission policy consults the same
:class:`~repro.udf.state.StatsStore` cost posteriors the fusion
optimizer uses (the GRACEFUL-style cost signal), so cheap UDFs are never
memoized.

Keys are ``(name, definition-version, row-policy, input-fingerprint)``:
re-registering a changed definition bumps the version, orphaning every
stale entry, and the row-error policy participates because a recovered
row can legally yield policy-dependent output.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..obs import METRICS, OBS
from . import fingerprint
from .lru import LruMap

__all__ = ["UdfMemoCache"]

_MISSING = object()


class UdfMemoCache:
    """Bounded LRU over UDF batch invocations.

    Attached to a :class:`~repro.udf.registry.UdfRegistry` as
    ``registry.memo``; the registry's scalar call paths consult it before
    crossing the UDF boundary.
    """

    def __init__(
        self,
        capacity: int = 1024,
        *,
        min_cost_s: float = 1e-6,
        max_batch_rows: int = 65536,
    ):
        self._entries = LruMap(capacity)
        #: Expected per-tuple cost (s) below which a UDF is never
        #: admitted — hashing inputs would cost more than the call.
        self.min_cost_s = min_cost_s
        #: Batches larger than this are never memoized (value weight).
        self.max_batch_rows = max_batch_rows
        self.stores = 0

    # ------------------------------------------------------------------
    # Admission + key derivation
    # ------------------------------------------------------------------

    def eligible(self, registered: Any) -> bool:
        """Memo-safety: only UDFs explicitly annotated deterministic.

        Fused UDFs inherit eligibility from every user UDF they were
        generated from (relational stages are deterministic by
        construction)."""
        registry = registered._registry
        definition = registered.definition
        if definition.is_fused:
            for source in definition.fused_from:
                origin = registry.lookup(source)
                if origin is None:
                    continue  # a relational stage, not a UDF
                if not origin.definition.deterministic_annotated:
                    return False
            return True
        return definition.deterministic_annotated

    def admitted(self, registered: Any, size: int) -> bool:
        """Cost-aware admission: is memoization worth the hashing?"""
        if size > self.max_batch_rows:
            return False
        if not self.eligible(registered):
            return False
        registry = registered._registry
        return registry.stats.expected_cost(registered.name) >= self.min_cost_s

    def batch_key(
        self, registered: Any, inputs: Any, size: int
    ) -> Optional[Tuple]:
        """Key for a vectorized scalar batch, or None when not admitted."""
        from ..resilience import runtime

        if runtime.FAULTS.armed:
            return None  # fault-injection runs must execute for real
        if not self.admitted(registered, size):
            return None
        name = registered.name
        return (
            name,
            registered.version,
            runtime.policy(),
            size,
            fingerprint.value_fingerprint(inputs),
        )

    def value_key(self, registered: Any, args: Any) -> Optional[Tuple]:
        """Key for one tuple-at-a-time invocation, or None."""
        from ..resilience import runtime

        if runtime.FAULTS.armed:
            return None
        if not self.admitted(registered, 1):
            return None
        return (
            registered.name,
            registered.version,
            runtime.policy(),
            1,
            fingerprint.value_fingerprint(args),
        )

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def lookup(self, key: Tuple) -> Tuple[bool, Any]:
        """``(hit, value)`` — the flag disambiguates memoized ``None``s."""
        value = self._entries.get(key, _MISSING)
        hit = value is not _MISSING
        if OBS.metrics:
            METRICS.counter(
                "repro_cache_hits_total" if hit else "repro_cache_misses_total",
                tier="udf_memo",
            ).inc()
        return (True, value) if hit else (False, None)

    def put(self, key: Tuple, value: Any) -> None:
        before = self._entries.evictions
        self._entries.put(key, value)
        self.stores += 1
        if OBS.metrics and self._entries.evictions != before:
            METRICS.counter(
                "repro_cache_evictions_total", tier="udf_memo"
            ).inc()

    def invalidate_udf(self, name: str) -> int:
        """Drop every entry of one UDF (any version)."""
        name = name.lower()
        dropped = self._entries.pop_matching(lambda key: key[0] == name)
        if dropped and OBS.metrics:
            METRICS.counter(
                "repro_cache_invalidations_total", tier="udf_memo"
            ).inc(dropped)
        return dropped

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses

    @property
    def evictions(self) -> int:
        return self._entries.evictions

    def __len__(self) -> int:
        return len(self._entries)
