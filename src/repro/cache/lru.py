"""A thread-safe bounded LRU map shared by every cache tier."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, List, Optional, Tuple

__all__ = ["LruMap"]

_MISSING = object()


class LruMap:
    """Bounded least-recently-used mapping with tier statistics.

    All operations are O(1) and thread-safe.  ``capacity=None`` means
    unbounded (used only by tests); every production tier passes a bound
    so repeated-query workloads cannot grow memory without limit.
    """

    def __init__(self, capacity: Optional[int] = None):
        self.capacity = capacity if capacity is None else max(1, int(capacity))
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Lookup without touching recency or statistics."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self.capacity is not None and len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def pop(self, key: Hashable) -> bool:
        """Drop one entry; True when something was removed."""
        with self._lock:
            if self._entries.pop(key, _MISSING) is _MISSING:
                return False
            self.invalidations += 1
            return True

    def pop_matching(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [k for k in self._entries if predicate(k)]
            for key in doomed:
                del self._entries[key]
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def items(self) -> List[Tuple[Hashable, Any]]:
        with self._lock:
            return list(self._entries.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
