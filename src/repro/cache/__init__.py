"""repro.cache — the multi-tier caching subsystem.

Three coordinated tiers behind one :class:`CacheManager` (Fig. 6d's
"cache" lever generalized beyond compiled traces):

* **plan cache** (:mod:`repro.cache.plan_cache`) — normalized-SQL
  fingerprint → parsed/planned/fused pipeline; a hot query skips
  parse/plan/fuse entirely;
* **UDF memo cache** (:mod:`repro.cache.memo`) — per
  ``(udf, definition-version)`` bounded LRU over batch inputs, with
  cost-aware admission from the StatsStore posteriors;
* **result cache** (:mod:`repro.cache.result_cache`) — query
  fingerprint + table snapshot epochs + UDF versions + config
  fingerprint → result table, with single-flight dogpile protection.

:mod:`repro.cache.fingerprint` is the single source of identity for all
tiers (and for the compiled-trace cache and fusion blocklist), so the
caches can never disagree on what "the same query" means.
"""

from . import fingerprint
from .lru import LruMap
from .manager import CacheEvent, CacheManager, ResultKey
from .memo import UdfMemoCache
from .plan_cache import PlanCache, PlanEntry
from .result_cache import MISS, ResultCache

__all__ = [
    "fingerprint",
    "LruMap",
    "CacheEvent",
    "CacheManager",
    "ResultKey",
    "UdfMemoCache",
    "PlanCache",
    "PlanEntry",
    "ResultCache",
    "MISS",
]
