"""Tier 1: the plan cache.

A hot query re-arriving as text pays parse + EXPLAIN probe + DFG + DP +
fusion + (trace-cached) registration on every execution.  The plan cache
stores the finished product — the original planned query, the fused
plan (path 2) or rewritten statement (path 1), and the fused artifacts —
keyed by the normalized-SQL fingerprint plus everything the product
depends on: config fingerprint, referenced-UDF versions, and
referenced-table *schema* fingerprints.

Data-only DML deliberately does **not** invalidate plan entries (any
valid plan stays correct when rows change); schema changes and UDF
re-registrations rotate the key.  A hit is re-validated against the
registry — de-optimization drops fused UDFs, turning stale hits into
misses instead of dispatching plans over dropped functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from ..obs import METRICS, OBS
from .lru import LruMap

__all__ = ["PlanCache", "PlanEntry"]


@dataclass
class PlanEntry:
    """Everything needed to skip parse/plan/fuse on a repeat query."""

    #: "plan" (path 2: direct plan dispatch), "sql" (path 1: rewrite),
    #: or "translated" (UDF-to-SQL translation: no UDF boundary at all).
    kind: str
    #: The engine's original (unfused) plan — the de-optimization target.
    original: Any = None
    #: The fused plan dispatched on a hit (path 2).
    fused_planned: Any = None
    #: The rewritten statement resubmitted on a hit (path 1 / DML).
    rewritten: Any = None
    #: Fused artifacts (:class:`~repro.jit.codegen.FusedUdf`), for the
    #: report and for registry re-validation.
    fused: List[Any] = field(default_factory=list)
    sections: List[Any] = field(default_factory=list)
    plan_before: str = ""
    plan_after: str = ""
    #: Names of UDFs compiled away by translation (kind="translated");
    #: they must still be registered for the entry to stay valid — a
    #: dropped or re-registered UDF rotates the key or fails validation.
    translated: List[str] = field(default_factory=list)

    def fused_names(self) -> List[str]:
        return [f.definition.name for f in self.fused]

    def required_udfs(self) -> List[str]:
        """Every UDF that must still be registered for a valid hit."""
        return self.fused_names() + list(self.translated)


class PlanCache:
    """Bounded LRU of :class:`PlanEntry` keyed by pipeline identity."""

    def __init__(self, capacity: int = 256):
        self._entries = LruMap(capacity)

    def lookup(self, key: Tuple, registry: Any) -> Optional[PlanEntry]:
        """A validated entry, or None.

        Validation: every fused UDF the entry references must still be
        registered (runtime de-optimization unregisters them).  A stale
        entry is dropped so the normal pipeline — and its blocklist
        consultation — decides afresh.
        """
        entry = self._entries.get(key)
        hit = entry is not None
        if hit:
            for name in entry.required_udfs():
                if registry.lookup(name) is None:
                    self._entries.pop(key)
                    entry, hit = None, False
                    break
        if OBS.metrics:
            METRICS.counter(
                "repro_cache_hits_total" if hit else "repro_cache_misses_total",
                tier="plan",
            ).inc()
        return entry

    def store(self, key: Tuple, entry: PlanEntry) -> None:
        before = self._entries.evictions
        self._entries.put(key, entry)
        if OBS.metrics and self._entries.evictions != before:
            METRICS.counter("repro_cache_evictions_total", tier="plan").inc()

    def invalidate(self, key: Tuple) -> bool:
        """Drop one entry (a runtime deopt disproved the cached plan)."""
        return self._entries.pop(key)

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses

    def __len__(self) -> int:
        return len(self._entries)
