"""Shared identity derivation for every cache tier.

Each cache in the system — the compiled-trace cache, the plan cache, the
UDF memoization cache, and the query result cache — needs a notion of
"the same thing".  Deriving those identities in one module guarantees the
tiers can never disagree: a plan-cache key embeds the same normalized SQL
fingerprint the result cache uses, a memo key embeds the same definition
version the result cache checks, and the trace cache's structural key is
produced by the same function the fusion blocklist consults.

All fingerprints are deterministic across processes (no ``id()``, no
``hash()`` randomization): they are SHA-1 digests over canonical reprs.
"""

from __future__ import annotations

import hashlib
from typing import Any, Hashable, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "digest",
    "normalize_sql",
    "sql_fingerprint",
    "config_fingerprint",
    "definition_fingerprint",
    "trace_key",
    "value_fingerprint",
    "statement_tables",
    "written_tables",
]


def digest(payload: Any) -> str:
    """A short stable hex digest of an arbitrary canonicalizable value."""
    return hashlib.sha1(_canonical(payload).encode("utf-8")).hexdigest()[:16]


def _canonical(value: Any) -> str:
    """A deterministic textual form (dict order normalized, enums by
    name, callables by code identity rather than object identity)."""
    if isinstance(value, dict):
        items = sorted((str(k), _canonical(v)) for k, v in value.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if callable(value):
        return _callable_token(value)
    return repr(value)


def _callable_token(func: Any) -> str:
    """Identity of a callable by *content* (bytecode + consts), so a
    re-registered function with a changed body fingerprints differently
    while a byte-identical redefinition does not."""
    code = getattr(func, "__code__", None)
    if code is None:
        # Classes (aggregate UDFs): token over their method codes.
        parts: List[str] = [getattr(func, "__name__", type(func).__name__)]
        for attr in ("__init__", "step", "final", "__call__"):
            method = getattr(func, attr, None)
            method_code = getattr(method, "__code__", None)
            if method_code is not None:
                parts.append(_code_token(method_code))
        return "<class:" + "|".join(parts) + ">"
    return "<fn:" + _code_token(code) + ">"


def _code_token(code: Any) -> str:
    consts = tuple(
        _code_token(c) if hasattr(c, "co_code") else repr(c)
        for c in code.co_consts
    )
    return hashlib.sha1(
        (repr(code.co_code) + repr(consts) + repr(code.co_names)).encode()
    ).hexdigest()[:12]


# ----------------------------------------------------------------------
# SQL and configuration identity
# ----------------------------------------------------------------------


def normalize_sql(statement: Any) -> str:
    """Canonical SQL text: parse + re-print, so formatting, case of
    keywords, and redundant whitespace cannot split cache entries.

    Accepts SQL text or an already-parsed statement.  Unparseable text
    falls back to whitespace-collapsed form (still deterministic)."""
    from ..sql import ast_nodes as ast
    from ..sql.parser import parse
    from ..sql.printer import to_sql

    if isinstance(statement, ast.Node):
        return to_sql(statement)
    try:
        return to_sql(parse(statement))
    except Exception:
        return " ".join(str(statement).split())


def sql_fingerprint(statement: Any) -> str:
    """Fingerprint of the normalized SQL text."""
    return digest(normalize_sql(statement))


def config_fingerprint(config: Any) -> str:
    """Fingerprint of a :class:`~repro.core.config.QFusorConfig` (or any
    dataclass-like object): every public field participates, so two
    QFusor instances with different switches never share entries."""
    fields = getattr(config, "__dataclass_fields__", None)
    if fields is not None:
        payload = {name: getattr(config, name) for name in fields}
    else:
        payload = {
            k: v for k, v in vars(config).items() if not k.startswith("_")
        }
    return digest(payload)


def definition_fingerprint(definition: Any) -> str:
    """Content identity of a UDF definition: name, kind, signature, and
    the *bytecode* of its callable — a re-registered UDF with a changed
    body fingerprints differently, driving the version bump."""
    return digest(
        (
            definition.name,
            str(definition.kind),
            repr(definition.signature),
            definition.out_columns,
            definition.strict,
            definition.deterministic,
            definition.func,
        )
    )


# ----------------------------------------------------------------------
# Trace identity (the compiled-trace cache + fusion blocklist)
# ----------------------------------------------------------------------


def trace_key(signature_key: Iterable) -> Tuple:
    """The canonical structural identity of a fused pipeline.

    Both the :class:`~repro.jit.cache.TraceCache` and the fusion
    blocklist derive their keys through this function, so a blocklisted
    section and its cached trace can never disagree on identity."""
    return tuple(signature_key)


# ----------------------------------------------------------------------
# Value identity (the UDF memoization cache)
# ----------------------------------------------------------------------


def value_fingerprint(values: Any) -> str:
    """Digest of a batch of UDF input values (columns or scalars)."""
    return hashlib.sha1(_value_repr(values).encode("utf-8")).hexdigest()[:16]


def _value_repr(value: Any) -> str:
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_value_repr(v) for v in value) + "]"
    to_list = getattr(value, "to_list", None)
    if to_list is not None:  # a storage Column
        return _value_repr(to_list())
    return repr(value)


# ----------------------------------------------------------------------
# Statement analysis (tables a query reads / a DML statement writes)
# ----------------------------------------------------------------------


def statement_tables(statement: Any) -> Optional[List[str]]:
    """Lower-cased base-table names a SELECT reads, or ``None`` when the
    statement's reads cannot be enumerated (conservatively uncacheable).

    CTE names defined by the statement itself are excluded — they are
    not base tables and carry no snapshot epoch."""
    from ..sql import ast_nodes as ast

    if not isinstance(statement, ast.Select):
        return None
    names: List[str] = []
    ctes: set = set()

    def walk_select(select: ast.Select) -> None:
        for cte_name, cte in select.ctes:
            ctes.add(cte_name.lower())
            walk_select(cte)
        for item in select.from_items:
            walk_item(item)
        if select.set_op is not None:
            walk_select(select.set_op.right)

    def walk_item(item: ast.FromItem) -> None:
        if isinstance(item, ast.TableRef):
            names.append(item.name.lower())
        elif isinstance(item, ast.SubqueryRef):
            walk_select(item.query)
        elif isinstance(item, ast.TableFunctionRef):
            for query in item.subquery_args:
                walk_select(query)
        elif isinstance(item, ast.Join):
            walk_item(item.left)
            walk_item(item.right)

    walk_select(statement)
    seen = []
    for name in names:
        if name not in ctes and name not in seen:
            seen.append(name)
    return seen


def written_tables(statement: Any) -> List[str]:
    """Lower-cased table names a DML/DDL statement writes (empty for
    reads)."""
    from ..sql import ast_nodes as ast

    if isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
        return [statement.table.lower()]
    if isinstance(statement, (ast.CreateTableAs, ast.DropTable)):
        return [statement.name.lower()]
    return []
