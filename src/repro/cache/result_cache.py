"""Tier 3: the query result cache with single-flight dogpile protection.

A result entry is keyed by everything that can change the answer:
normalized-SQL fingerprint, the snapshot epoch of every table the query
reads, the definition version of every UDF it calls, and the QFusor
config fingerprint.  Any DML bumps the written tables' epochs, any UDF
re-registration bumps its version — stale entries are simply never
addressed again and age out of the LRU.

**Single-flight**: when N identical queries arrive concurrently, exactly
one (the leader) executes; the rest wait on the flight and share the
leader's result.  The wait is cooperative — followers run their own
governance checkpoints, so a follower's deadline or cancellation fires
while waiting.  If the leader fails (its own timeout, a cancellation, a
UDF error), followers do *not* inherit the failure: one of them promotes
to leader and executes for itself.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

from ..obs import METRICS, OBS
from ..resilience import governor
from .lru import LruMap

__all__ = ["ResultCache", "MISS"]

#: Returned by :meth:`ResultCache.lookup` on a miss (results may be any
#: value, including None-shaped tables).
MISS = object()


class _Flight:
    """One in-flight execution that followers can wait on."""

    __slots__ = ("done", "result", "failed")

    def __init__(self):
        self.done = threading.Event()
        self.result: Any = MISS
        self.failed = False


class ResultCache:
    """Bounded LRU of query results plus the single-flight table."""

    def __init__(self, capacity: int = 128, *, single_flight: bool = True):
        self._entries = LruMap(capacity)
        self._flights: Dict[Tuple, _Flight] = {}
        self._lock = threading.Lock()
        self.single_flight = single_flight
        #: Followers that received a leader's result without executing.
        self.shared = 0
        #: Followers that promoted to leader after a leader failure.
        self.promotions = 0

    # ------------------------------------------------------------------
    # Plain lookup/store (used by the manager around the flight logic)
    # ------------------------------------------------------------------

    def lookup(self, key: Tuple) -> Any:
        value = self._entries.get(key, MISS)
        if OBS.metrics:
            METRICS.counter(
                "repro_cache_hits_total" if value is not MISS
                else "repro_cache_misses_total",
                tier="result",
            ).inc()
        return value

    def store(self, key: Tuple, value: Any) -> None:
        before = self._entries.evictions
        self._entries.put(key, value)
        if OBS.metrics and self._entries.evictions != before:
            METRICS.counter("repro_cache_evictions_total", tier="result").inc()

    # ------------------------------------------------------------------
    # Single-flight execution
    # ------------------------------------------------------------------

    def get_or_execute(
        self,
        key: Tuple,
        execute: Callable[[], Tuple[Any, bool]],
        *,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> Tuple[Any, str]:
        """Return ``(result, outcome)`` for one governed query.

        ``execute`` runs the real pipeline and returns ``(result,
        storeable)`` — population is skipped for degraded runs.  Outcome
        is ``"hit"``, ``"lead"`` (this caller executed), or ``"shared"``
        (another caller's execution was reused).  The leader's exception
        propagates to the leader only.
        """
        notify = on_event or (lambda _action: None)
        while True:
            flight: Optional[_Flight] = None
            leader = False
            with self._lock:
                value = self._entries.get(key, MISS)
                if value is not MISS:
                    if OBS.metrics:
                        METRICS.counter(
                            "repro_cache_hits_total", tier="result"
                        ).inc()
                    notify("hit")
                    return value, "hit"
                if OBS.metrics:
                    METRICS.counter(
                        "repro_cache_misses_total", tier="result"
                    ).inc()
                if not self.single_flight:
                    leader = True
                else:
                    flight = self._flights.get(key)
                    if flight is None:
                        flight = _Flight()
                        self._flights[key] = flight
                        leader = True
            if leader:
                return self._lead(key, flight, execute, notify), "lead"
            # Follower: wait cooperatively, honouring our own governor.
            while not flight.done.wait(0.02):
                governor.checkpoint()
            if not flight.failed:
                with self._lock:
                    self.shared += 1
                if OBS.metrics:
                    METRICS.counter(
                        "repro_cache_singleflight_shared_total"
                    ).inc()
                notify("shared")
                return flight.result, "shared"
            # The leader failed; loop and try to become the new leader.
            with self._lock:
                self.promotions += 1
            if OBS.metrics:
                METRICS.counter(
                    "repro_cache_singleflight_promotions_total"
                ).inc()

    def _lead(
        self,
        key: Tuple,
        flight: Optional[_Flight],
        execute: Callable[[], Tuple[Any, bool]],
        notify: Callable[[str], None],
    ) -> Any:
        if OBS.metrics:
            METRICS.counter("repro_cache_singleflight_leader_total").inc()
        try:
            result, storeable = execute()
        except BaseException:
            # Cancellation-safe population: nothing is cached, and the
            # flight is released so a follower can promote.
            with self._lock:
                if flight is not None:
                    self._flights.pop(key, None)
                    flight.failed = True
                    flight.done.set()
            raise
        with self._lock:
            if storeable:
                before = self._entries.evictions
                self._entries.put(key, result)
                if OBS.metrics and self._entries.evictions != before:
                    METRICS.counter(
                        "repro_cache_evictions_total", tier="result"
                    ).inc()
            if flight is not None:
                self._flights.pop(key, None)
                flight.result = result
                flight.done.set()
        notify("store" if storeable else "lead")
        return result

    # ------------------------------------------------------------------

    def clear(self) -> None:
        self._entries.clear()

    @property
    def hits(self) -> int:
        return self._entries.hits

    @property
    def misses(self) -> int:
        return self._entries.misses

    @property
    def evictions(self) -> int:
        return self._entries.evictions

    def __len__(self) -> int:
        return len(self._entries)
