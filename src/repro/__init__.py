"""repro — a from-scratch reproduction of QFusor (EDBT 2026).

QFusor is a pluggable optimizer for SQL queries containing Python UDFs:
it fuses UDF operators with each other and with relational operators,
JIT-compiles the fused pipelines, and rewrites the query plan — yielding
large speedups by eliminating engine<->UDF boundary costs and enabling
longer compilation traces.

Quickstart::

    from repro import Database, QFusor, scalar_udf, Table, SqlType

    @scalar_udf
    def clean(text: str) -> str:
        return text.strip().lower()

    db = Database()
    db.register_table(Table.from_rows(
        "t", [("s", SqlType.TEXT)], [("  Hello ",), (" WORLD",)]
    ))
    db.register_udf(clean)

    qfusor = QFusor(db)
    print(qfusor.execute("SELECT clean(s) FROM t").to_rows())

See ``examples/`` for realistic scenarios, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the paper-vs-measured results.
"""

from .core import QFusor, QFusorConfig, QFusorReport
from .engine import Database
from .storage import Catalog, Column, Table
from .types import SqlType
from .udf import UdfKind, UdfRegistry, aggregate_udf, scalar_udf, table_udf

__version__ = "1.0.0"

__all__ = [
    "QFusor", "QFusorConfig", "QFusorReport", "Database", "Catalog",
    "Column", "Table", "SqlType", "UdfKind", "UdfRegistry",
    "scalar_udf", "aggregate_udf", "table_udf", "__version__",
]
