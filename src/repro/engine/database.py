"""The Database facade: catalog + UDF registry + planner + executor.

This is the engine users (and QFusor) talk to.  It resolves statements,
runs SELECTs through the chosen executor, and applies DML — including DML
whose expressions contain UDFs (paper section 4.2.5).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

import numpy as np

from ..errors import CatalogError, ExecutionError, PlanError
from ..obs import OBS
from ..obs import tracer as obs_tracer
from ..sql import ast_nodes as ast
from ..sql.parser import parse
from ..storage.catalog import Catalog
from ..storage.column import Column
from ..storage.table import Table
from ..types import SqlType
from ..udf.registry import UdfRegistry
from ..udf.state import StatsStore
from .expressions import FunctionResolver, VectorEvaluator
from .explain import explain_text
from .optimizer import NativeOptimizer, OptimizerProfile
from .plan import Field
from .planner import PlannedQuery, Planner

__all__ = ["Database"]


class Database:
    """An embedded SQL database with pluggable execution model.

    Parameters
    ----------
    name:
        Connection label (used in messages and EXPLAIN output).
    execution_model:
        ``"vector"`` (MonetDB-style operator-at-a-time, the default) or
        ``"tuple"`` (SQLite-style tuple-at-a-time pipelining).
    optimizer_profile:
        Native-optimizer behaviour switches; see
        :class:`~repro.engine.optimizer.OptimizerProfile`.
    stats:
        Optional shared :class:`~repro.udf.state.StatsStore` so several
        connections can pool UDF statistics.
    """

    def __init__(
        self,
        name: str = "minidb",
        *,
        execution_model: str = "vector",
        optimizer_profile: Optional[OptimizerProfile] = None,
        stats: Optional[StatsStore] = None,
        channel: Optional[Any] = None,
    ):
        if execution_model not in ("vector", "tuple"):
            raise ValueError(f"unknown execution model {execution_model!r}")
        self.name = name
        self.execution_model = execution_model
        self.catalog = Catalog()
        self.registry = UdfRegistry(stats, channel)
        self.resolver = FunctionResolver(self.registry)
        self.planner = Planner(self.catalog, self.resolver)
        self.optimizer = NativeOptimizer(self.catalog, self.resolver, optimizer_profile)
        self._temp_tables: List[str] = []

    @property
    def columnar(self):
        """The columnar-plane policy, shared with the UDF registry
        (``None`` = classic paths everywhere)."""
        return self.registry.columnar

    # ------------------------------------------------------------------
    # Schema / UDF management
    # ------------------------------------------------------------------

    def register_table(self, table: Table, *, replace: bool = False) -> None:
        """Add a table to the catalog."""
        self.catalog.register(table, replace=replace)

    def register_udf(
        self,
        udf: Any,
        *,
        replace: bool = False,
        deterministic: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> None:
        """Register a decorated UDF (see :mod:`repro.udf.decorators`)."""
        self.registry.register(
            udf, replace=replace, deterministic=deterministic, version=version
        )

    def register_udfs(self, udfs: Sequence[Any], *, replace: bool = False) -> None:
        for udf in udfs:
            self.register_udf(udf, replace=replace)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def execute(self, sql: Union[str, ast.Statement]) -> Table:
        """Parse, plan, optimize, and execute one SQL statement."""
        if OBS.tracing and isinstance(sql, str):
            with obs_tracer.span("parse"):
                statement = parse(sql)
        else:
            statement = parse(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.Explain):
            planned = self.plan(statement.statement)
            text = explain_text(planned)
            return Table(
                "explain",
                [Column("plan", SqlType.TEXT, text.split("\n"), validate=False)],
            )
        if isinstance(statement, ast.Select):
            return self._execute_select(statement)
        if isinstance(statement, ast.Insert):
            return self._execute_insert(statement)
        if isinstance(statement, ast.Update):
            return self._execute_update(statement)
        if isinstance(statement, ast.Delete):
            return self._execute_delete(statement)
        if isinstance(statement, ast.CreateTableAs):
            return self._execute_create(statement)
        if isinstance(statement, ast.DropTable):
            return self._execute_drop(statement)
        raise ExecutionError(f"unsupported statement {type(statement).__name__}")

    def plan(self, sql: Union[str, ast.Statement]) -> PlannedQuery:
        """Plan and natively optimize a SELECT (the EXPLAIN product)."""
        statement = parse(sql) if isinstance(sql, str) else sql
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        if not isinstance(statement, ast.Select):
            raise PlanError("only SELECT statements can be planned")
        # Skip the span when already inside a "plan" span (the QFusor
        # EXPLAIN probe wraps this call) so stage totals aren't doubled.
        sp = None
        if OBS.tracing:
            cur = obs_tracer.current_span()
            if cur is None or cur.name != "plan":
                sp = obs_tracer.span_start("plan")
        planned = self.planner.plan_select(statement)
        optimized = self.optimizer.optimize(planned)
        if sp is not None:
            obs_tracer.span_end(sp)
        return optimized

    def explain(self, sql: Union[str, ast.Statement]) -> str:
        """The EXPLAIN text for a statement."""
        return explain_text(self.plan(sql))

    def _execute_select(self, statement: ast.Select) -> Table:
        planned = self.plan(statement)
        executor = self._make_executor()
        return executor.execute(planned)

    def _make_executor(self):
        if self.execution_model == "vector":
            policy = self.columnar
            if policy is not None and policy.enabled:
                from ..columnar.executor import MorselVectorExecutor

                return MorselVectorExecutor(
                    self.catalog, self.resolver, policy,
                    scheduler=policy.scheduler,
                )
            from .executor_vector import VectorExecutor

            return VectorExecutor(self.catalog, self.resolver)
        from .executor_tuple import TupleExecutor

        return TupleExecutor(self.catalog, self.resolver)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------

    def _table_fields(self, table: Table) -> List[Field]:
        return [
            Field(name, sql_type, table.name)
            for name, sql_type in table.schema
        ]

    def _execute_insert(self, statement: ast.Insert) -> Table:
        table = self.catalog.get(statement.table)
        target_names = list(statement.columns) or list(table.schema.names)
        positions = [table.schema.position(n) for n in target_names]

        if statement.query is not None:
            source = self._execute_select(statement.query)
            new_rows = source.to_rows()
        else:
            evaluator = VectorEvaluator([], self.resolver)
            new_rows = []
            for value_row in statement.values:
                row = [
                    evaluator.evaluate(expr, [], 1)[0] for expr in value_row
                ]
                new_rows.append(row)

        full_rows = list(table.rows())
        for row in new_rows:
            if len(row) != len(positions):
                raise ExecutionError(
                    f"INSERT arity mismatch: {len(row)} values for "
                    f"{len(positions)} columns"
                )
            padded: List[Any] = [None] * table.num_columns
            for position, value in zip(positions, row):
                padded[position] = value
            full_rows.append(tuple(padded))
        updated = Table.from_rows(table.name, list(table.schema), full_rows)
        self.catalog.register(updated, replace=True)
        return _rowcount_table(len(new_rows))

    def _execute_update(self, statement: ast.Update) -> Table:
        table = self.catalog.get(statement.table)
        fields = self._table_fields(table)
        evaluator = VectorEvaluator(fields, self.resolver)
        columns = list(table.columns)
        size = table.num_rows
        if statement.where is not None:
            mask = evaluator.predicate_mask(statement.where, columns, size)
        else:
            mask = np.ones(size, dtype=bool)

        new_columns = {}
        for column_name, expr in statement.assignments:
            position = table.schema.position(column_name)
            target = table.columns[position]
            computed = evaluator.evaluate(expr, columns, size, target.name)
            old_values = target.to_list()
            new_values = computed.to_list()
            merged = [
                new_values[i] if mask[i] else old_values[i] for i in range(size)
            ]
            new_columns[position] = Column(
                target.name, target.sql_type, merged, validate=True
            )
        final = [
            new_columns.get(i, col) for i, col in enumerate(table.columns)
        ]
        self.catalog.register(Table(table.name, final), replace=True)
        return _rowcount_table(int(mask.sum()))

    def _execute_delete(self, statement: ast.Delete) -> Table:
        table = self.catalog.get(statement.table)
        fields = self._table_fields(table)
        evaluator = VectorEvaluator(fields, self.resolver)
        columns = list(table.columns)
        size = table.num_rows
        if statement.where is not None:
            mask = evaluator.predicate_mask(statement.where, columns, size)
        else:
            mask = np.ones(size, dtype=bool)
        keep = ~mask
        self.catalog.register(table.filter(keep), replace=True)
        return _rowcount_table(int(mask.sum()))

    def _execute_create(self, statement: ast.CreateTableAs) -> Table:
        result = self._execute_select(statement.query)
        created = result.renamed(statement.name)
        self.catalog.register(created, replace=True)
        if statement.temporary:
            self._temp_tables.append(statement.name)
        return _rowcount_table(created.num_rows)

    def _execute_drop(self, statement: ast.DropTable) -> Table:
        try:
            self.catalog.drop(statement.name)
        except CatalogError:
            if not statement.if_exists:
                raise
        return _rowcount_table(0)


def _rowcount_table(count: int) -> Table:
    return Table("rowcount", [Column("rows", SqlType.INT, [count], validate=False)])
