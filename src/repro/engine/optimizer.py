"""The engine's *native* relational optimizer.

This is deliberately UDF-oblivious: UDF calls are black boxes (the paper's
core premise), so no rule reorders operators across a UDF invocation.
QFusor's fusion optimizer complements — not replaces — these rules.

Passes:

* cross-join elimination — equality conjuncts in a Filter above a CROSS
  join become hash-join conditions;
* filter pushdown into join inputs;
* filter pushdown below projections (engine-profile dependent: the
  MonetDB-like profile pushes below UDF-bearing projections, the
  PostgreSQL-like profile does not — reproducing the Figure 6a
  "3x more UDF invocations" difference);
* constant folding;
* cardinality estimation (row counts annotated on every node, consumed by
  QFusor's cost model).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sql import ast_nodes as ast
from ..storage.catalog import Catalog
from .expressions import FunctionResolver
from .plan import (
    Aggregate, CteScan, Distinct, Expand, Field, Filter, Join, Limit,
    OneRow, PlanNode, Project, Requalify, Scan, SetOperation, Sort,
    TableFunctionScan,
)
from .planner import PlannedQuery

__all__ = ["NativeOptimizer", "OptimizerProfile"]

_DEFAULT_FILTER_SELECTIVITY = 0.33
_DEFAULT_JOIN_SELECTIVITY = 0.1


@dataclass(frozen=True)
class OptimizerProfile:
    """Engine-specific optimizer behaviour switches."""

    name: str = "default"
    #: Push non-UDF filters below projections that contain UDF calls.
    push_filter_below_udf_project: bool = True


class NativeOptimizer:
    def __init__(
        self,
        catalog: Catalog,
        resolver: FunctionResolver,
        profile: Optional[OptimizerProfile] = None,
    ):
        self.catalog = catalog
        self.resolver = resolver
        self.profile = profile or OptimizerProfile()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def optimize(self, planned: PlannedQuery) -> PlannedQuery:
        cte_rows: Dict[str, float] = {}
        new_ctes = []
        for name, plan in planned.ctes:
            optimized = self._optimize_tree(plan, cte_rows)
            cte_rows[name.lower()] = optimized.est_rows or 1000.0
            new_ctes.append((name, optimized))
        root = self._optimize_tree(planned.root, cte_rows)
        return PlannedQuery(root, new_ctes)

    def _optimize_tree(self, plan: PlanNode, cte_rows: Dict[str, float]) -> PlanNode:
        plan = self._rewrite(plan)
        self._estimate(plan, cte_rows)
        return plan

    # ------------------------------------------------------------------
    # Rewrite rules
    # ------------------------------------------------------------------

    def _rewrite(self, node: PlanNode) -> PlanNode:
        children = [self._rewrite(c) for c in node.children]
        node = node.with_children(children) if children else node

        if isinstance(node, Filter):
            node = self._fold_filter(node)
            if isinstance(node, Filter) and isinstance(node.child, Join):
                node = self._push_filter_into_join(node)
            if isinstance(node, Filter) and isinstance(node.child, Requalify):
                node = self._push_filter_through_requalify(node)
            if isinstance(node, Filter) and isinstance(node.child, Project):
                node = self._push_filter_below_project(node)
        return node

    def _push_filter_through_requalify(self, node: Filter) -> PlanNode:
        """``Filter(Requalify(X))`` -> ``Requalify(Filter'(X))`` when every
        predicate reference resolves unambiguously inside X (derived-table
        filter pushdown)."""
        requalify = node.child
        assert isinstance(requalify, Requalify)
        inner = requalify.child
        refs = [
            e for e in ast.walk_expr(node.predicate)
            if isinstance(e, ast.ColumnRef)
        ]
        mapping: Dict[str, ast.Expr] = {}
        for ref in refs:
            candidates = [f for f in inner.schema if f.name.lower() == ref.name.lower()]
            if len(candidates) != 1:
                return node
            field = candidates[0]
            mapping[ref.name.lower()] = ast.ColumnRef(
                field.name, table=field.qualifier
            )
        new_predicate = _substitute_refs(node.predicate, mapping)
        pushed = self._rewrite(Filter(inner, new_predicate))
        return Requalify(pushed, requalify.schema)

    def _fold_filter(self, node: Filter) -> PlanNode:
        predicate = _fold(node.predicate)
        if isinstance(predicate, ast.Literal) and predicate.value is True:
            return node.child
        return Filter(node.child, predicate)

    def _push_filter_into_join(self, node: Filter) -> PlanNode:
        join = node.child
        assert isinstance(join, Join)
        if join.kind not in ("CROSS", "INNER"):
            return node
        conjuncts = _conjuncts(node.predicate)
        left_only: List[ast.Expr] = []
        right_only: List[ast.Expr] = []
        join_conds: List[ast.Expr] = []
        keep: List[ast.Expr] = []
        for conj in conjuncts:
            refs = [
                e for e in ast.walk_expr(conj) if isinstance(e, ast.ColumnRef)
            ]
            if refs and all(_matches_schema(r, join.left.schema) for r in refs):
                left_only.append(conj)
            elif refs and all(_matches_schema(r, join.right.schema) for r in refs):
                right_only.append(conj)
            elif refs and all(
                _matches_schema(r, join.left.schema)
                or _matches_schema(r, join.right.schema)
                for r in refs
            ):
                join_conds.append(conj)
            else:
                keep.append(conj)
        if not (left_only or right_only or join_conds):
            return node

        left = join.left
        right = join.right
        if left_only:
            left = Filter(left, _and_all(left_only))
        if right_only and join.kind != "LEFT":
            right = Filter(right, _and_all(right_only))
        elif right_only:
            keep.extend(right_only)
        condition = join.condition
        kind = join.kind
        if join_conds:
            condition = _and_all(
                ([condition] if condition is not None else []) + join_conds
            )
            if kind == "CROSS":
                kind = "INNER"
        new_join = Join(left, right, kind, condition, join.schema)
        if keep:
            return Filter(new_join, _and_all(keep))
        return new_join

    def _push_filter_below_project(self, node: Filter) -> PlanNode:
        project = node.child
        assert isinstance(project, Project)
        # The filter may only move if every column it references maps to a
        # pure passthrough (plain column ref) in the projection.
        mapping: Dict[str, ast.Expr] = {}
        for item in project.items:
            mapping[item.name.lower()] = item.expr
        refs = [
            e for e in ast.walk_expr(node.predicate) if isinstance(e, ast.ColumnRef)
        ]
        rewritten: Dict[str, ast.Expr] = {}
        for ref in refs:
            target = mapping.get(ref.name.lower())
            if target is None or not isinstance(target, ast.ColumnRef):
                return node
            rewritten[ref.name.lower()] = target
        if not self.profile.push_filter_below_udf_project and any(
            self._has_udf(item.expr) for item in project.items
        ):
            return node
        if self._has_udf(node.predicate):
            # UDFs are black boxes: never reorder a UDF-bearing predicate.
            return node
        new_predicate = _substitute_refs(node.predicate, rewritten)
        return Project(
            Filter(project.child, new_predicate), project.items, project.schema
        )

    def _has_udf(self, expr: ast.Expr) -> bool:
        for e in ast.walk_expr(expr):
            if isinstance(e, ast.FunctionCall) and self.resolver.udf(e.name):
                return True
        return False

    # ------------------------------------------------------------------
    # Cardinality estimation
    # ------------------------------------------------------------------

    def _estimate(self, node: PlanNode, cte_rows: Dict[str, float]) -> float:
        for child in node.children:
            self._estimate(child, cte_rows)
        rows = self._estimate_node(node, cte_rows)
        node.est_rows = rows
        return rows

    def _estimate_node(self, node: PlanNode, cte_rows: Dict[str, float]) -> float:
        if isinstance(node, Scan):
            return float(self.catalog.stats(node.table_name).row_count)
        if isinstance(node, CteScan):
            return cte_rows.get(node.cte_name.lower(), 1000.0)
        if isinstance(node, OneRow):
            return 1.0
        if isinstance(node, Filter):
            child = node.child.est_rows or 0.0
            return child * _filter_selectivity(node.predicate)
        if isinstance(node, (Project, Requalify, Sort)):
            return node.child.est_rows or 0.0
        if isinstance(node, Expand):
            # Expand fan-out: unknown a priori; use a modest default.
            return (node.child.est_rows or 0.0) * 3.0
        if isinstance(node, Aggregate):
            child = node.child.est_rows or 0.0
            if not node.group_items:
                return 1.0
            return max(child * 0.1, 1.0)
        if isinstance(node, Join):
            left = node.left.est_rows or 0.0
            right = node.right.est_rows or 0.0
            if node.kind == "CROSS" and node.condition is None:
                return left * right
            # Equi-join heuristic: output near the larger input.
            return max(left, right, 1.0)
        if isinstance(node, Distinct):
            return max((node.child.est_rows or 0.0) * 0.5, 1.0)
        if isinstance(node, Limit):
            child = node.child.est_rows or 0.0
            return min(child, float(node.limit)) if node.limit is not None else child
        if isinstance(node, SetOperation):
            left = node.left.est_rows or 0.0
            right = node.right.est_rows or 0.0
            return left + right
        if isinstance(node, TableFunctionScan):
            base = node.input_plan.est_rows if node.input_plan is not None else 1.0
            return (base or 1.0) * 3.0
        return node.children[0].est_rows if node.children else 1.0


def _filter_selectivity(predicate: ast.Expr) -> float:
    """Crude textbook selectivities per conjunct."""
    selectivity = 1.0
    for conj in _conjuncts(predicate):
        if isinstance(conj, ast.BinaryOp) and conj.op == "=":
            selectivity *= 0.1
        elif isinstance(conj, ast.IsNull):
            selectivity *= 0.1 if not conj.negated else 0.9
        elif isinstance(conj, ast.Between):
            selectivity *= 0.25
        else:
            selectivity *= _DEFAULT_FILTER_SELECTIVITY
    return selectivity


def _conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _and_all(exprs: Sequence[ast.Expr]) -> ast.Expr:
    result = exprs[0]
    for expr in exprs[1:]:
        result = ast.BinaryOp("AND", result, expr)
    return result


def _matches_schema(ref: ast.ColumnRef, schema: Sequence[Field]) -> bool:
    return any(f.matches(ref) for f in schema)


def _substitute_refs(expr: ast.Expr, mapping: Dict[str, ast.Expr]) -> ast.Expr:
    from .planner import _rewrite_children

    if isinstance(expr, ast.ColumnRef):
        return mapping.get(expr.name.lower(), expr)
    return _rewrite_children(expr, lambda e: _substitute_refs(e, mapping))


def _fold(expr: ast.Expr) -> ast.Expr:
    """Fold constant sub-expressions (literal arithmetic/comparisons)."""
    from .planner import _rewrite_children

    expr = _rewrite_children(expr, _fold)
    if isinstance(expr, ast.BinaryOp):
        left, right = expr.left, expr.right
        if isinstance(left, ast.Literal) and isinstance(right, ast.Literal):
            a, b = left.value, right.value
            if a is None or b is None:
                return ast.Literal(None)
            try:
                if expr.op == "+":
                    return ast.Literal(a + b)
                if expr.op == "-":
                    return ast.Literal(a - b)
                if expr.op == "*":
                    return ast.Literal(a * b)
                if expr.op == "/":
                    return ast.Literal(a / b) if b != 0 else expr
                if expr.op == "=":
                    return ast.Literal(a == b)
                if expr.op == "!=":
                    return ast.Literal(a != b)
            except TypeError:
                return expr
    return expr
