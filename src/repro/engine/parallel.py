"""Intra-query thread parallelism.

Provides morsel-style partitioned execution of row-parallel operators
(Filter, Project) across a thread pool.  As the paper observes for its
own system, multithreaded speedups here are limited by Python's GIL and
are most effective for the vectorized (numpy) relational parts — the
same shape our Figure 6g reproduction shows.
"""

from __future__ import annotations

import contextlib
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..obs import tracer as obs_tracer
from ..resilience import governor, runtime
from ..storage.column import Column
from .executor_vector import Relation, VectorExecutor
from .expressions import VectorEvaluator
from .plan import Filter, Project

__all__ = ["split_ranges", "adopting", "parallel_map", "ParallelVectorExecutor"]


def split_ranges(size: int, parts: int, align: int = 1) -> List[Tuple[int, int]]:
    """Split ``[0, size)`` into up to ``parts`` contiguous ranges.

    With ``align > 1`` every range boundary except the final stop lands
    on a multiple of ``align`` (morsel alignment), so range splits and
    fixed-size morsel grids tile each other exactly.  The last range
    absorbs the uneven tail; ranges are never empty.
    """
    if size <= 0:
        return [(0, 0)]
    align = max(1, align)
    parts = max(1, min(parts, size))
    step = (size + parts - 1) // parts
    step = ((step + align - 1) // align) * align
    return [(start, min(start + step, size)) for start in range(0, size, step)]


def adopting(fn: Callable) -> Callable:
    """Wrap ``fn`` so worker threads adopt the submitting thread's
    governance, resilience, and tracing contexts (all thread-local)."""
    gov_ctx = governor.current()
    res_ctx = runtime.active()
    obs_trace = obs_tracer.current_trace()
    obs_span = obs_tracer.current_span() if obs_trace is not None else None
    if gov_ctx is None and res_ctx is None and obs_trace is None:
        return fn

    def adopted(item):
        with contextlib.ExitStack() as stack:
            if gov_ctx is not None:
                stack.enter_context(governor.activate(gov_ctx))
            if res_ctx is not None:
                stack.enter_context(runtime.activate(res_ctx))
            if obs_trace is not None:
                stack.enter_context(
                    obs_tracer.adopt_span(obs_span, obs_trace)
                )
            return fn(item)

    return adopted


def parallel_map(fn: Callable, items: Sequence, threads: int) -> List:
    """Map ``fn`` over ``items`` using ``threads`` workers (ordered).

    Error semantics are deterministic: every submitted chunk either runs
    to completion or is cancelled before starting, the pool is always
    drained (no leaked threads still running after return), and the
    exception propagated is the *first* failure in item order — not
    whichever worker happened to lose the race.
    """
    if threads <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    worker = adopting(fn)
    futures: List = []
    with ThreadPoolExecutor(max_workers=threads) as pool:
        try:
            with governor.spawn_shield():
                # The pool's threads are born lazily inside submit; a
                # governed submitter must hold the watchdog's async
                # raise through each Thread.start handshake, or the
                # raise can be absorbed by a half-born worker and
                # deadlock us in the handshake wait.
                futures = [pool.submit(worker, item) for item in items]
            wait(futures, return_when=FIRST_EXCEPTION)
        finally:
            for future in futures:
                future.cancel()  # no-op for running/finished futures
        # The context exit joins any still-running workers; afterwards
        # every future is either done or cancelled.
    for future in futures:
        if not future.cancelled() and future.exception() is not None:
            raise future.exception()
    return [future.result() for future in futures if not future.cancelled()]


class ParallelVectorExecutor(VectorExecutor):
    """A vectorized executor that runs Filter and Project over row
    partitions in a thread pool (the "dbX" strong-parallelism profile)."""

    def __init__(self, catalog, resolver, threads: int = 4):
        super().__init__(catalog, resolver)
        self.threads = max(1, threads)

    def _project(self, node: Project, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        if self.threads <= 1 or size < 2 * self.threads:
            return self._project_range(node, columns, size)
        ranges = split_ranges(size, self.threads)

        def run_range(bounds: Tuple[int, int]) -> List[Column]:
            start, stop = bounds
            chunk = [col.slice(start, stop) for col in columns]
            out, _ = self._project_range(node, chunk, stop - start)
            return out

        results = parallel_map(run_range, ranges, self.threads)
        merged = [
            Column.concat(item.name, [chunk[i] for chunk in results])
            for i, item in enumerate(node.items)
        ]
        return merged, size

    def _project_range(self, node: Project, columns, size) -> Relation:
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        out = [
            evaluator.evaluate(item.expr, columns, size, item.name)
            for item in node.items
        ]
        return out, size

    def _filter(self, node: Filter, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        if self.threads <= 1 or size < 2 * self.threads:
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            mask = evaluator.predicate_mask(node.predicate, columns, size)
            return [col.filter(mask) for col in columns], int(mask.sum())
        ranges = split_ranges(size, self.threads)

        def run_range(bounds: Tuple[int, int]) -> np.ndarray:
            start, stop = bounds
            chunk = [col.slice(start, stop) for col in columns]
            evaluator = VectorEvaluator(node.child.schema, self.resolver)
            return evaluator.predicate_mask(node.predicate, chunk, stop - start)

        masks = parallel_map(run_range, ranges, self.threads)
        mask = np.concatenate(masks) if masks else np.zeros(0, dtype=bool)
        return [col.filter(mask) for col in columns], int(mask.sum())
