"""Tuple-at-a-time executor (the SQLite-style model).

Operators are Python generators pulling one row at a time from their
children — fully pipelined, no intermediate materialization, but with
per-row interpretation overhead and, crucially, *one UDF boundary round
trip per row per UDF call* (the "numerous foreign function calls" cost the
paper attributes to tuple-at-a-time engines).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from ..resilience.governor import guarded_iter
from ..storage.catalog import Catalog
from ..storage.column import Column
from ..storage.table import Table
from ..types import SqlType
from ..udf import boundary
from ..udf.definition import UdfKind
from .expressions import FunctionResolver, RowEvaluator
from .plan import (
    Aggregate, CteScan, Distinct, Expand, Field, Filter, FusedFilter,
    Join, Limit, OneRow, PlanNode, Project, Requalify, Scan, SetOperation,
    Sort, TableFunctionScan,
)
from .planner import PlannedQuery

__all__ = ["TupleExecutor"]

Row = Tuple[Any, ...]


class TupleExecutor:
    def __init__(self, catalog: Catalog, resolver: FunctionResolver):
        self.catalog = catalog
        self.resolver = resolver

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, planned: PlannedQuery, result_name: str = "result") -> Table:
        ctes: Dict[str, List[Row]] = {}
        for name, plan in planned.ctes:
            ctes[name.lower()] = list(guarded_iter(self._rows(plan, ctes)))
        rows = list(guarded_iter(self._rows(planned.root, ctes)))
        schema = [(f.name, f.sql_type) for f in planned.root.schema]
        return Table.from_rows(result_name, schema, rows)

    # ------------------------------------------------------------------
    # Row generators per node
    # ------------------------------------------------------------------

    def _rows(self, node: PlanNode, ctes) -> Iterator[Row]:
        if OBS.tracing or OBS.metrics:
            return self._observed_rows(
                type(node).__name__, self._dispatch(node, ctes)
            )
        return self._dispatch(node, ctes)

    def _observed_rows(self, name: str, rows: Iterable[Row]) -> Iterator[Row]:
        """Wrap an operator's row stream with a span + rows/sec metrics.

        Operators are pull-based generators whose open/close order is not
        LIFO, so the span is *explicitly parented* to the span current at
        construction (the adapter's ``execute`` span) rather than pushed
        on the thread's stack — well-nestedness of stack-managed spans is
        preserved while pipelined operators visibly overlap in the trace.
        """
        sp = None
        if OBS.tracing:
            parent = obs_tracer.current_span()
            if parent is not None:
                sp = obs_tracer.span_start(
                    f"operator:{name}", "operator", parent=parent
                )
        count = 0
        start = time.perf_counter()
        try:
            for row in rows:
                count += 1
                yield row
        finally:
            if OBS.metrics:
                METRICS.counter("repro_operator_rows_total", op=name).inc(count)
                METRICS.histogram("repro_operator_seconds", op=name).observe(
                    time.perf_counter() - start
                )
            if sp is not None:
                obs_tracer.span_end(sp, rows=count)

    def _dispatch(self, node: PlanNode, ctes) -> Iterator[Row]:
        if isinstance(node, Scan):
            return self.catalog.get(node.table_name).rows()
        if isinstance(node, CteScan):
            return iter(ctes[node.cte_name.lower()])
        if isinstance(node, OneRow):
            return iter([()])
        if isinstance(node, Requalify):
            return self._rows(node.child, ctes)
        if isinstance(node, Filter):
            return self._filter(node, ctes)
        if isinstance(node, FusedFilter):
            return self._fused_filter(node, ctes)
        if isinstance(node, Project):
            return self._project(node, ctes)
        if isinstance(node, Expand):
            return self._expand(node, ctes)
        if isinstance(node, Aggregate):
            return self._aggregate(node, ctes)
        if isinstance(node, Join):
            return self._join(node, ctes)
        if isinstance(node, Sort):
            return self._sort(node, ctes)
        if isinstance(node, Distinct):
            return self._distinct(node, ctes)
        if isinstance(node, Limit):
            return self._limit(node, ctes)
        if isinstance(node, SetOperation):
            return self._set_operation(node, ctes)
        if isinstance(node, TableFunctionScan):
            return self._table_function(node, ctes)
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    def _filter(self, node: Filter, ctes) -> Iterator[Row]:
        evaluator = RowEvaluator(node.child.schema, self.resolver)
        for row in self._rows(node.child, ctes):
            if evaluator.evaluate(node.predicate, row) is True:
                yield row

    def _fused_filter(self, node: FusedFilter, ctes) -> Iterator[Row]:
        from .expressions import infer_type

        evaluator = RowEvaluator(node.child.schema, self.resolver)
        registered = self.resolver.udf(node.udf_name)
        definition = registered.definition
        in_types = tuple(
            infer_type(e, node.child.schema, self.resolver) or SqlType.TEXT
            for e in node.arg_exprs
        )
        for row in self._rows(node.child, ctes):
            args = tuple(
                boundary.c_to_python(
                    boundary.engine_to_c(evaluator.evaluate(e, row), t), t
                )
                for e, t in zip(node.arg_exprs, in_types)
            )
            if definition.func(*args) is True:
                yield row

    def _project(self, node: Project, ctes) -> Iterator[Row]:
        evaluator = RowEvaluator(node.child.schema, self.resolver)
        exprs = [item.expr for item in node.items]
        for row in self._rows(node.child, ctes):
            yield tuple(evaluator.evaluate(expr, row) for expr in exprs)

    def _expand(self, node: Expand, ctes) -> Iterator[Row]:
        from .expressions import infer_type

        evaluator = RowEvaluator(node.child.schema, self.resolver)
        registered = self.resolver.udf(node.call.name)
        definition = registered.definition
        in_types = tuple(
            infer_type(e, node.child.schema, self.resolver) or SqlType.TEXT
            for e in node.arg_exprs
        )
        out_types = definition.signature.return_types
        num_out = len(node.out_names)
        for row in self._rows(node.child, ctes):
            args = tuple(
                boundary.c_to_python(
                    boundary.engine_to_c(evaluator.evaluate(e, row), t), t
                )
                for e, t in zip(node.arg_exprs, in_types)
            )
            passthrough = [
                evaluator.evaluate(item.expr, row) for item in node.passthrough
            ]
            for out_row in definition.func(iter([args]), *node.const_args):
                converted = [
                    boundary.c_to_engine(boundary.python_to_c(v, t), t)
                    for v, t in zip(out_row[:num_out], out_types)
                ]
                yield tuple(
                    converted[index] if source == "expand" else passthrough[index]
                    for source, index in node.layout
                )

    def _aggregate(self, node: Aggregate, ctes) -> Iterator[Row]:
        from .expressions import infer_type

        evaluator = RowEvaluator(node.child.schema, self.resolver)
        groups: Dict[Tuple, List[Any]] = {}
        order: List[Tuple] = []

        call_arg_types = [
            tuple(
                infer_type(a, node.child.schema, self.resolver) or SqlType.TEXT
                for a in call.args
            )
            for call in node.agg_calls
        ]
        call_out_types = []
        for call in node.agg_calls:
            if call.is_udf:
                registered = self.resolver.udf(call.func_name)
                call_out_types.append(
                    registered.definition.signature.return_types[0]
                )
            else:
                call_out_types.append(None)  # builtins stay engine-side

        def make_states():
            states = []
            for call in node.agg_calls:
                if call.is_udf:
                    registered = self.resolver.udf(call.func_name)
                    states.append(registered.definition.func())
                else:
                    builtin = self.resolver.builtin_aggregate(call.func_name)
                    states.append(builtin.make_state())
            return states

        distinct_seen: Dict[Tuple, List[set]] = {}
        for row in guarded_iter(self._rows(node.child, ctes)):
            key = tuple(
                evaluator.evaluate(item.expr, row) for item in node.group_items
            )
            if key not in groups:
                groups[key] = make_states()
                order.append(key)
                distinct_seen[key] = [set() for _ in node.agg_calls]
            states = groups[key]
            for idx, call in enumerate(node.agg_calls):
                args = tuple(evaluator.evaluate(a, row) for a in call.args)
                if call.args and any(a is None for a in args):
                    continue
                if call.distinct:
                    if args in distinct_seen[key][idx]:
                        continue
                    distinct_seen[key][idx].add(args)
                if call.is_udf:
                    # One boundary round trip per row (tuple-at-a-time).
                    args = tuple(
                        boundary.c_to_python(boundary.engine_to_c(v, t), t)
                        for v, t in zip(args, call_arg_types[idx])
                    )
                states[idx].step(*args)

        def finalize(states) -> Tuple:
            out = []
            for state, out_type in zip(states, call_out_types):
                value = state.final()
                if out_type is not None:
                    value = boundary.c_to_engine(
                        boundary.python_to_c(value, out_type), out_type
                    )
                out.append(value)
            return tuple(out)

        if not groups and not node.group_items:
            yield finalize(make_states())
            return
        for key in order:
            yield key + finalize(groups[key])

    def _join(self, node: Join, ctes) -> Iterator[Row]:
        from .executor_vector import _split_join_condition

        right_rows = list(guarded_iter(self._rows(node.right, ctes)))
        equi, residual = _split_join_condition(
            node.condition, node.left.schema, node.right.schema
        )
        evaluator = RowEvaluator(node.schema, self.resolver)

        if equi:
            # Hash join on the equi keys; residual applied per pair.
            right_eval = RowEvaluator(node.right.schema, self.resolver)
            left_eval = RowEvaluator(node.left.schema, self.resolver)
            index: Dict[Tuple, List[Row]] = {}
            for right_row in right_rows:
                key = tuple(right_eval.evaluate(e, right_row) for _, e in equi)
                if any(k is None for k in key):
                    continue
                index.setdefault(key, []).append(right_row)
            for left_row in guarded_iter(self._rows(node.left, ctes)):
                key = tuple(left_eval.evaluate(e, left_row) for e, _ in equi)
                matched = False
                if not any(k is None for k in key):
                    for right_row in index.get(key, ()):
                        combined = left_row + right_row
                        if residual is None or evaluator.evaluate(
                            residual, combined
                        ) is True:
                            matched = True
                            yield combined
                if node.kind == "LEFT" and not matched:
                    yield left_row + tuple(None for _ in node.right.schema)
            return

        # Fallback: nested loop with the right side materialized.
        for left_row in self._rows(node.left, ctes):
            matched = False
            for right_row in right_rows:
                combined = left_row + right_row
                if node.condition is None or evaluator.evaluate(
                    node.condition, combined
                ) is True:
                    matched = True
                    yield combined
            if node.kind == "LEFT" and not matched:
                yield left_row + tuple(None for _ in node.right.schema)

    def _sort(self, node: Sort, ctes) -> Iterator[Row]:
        from .executor_vector import _sort_key

        evaluator = RowEvaluator(node.child.schema, self.resolver)
        rows = list(guarded_iter(self._rows(node.child, ctes)))
        for key in reversed(node.keys):
            expr, ascending = key.expr, key.ascending
            rows.sort(
                key=lambda row: _sort_key(evaluator.evaluate(expr, row), ascending)
            )
        return iter(rows)

    def _distinct(self, node: Distinct, ctes) -> Iterator[Row]:
        seen = set()
        for row in self._rows(node.child, ctes):
            if row not in seen:
                seen.add(row)
                yield row

    def _limit(self, node: Limit, ctes) -> Iterator[Row]:
        skipped = 0
        produced = 0
        for row in self._rows(node.child, ctes):
            if skipped < node.offset:
                skipped += 1
                continue
            if node.limit is not None and produced >= node.limit:
                return
            produced += 1
            yield row

    def _set_operation(self, node: SetOperation, ctes) -> Iterator[Row]:
        if node.op == "UNION ALL":
            yield from self._rows(node.left, ctes)
            yield from self._rows(node.right, ctes)
            return
        left_rows = list(self._rows(node.left, ctes))
        right_rows = list(self._rows(node.right, ctes))
        if node.op == "UNION":
            yield from dict.fromkeys(left_rows + right_rows)
        elif node.op == "INTERSECT":
            right_set = set(right_rows)
            yield from dict.fromkeys(r for r in left_rows if r in right_set)
        elif node.op == "EXCEPT":
            right_set = set(right_rows)
            yield from dict.fromkeys(r for r in left_rows if r not in right_set)
        else:
            raise ExecutionError(f"unknown set operation {node.op!r}")

    def _table_function(self, node: TableFunctionScan, ctes) -> Iterator[Row]:
        registered = self.resolver.udf(node.udf_name)
        definition = registered.definition
        if node.input_plan is not None:
            input_rows = self._rows(node.input_plan, ctes)
        else:
            input_rows = iter(())
        # Fully pipelined: the generator pulls input rows lazily, each row
        # crossing the boundary individually.
        in_types = tuple(f.sql_type for f in (node.input_plan.schema if node.input_plan is not None else ()))

        def datagen():
            for row in input_rows:
                yield tuple(
                    boundary.c_to_python(
                        boundary.engine_to_c(v, t), t
                    )
                    for v, t in zip(row, in_types)
                )

        out_types = definition.signature.return_types
        for out_row in definition.func(datagen(), *node.const_args):
            yield tuple(
                boundary.c_to_engine(boundary.python_to_c(v, t), t)
                for v, t in zip(out_row, out_types)
            )


