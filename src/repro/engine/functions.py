"""Builtin SQL functions and aggregates.

These run *inside* the engine (no UDF boundary crossing) — they are the
"optimized engine implementation" side of the paper's F2 trade-off, the
alternative to offloading a relational operation into the UDF runtime.
"""

from __future__ import annotations

import math
import re
import statistics
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ExecutionError
from ..types import SqlType

__all__ = [
    "BUILTIN_SCALARS", "BUILTIN_AGGREGATES", "BuiltinScalar",
    "BuiltinAggregate", "is_builtin_scalar", "is_builtin_aggregate",
    "like_to_regex",
]


class BuiltinScalar:
    """A builtin scalar function: a Python callable plus a return-type rule."""

    __slots__ = ("name", "func", "return_type", "strict")

    def __init__(
        self,
        name: str,
        func: Callable,
        return_type,  # SqlType or callable(arg_types) -> SqlType
        strict: bool = True,
    ):
        self.name = name
        self.func = func
        self.return_type = return_type
        self.strict = strict

    def result_type(self, arg_types: Sequence[Optional[SqlType]]) -> SqlType:
        if callable(self.return_type):
            return self.return_type(arg_types)
        return self.return_type

    def __call__(self, *args):
        if self.strict and any(a is None for a in args):
            return None
        return self.func(*args)


class BuiltinAggregate:
    """A builtin aggregate in the init-step-final model.

    ``blocking`` aggregates (e.g. median) materialize their input and are
    not loop-fusible (Table 3).
    """

    __slots__ = ("name", "make_state", "return_type", "blocking")

    def __init__(self, name: str, make_state: Callable, return_type, blocking=False):
        self.name = name
        self.make_state = make_state
        self.return_type = return_type
        self.blocking = blocking

    def result_type(self, arg_types: Sequence[Optional[SqlType]]) -> SqlType:
        if callable(self.return_type):
            return self.return_type(arg_types)
        return self.return_type


# ----------------------------------------------------------------------
# Scalar builtins
# ----------------------------------------------------------------------


def _numeric_passthrough(arg_types: Sequence[Optional[SqlType]]) -> SqlType:
    for t in arg_types:
        if t is SqlType.FLOAT:
            return SqlType.FLOAT
    return SqlType.INT


def _first_arg_type(arg_types: Sequence[Optional[SqlType]]) -> SqlType:
    return arg_types[0] if arg_types and arg_types[0] is not None else SqlType.TEXT


def _substr(value: str, start: int, length: Optional[int] = None) -> str:
    # SQL substr is 1-based.
    begin = max(start - 1, 0)
    if length is None:
        return value[begin:]
    return value[begin : begin + length]


def _round(value: float, digits: int = 0) -> float:
    return float(round(value, digits))


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(left, right):
    return None if left == right else left


BUILTIN_SCALARS: Dict[str, BuiltinScalar] = {}


def _register_scalar(name: str, func: Callable, return_type, strict: bool = True):
    BUILTIN_SCALARS[name] = BuiltinScalar(name, func, return_type, strict)


_register_scalar("upper", lambda s: s.upper(), SqlType.TEXT)
_register_scalar("length", lambda s: len(s), SqlType.INT)
_register_scalar("abs", abs, _numeric_passthrough)
_register_scalar("round", _round, SqlType.FLOAT)
_register_scalar("floor", lambda x: int(math.floor(x)), SqlType.INT)
_register_scalar("ceil", lambda x: int(math.ceil(x)), SqlType.INT)
_register_scalar("sqrt", math.sqrt, SqlType.FLOAT)
_register_scalar("ln", math.log, SqlType.FLOAT)
_register_scalar("trim", lambda s: s.strip(), SqlType.TEXT)
_register_scalar("ltrim", lambda s: s.lstrip(), SqlType.TEXT)
_register_scalar("rtrim", lambda s: s.rstrip(), SqlType.TEXT)
_register_scalar("substr", _substr, SqlType.TEXT)
_register_scalar("replace", lambda s, old, new: s.replace(old, new), SqlType.TEXT)
_register_scalar("instr", lambda s, sub: s.find(sub) + 1, SqlType.INT)
_register_scalar("concat", lambda *parts: "".join(str(p) for p in parts), SqlType.TEXT)
_register_scalar("coalesce", _coalesce, _first_arg_type, strict=False)
_register_scalar("nullif", _nullif, _first_arg_type, strict=False)
_register_scalar("mod", lambda a, b: a % b, _numeric_passthrough)
_register_scalar("sign", lambda x: (x > 0) - (x < 0), SqlType.INT)

# NOTE: ``lower`` is deliberately *not* a builtin: the paper's running
# example registers lower as a Python UDF, and workloads rely on it going
# through the UDF path.  Engines that want a native lower can add one.


# ----------------------------------------------------------------------
# Aggregate builtins (init-step-final states)
# ----------------------------------------------------------------------


class _CountState:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def step(self, *values):
        # count(*) receives no args; count(expr) skips NULLs upstream.
        self.count += 1

    def final(self):
        return self.count


class _SumState:
    __slots__ = ("total", "seen")

    def __init__(self):
        self.total = 0
        self.seen = False

    def step(self, value):
        self.total += value
        self.seen = True

    def final(self):
        return self.total if self.seen else None


class _AvgState:
    __slots__ = ("total", "count")

    def __init__(self):
        self.total = 0.0
        self.count = 0

    def step(self, value):
        self.total += value
        self.count += 1

    def final(self):
        return self.total / self.count if self.count else None


class _MinState:
    __slots__ = ("best",)

    def __init__(self):
        self.best = None

    def step(self, value):
        if self.best is None or value < self.best:
            self.best = value

    def final(self):
        return self.best


class _MaxState:
    __slots__ = ("best",)

    def __init__(self):
        self.best = None

    def step(self, value):
        if self.best is None or value > self.best:
            self.best = value

    def final(self):
        return self.best


class _MedianState:
    """Blocking aggregate: materializes its input (Table 3)."""

    __slots__ = ("values",)

    def __init__(self):
        self.values: List[Any] = []

    def step(self, value):
        self.values.append(value)

    def final(self):
        return float(statistics.median(self.values)) if self.values else None


class _StddevState:
    __slots__ = ("values",)

    def __init__(self):
        self.values: List[float] = []

    def step(self, value):
        self.values.append(float(value))

    def final(self):
        return statistics.pstdev(self.values) if len(self.values) > 0 else None


def _sum_type(arg_types: Sequence[Optional[SqlType]]) -> SqlType:
    if arg_types and arg_types[0] is SqlType.FLOAT:
        return SqlType.FLOAT
    return SqlType.INT


BUILTIN_AGGREGATES: Dict[str, BuiltinAggregate] = {
    "count": BuiltinAggregate("count", _CountState, SqlType.INT),
    "sum": BuiltinAggregate("sum", _SumState, _sum_type),
    "avg": BuiltinAggregate("avg", _AvgState, SqlType.FLOAT),
    "min": BuiltinAggregate("min", _MinState, _first_arg_type),
    "max": BuiltinAggregate("max", _MaxState, _first_arg_type),
    "median": BuiltinAggregate("median", _MedianState, SqlType.FLOAT, blocking=True),
    "stddev": BuiltinAggregate("stddev", _StddevState, SqlType.FLOAT, blocking=True),
}


def is_builtin_scalar(name: str) -> bool:
    return name.lower() in BUILTIN_SCALARS


def is_builtin_aggregate(name: str) -> bool:
    return name.lower() in BUILTIN_AGGREGATES


_LIKE_CACHE: Dict[str, "re.Pattern"] = {}


def like_to_regex(pattern: str) -> "re.Pattern":
    """Compile a SQL LIKE pattern (% and _) into an anchored regex."""
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is None:
        parts = []
        for ch in pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        compiled = re.compile("^" + "".join(parts) + "$", re.DOTALL)
        _LIKE_CACHE[pattern] = compiled
    return compiled
