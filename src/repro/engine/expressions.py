"""Expression evaluation and type inference.

Two evaluation modes mirror the two executors:

* :class:`VectorEvaluator` — evaluates an expression over whole columns
  (one operator loop per expression node; numpy fast paths for numeric
  arithmetic/comparisons).  Scalar UDF calls take the *bulk* path through
  the registry wrapper (one boundary crossing per value, batched).
* :class:`RowEvaluator` — evaluates over one row tuple at a time (the
  SQLite-style model).  Scalar UDF calls cross the boundary per value per
  call, which is exactly the per-tuple FFI overhead the paper attributes
  to tuple-at-a-time engines.

SQL three-valued logic is implemented throughout: comparisons with NULL
yield NULL, AND/OR follow Kleene semantics, and predicates treat NULL as
not-satisfied.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..errors import ExecutionError, PlanError
from ..sql import ast_nodes as ast
from ..storage.column import Column
from ..types import SqlType, common_type, is_numeric
from ..udf import boundary
from ..udf.definition import UdfKind
from .functions import (
    BUILTIN_AGGREGATES,
    BUILTIN_SCALARS,
    like_to_regex,
)
from .plan import Field

__all__ = ["infer_type", "VectorEvaluator", "RowEvaluator", "FunctionResolver"]


class FunctionResolver:
    """Resolves function names to builtins or registered UDFs.

    The engine's :class:`~repro.engine.database.Database` provides one,
    backed by its :class:`~repro.udf.registry.UdfRegistry`.
    """

    def __init__(self, registry=None):
        self.registry = registry

    def builtin_scalar(self, name: str):
        return BUILTIN_SCALARS.get(name.lower())

    def builtin_aggregate(self, name: str):
        return BUILTIN_AGGREGATES.get(name.lower())

    def udf(self, name: str):
        if self.registry is None:
            return None
        return self.registry.lookup(name)

    def udf_kind(self, name: str) -> Optional[UdfKind]:
        registered = self.udf(name)
        return None if registered is None else registered.kind

    def is_aggregate_call(self, name: str) -> bool:
        if self.builtin_aggregate(name) is not None:
            return True
        return self.udf_kind(name) is UdfKind.AGGREGATE


# ----------------------------------------------------------------------
# Type inference
# ----------------------------------------------------------------------


def infer_type(
    expr: ast.Expr, fields: Sequence[Field], resolver: FunctionResolver
) -> Optional[SqlType]:
    """Infer the SQL type of ``expr`` over the given input schema."""
    if isinstance(expr, ast.Literal):
        return expr.sql_type
    if isinstance(expr, ast.PositionRef):
        return fields[expr.index].sql_type
    if isinstance(expr, ast.ColumnRef):
        for field in fields:
            if field.matches(expr):
                return field.sql_type
        raise PlanError(f"unknown column {expr.qualified!r} in type inference")
    if isinstance(expr, ast.BinaryOp):
        if expr.op in ("AND", "OR", "LIKE", "=", "!=", "<", "<=", ">", ">="):
            return SqlType.BOOL
        if expr.op == "||":
            return SqlType.TEXT
        left = infer_type(expr.left, fields, resolver)
        right = infer_type(expr.right, fields, resolver)
        if expr.op == "/":
            return SqlType.FLOAT
        return common_type(left, right) or SqlType.INT
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return SqlType.BOOL
        return infer_type(expr.operand, fields, resolver)
    if isinstance(expr, (ast.Between, ast.InList, ast.IsNull)):
        return SqlType.BOOL
    if isinstance(expr, ast.Cast):
        return expr.target
    if isinstance(expr, ast.CaseExpr):
        result: Optional[SqlType] = None
        for _, branch in expr.whens:
            result = common_type(result, infer_type(branch, fields, resolver))
        if expr.else_result is not None:
            result = common_type(result, infer_type(expr.else_result, fields, resolver))
        return result
    if isinstance(expr, ast.FunctionCall):
        builtin = resolver.builtin_scalar(expr.name)
        if builtin is not None:
            arg_types = [infer_type(a, fields, resolver) for a in expr.args]
            return builtin.result_type(arg_types)
        agg = resolver.builtin_aggregate(expr.name)
        if agg is not None:
            arg_types = [infer_type(a, fields, resolver) for a in expr.args]
            return agg.result_type(arg_types)
        registered = resolver.udf(expr.name)
        if registered is not None:
            return registered.definition.signature.return_types[0]
        raise PlanError(f"unknown function {expr.name!r}")
    raise PlanError(f"cannot infer type of {type(expr).__name__}")


# ----------------------------------------------------------------------
# Row-at-a-time evaluation
# ----------------------------------------------------------------------

_ARITH = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARE = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class RowEvaluator:
    """Evaluates expressions over single row tuples."""

    def __init__(self, fields: Sequence[Field], resolver: FunctionResolver):
        self.fields = tuple(fields)
        self.resolver = resolver

    def _index_of(self, ref: ast.ColumnRef) -> int:
        matches = [i for i, f in enumerate(self.fields) if f.matches(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise PlanError(f"unknown column {ref.qualified!r}")
        raise PlanError(f"ambiguous column {ref.qualified!r}")

    def evaluate(self, expr: ast.Expr, row: Sequence[Any]) -> Any:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.PositionRef):
            return row[expr.index]
        if isinstance(expr, ast.ColumnRef):
            return row[self._index_of(expr)]
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, ast.UnaryOp):
            value = self.evaluate(expr.operand, row)
            if expr.op == "NOT":
                return None if value is None else (not value)
            return None if value is None else -value
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.expr, row)
            return (value is not None) if expr.negated else (value is None)
        if isinstance(expr, ast.Between):
            value = self.evaluate(expr.expr, row)
            low = self.evaluate(expr.low, row)
            high = self.evaluate(expr.high, row)
            if value is None or low is None or high is None:
                return None
            result = low <= value <= high
            return (not result) if expr.negated else result
        if isinstance(expr, ast.InList):
            return self._in_list(expr, row)
        if isinstance(expr, ast.CaseExpr):
            return self._case(expr, row)
        if isinstance(expr, ast.Cast):
            return _cast_value(self.evaluate(expr.expr, row), expr.target)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr, row)
        raise ExecutionError(f"cannot evaluate {type(expr).__name__} per row")

    def _binary(self, expr: ast.BinaryOp, row: Sequence[Any]) -> Any:
        op = expr.op
        if op == "AND":
            left = self.evaluate(expr.left, row)
            if left is False:
                return False
            right = self.evaluate(expr.right, row)
            if right is False:
                return False
            if left is None or right is None:
                return None
            return True
        if op == "OR":
            left = self.evaluate(expr.left, row)
            if left is True:
                return True
            right = self.evaluate(expr.right, row)
            if right is True:
                return True
            if left is None or right is None:
                return None
            return False
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is None or right is None:
            return None
        if op in _COMPARE:
            return _COMPARE[op](left, right)
        if op in _ARITH:
            try:
                return _ARITH[op](left, right)
            except ZeroDivisionError:
                return None
        if op == "||":
            return str(left) + str(right)
        if op == "LIKE":
            return like_to_regex(right).match(left) is not None
        raise ExecutionError(f"unknown operator {op!r}")

    def _in_list(self, expr: ast.InList, row: Sequence[Any]) -> Any:
        value = self.evaluate(expr.expr, row)
        if value is None:
            return None
        saw_null = False
        for item in expr.items:
            candidate = self.evaluate(item, row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return not expr.negated
        if saw_null:
            return None
        return expr.negated

    def _case(self, expr: ast.CaseExpr, row: Sequence[Any]) -> Any:
        if expr.operand is not None:
            operand = self.evaluate(expr.operand, row)
            for cond, result in expr.whens:
                candidate = self.evaluate(cond, row)
                if candidate is not None and candidate == operand:
                    return self.evaluate(result, row)
        else:
            for cond, result in expr.whens:
                if self.evaluate(cond, row) is True:
                    return self.evaluate(result, row)
        if expr.else_result is not None:
            return self.evaluate(expr.else_result, row)
        return None

    def _call(self, expr: ast.FunctionCall, row: Sequence[Any]) -> Any:
        builtin = self.resolver.builtin_scalar(expr.name)
        args = [self.evaluate(a, row) for a in expr.args]
        if builtin is not None:
            return builtin(*args)
        registered = self.resolver.udf(expr.name)
        if registered is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        if registered.kind is not UdfKind.SCALAR:
            raise ExecutionError(
                f"{expr.name!r} is a {registered.kind} UDF; only scalar UDFs "
                f"may appear in row expressions"
            )
        # Tuple-at-a-time UDF invocation: one boundary round trip per call.
        definition = registered.definition
        if definition.strict and any(a is None for a in args):
            return None
        converted = [
            boundary.c_to_python(
                boundary.engine_to_c(value, sql_type), sql_type
            )
            for value, sql_type in zip(args, definition.signature.arg_types)
        ]
        out_type = definition.signature.return_types[0]
        result = registered.call_scalar_value(converted)
        return boundary.c_to_engine(
            boundary.python_to_c(result, out_type), out_type
        )


# ----------------------------------------------------------------------
# Vectorized evaluation
# ----------------------------------------------------------------------


class VectorEvaluator:
    """Evaluates expressions over whole columns.

    ``columns`` passed to :meth:`evaluate` must align positionally with
    the ``fields`` schema given at construction.
    """

    def __init__(self, fields: Sequence[Field], resolver: FunctionResolver):
        self.fields = tuple(fields)
        self.resolver = resolver
        self._row_eval = RowEvaluator(fields, resolver)

    # -- public API ----------------------------------------------------

    def evaluate(
        self, expr: ast.Expr, columns: Sequence[Column], size: int, name: str = "expr"
    ) -> Column:
        """Evaluate ``expr`` over ``columns`` into a column named ``name``."""
        result = self._eval(expr, columns, size)
        return result.renamed(name)

    def predicate_mask(
        self, expr: ast.Expr, columns: Sequence[Column], size: int
    ) -> np.ndarray:
        """Evaluate a predicate into a boolean mask (NULL -> False)."""
        col = self._eval(expr, columns, size)
        data = col.numpy()
        if col.sql_type is SqlType.BOOL:
            mask = np.asarray(data, dtype=bool) & ~col.null_mask()
        else:
            mask = np.fromiter(
                (bool(v) for v in col.to_list()), dtype=bool, count=size
            )
        return mask

    # -- internals -----------------------------------------------------

    def _index_of(self, ref: ast.ColumnRef) -> int:
        matches = [i for i, f in enumerate(self.fields) if f.matches(ref)]
        if len(matches) == 1:
            return matches[0]
        if not matches:
            raise PlanError(f"unknown column {ref.qualified!r}")
        unqualified = [i for i in matches if self.fields[i].qualifier is None]
        if ref.table is None and len(unqualified) == 1:
            return unqualified[0]
        raise PlanError(f"ambiguous column {ref.qualified!r}")

    def _eval(self, expr: ast.Expr, columns: Sequence[Column], size: int) -> Column:
        if isinstance(expr, ast.PositionRef):
            return columns[expr.index]
        if isinstance(expr, ast.ColumnRef):
            return columns[self._index_of(expr)]
        if isinstance(expr, ast.Literal):
            sql_type = expr.sql_type or SqlType.INT
            return Column("lit", sql_type, [expr.value] * size, validate=False)
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, columns, size)
        if isinstance(expr, ast.FunctionCall):
            return self._call(expr, columns, size)
        # Everything else: a single fused row loop over the inputs.
        return self._rowwise(expr, columns, size)

    def _rowwise(self, expr: ast.Expr, columns: Sequence[Column], size: int) -> Column:
        """Row-wise fallback for structural expressions (CASE, BETWEEN, ...).

        Function calls nested anywhere inside the expression are first
        *lifted out* and evaluated vectorized (so UDFs keep their bulk
        invocation path); only the remaining structure runs per row.
        """
        sql_type = infer_type(expr, self.fields, self.resolver) or SqlType.TEXT
        lifted_cols: List[Column] = []
        lifted_fields: List[Field] = []

        def lift(node: ast.Expr) -> ast.Expr:
            if isinstance(node, ast.FunctionCall):
                out_name = f"__vec_{len(lifted_cols)}"
                col = self._call(node, columns, size)
                lifted_cols.append(col)
                lifted_fields.append(Field(out_name, col.sql_type, "__vec"))
                return ast.ColumnRef(out_name, table="__vec")
            return ast.rewrite_children(node, lift)

        rewritten = lift(expr)
        all_fields = tuple(self.fields) + tuple(lifted_fields)
        all_columns = list(columns) + lifted_cols
        row_eval = RowEvaluator(all_fields, self.resolver)
        lists = [col.to_list() for col in all_columns]
        evaluate = row_eval.evaluate
        if lists:
            out = [evaluate(rewritten, row) for row in zip(*lists)]
        else:
            out = [evaluate(rewritten, ()) for _ in range(size)]
        return Column("expr", sql_type, out, validate=False)

    def _binary(self, expr: ast.BinaryOp, columns: Sequence[Column], size: int) -> Column:
        op = expr.op
        if op in _ARITH or op in _COMPARE:
            left = self._eval(expr.left, columns, size)
            right = self._eval(expr.right, columns, size)
            if is_numeric(left.sql_type) and is_numeric(right.sql_type):
                return self._numeric_binary(op, left, right, size)
            if op in _COMPARE:
                return self._generic_compare(op, left, right, size)
            return self._generic_arith(op, left, right, size)
        if op in ("AND", "OR"):
            left = self._eval(expr.left, columns, size)
            right = self._eval(expr.right, columns, size)
            return self._logical(op, left, right, size)
        if op == "||":
            left = self._eval(expr.left, columns, size)
            right = self._eval(expr.right, columns, size)
            out = [
                None if (a is None or b is None) else str(a) + str(b)
                for a, b in zip(left.to_list(), right.to_list())
            ]
            return Column("expr", SqlType.TEXT, out, validate=False)
        if op == "LIKE":
            left = self._eval(expr.left, columns, size)
            right = self._eval(expr.right, columns, size)
            right_values = right.to_list()
            out: List[Any] = []
            for value, pattern in zip(left.to_list(), right_values):
                if value is None or pattern is None:
                    out.append(None)
                else:
                    out.append(like_to_regex(pattern).match(value) is not None)
            return Column("expr", SqlType.BOOL, out, validate=False)
        raise ExecutionError(f"unknown operator {op!r}")

    def _numeric_binary(self, op: str, left: Column, right: Column, size: int) -> Column:
        a = left.numpy()
        b = right.numpy()
        null = left.null_mask() | right.null_mask()
        if op in _COMPARE:
            with np.errstate(invalid="ignore"):
                data = _COMPARE[op](a, b)
            return Column.from_numpy("expr", SqlType.BOOL, data, null)
        if op == "/":
            with np.errstate(divide="ignore", invalid="ignore"):
                data = np.true_divide(a, b)
            null = null | (np.asarray(b) == 0)
            data = np.where(null, 0.0, data)
            return Column.from_numpy("expr", SqlType.FLOAT, data, null)
        if op == "%":
            zero = np.asarray(b) == 0
            safe_b = np.where(zero, 1, b)
            data = np.mod(a, safe_b)
            return Column.from_numpy(
                "expr", _result_numeric_type(left, right), data, null | zero
            )
        data = _ARITH[op](a, b)
        return Column.from_numpy("expr", _result_numeric_type(left, right), data, null)

    def _generic_compare(self, op: str, left: Column, right: Column, size: int) -> Column:
        func = _COMPARE[op]
        out = [
            None if (a is None or b is None) else func(a, b)
            for a, b in zip(left.to_list(), right.to_list())
        ]
        return Column("expr", SqlType.BOOL, out, validate=False)

    def _generic_arith(self, op: str, left: Column, right: Column, size: int) -> Column:
        func = _ARITH[op]
        out = []
        for a, b in zip(left.to_list(), right.to_list()):
            if a is None or b is None:
                out.append(None)
            else:
                try:
                    out.append(func(a, b))
                except ZeroDivisionError:
                    out.append(None)
        sql_type = SqlType.FLOAT if op == "/" else (
            left.sql_type if left.sql_type is not SqlType.BOOL else SqlType.INT
        )
        return Column("expr", sql_type, out, validate=False)

    def _logical(self, op: str, left: Column, right: Column, size: int) -> Column:
        a = np.asarray(left.numpy(), dtype=bool)
        b = np.asarray(right.numpy(), dtype=bool)
        a_null = left.null_mask()
        b_null = right.null_mask()
        a_val = a & ~a_null
        b_val = b & ~b_null
        if op == "AND":
            data = a_val & b_val
            # NULL unless the other side is definitively False
            null = (a_null & ~(~b_null & ~b_val)) | (b_null & ~(~a_null & ~a_val))
        else:
            data = a_val | b_val
            null = (a_null & ~b_val) | (b_null & ~a_val)
        return Column.from_numpy("expr", SqlType.BOOL, data, null)

    def _call(self, expr: ast.FunctionCall, columns: Sequence[Column], size: int) -> Column:
        builtin = self.resolver.builtin_scalar(expr.name)
        if builtin is not None:
            arg_cols = [self._eval(a, columns, size) for a in expr.args]
            lists = [c.to_list() for c in arg_cols]
            if lists:
                out = [builtin(*row) for row in zip(*lists)]
            else:
                out = [builtin() for _ in range(size)]
            sql_type = builtin.result_type([c.sql_type for c in arg_cols])
            return Column("expr", sql_type, out, validate=False)
        registered = self.resolver.udf(expr.name)
        if registered is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        if registered.kind is not UdfKind.SCALAR:
            raise ExecutionError(
                f"{expr.name!r} is a {registered.kind} UDF and cannot be "
                f"evaluated as a scalar expression"
            )
        arg_cols = [self._eval(a, columns, size) for a in expr.args]
        return registered.call_scalar(arg_cols, size)


def _result_numeric_type(left: Column, right: Column) -> SqlType:
    if SqlType.FLOAT in (left.sql_type, right.sql_type):
        return SqlType.FLOAT
    return SqlType.INT


def _cast_value(value: Any, target: SqlType) -> Any:
    if value is None:
        return None
    try:
        if target is SqlType.INT:
            return int(float(value)) if isinstance(value, str) else int(value)
        if target is SqlType.FLOAT:
            return float(value)
        if target is SqlType.TEXT:
            return str(value)
        if target is SqlType.BOOL:
            return bool(value)
    except (TypeError, ValueError):
        return None
    return value
