"""EXPLAIN rendering.

QFusor's client probes the engine's optimizer with an EXPLAIN statement
and consumes the resulting plan (paper section 5).  Engine adapters hand
QFusor the structured :class:`~repro.engine.planner.PlannedQuery`; this
module renders the human-readable text form EXPLAIN returns to users.
"""

from __future__ import annotations

from typing import List

from .plan import PlanNode
from .planner import PlannedQuery

__all__ = ["explain_text"]


def explain_text(planned: PlannedQuery) -> str:
    """Render an optimized plan as an indented operator tree."""
    lines: List[str] = []
    for name, plan in planned.ctes:
        lines.append(f"CTE {name}:")
        _render(plan, lines, 1)
    _render(planned.root, lines, 0)
    return "\n".join(lines)


def _render(node: PlanNode, lines: List[str], depth: int) -> None:
    rows = "" if node.est_rows is None else f"  [rows~{node.est_rows:.0f}]"
    lines.append("  " * depth + node.label() + rows)
    for child in node.children:
        _render(child, lines, depth + 1)
