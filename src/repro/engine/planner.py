"""The planner: lowers SQL ASTs into logical plan trees.

Aggregation handling follows the classic split: aggregate-call
sub-expressions in the select list / HAVING are replaced by references to
synthetic columns, the :class:`~repro.engine.plan.Aggregate` node computes
group keys and aggregate results, and a post-projection evaluates the
rewritten outer expressions.

A table UDF in the select list becomes an :class:`~repro.engine.plan.Expand`
node (one input row -> many output rows with replicated siblings), the
paper's Expand variant.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..sql import ast_nodes as ast
from ..storage.catalog import Catalog
from ..types import SqlType
from ..udf.definition import UdfKind
from .expressions import FunctionResolver, infer_type
from .plan import (
    AggCall, Aggregate, CteScan, Distinct, Expand, Field, Filter, Join,
    Limit, OneRow, PlanNode, Project, ProjectItem, Requalify, Scan,
    SetOperation, Sort, SortKey, TableFunctionScan,
)

__all__ = ["Planner", "PlannedQuery"]


class PlannedQuery:
    """A root plan plus the ordered CTE plans it depends on."""

    def __init__(self, root: PlanNode, ctes: Sequence[Tuple[str, PlanNode]]):
        self.root = root
        self.ctes = list(ctes)


class Planner:
    def __init__(self, catalog: Catalog, resolver: FunctionResolver):
        self.catalog = catalog
        self.resolver = resolver

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def plan_select(self, select: ast.Select) -> PlannedQuery:
        cte_plans: List[Tuple[str, PlanNode]] = []
        cte_schemas: Dict[str, Tuple[Field, ...]] = {}
        for name, query in select.ctes:
            planned = self._plan_query(query, cte_schemas)
            cte_plans.append((name, planned))
            cte_schemas[name.lower()] = planned.schema
        root = self._plan_query(select, cte_schemas, skip_ctes=True)
        return PlannedQuery(root, cte_plans)

    # ------------------------------------------------------------------
    # SELECT planning
    # ------------------------------------------------------------------

    def _plan_query(
        self,
        select: ast.Select,
        cte_schemas: Dict[str, Tuple[Field, ...]],
        *,
        skip_ctes: bool = False,
    ) -> PlanNode:
        if select.ctes and not skip_ctes:
            raise PlanError("nested WITH clauses are not supported")

        node = self._plan_from(select.from_items, cte_schemas)

        if select.where is not None:
            node = Filter(node, select.where)

        has_aggregates = bool(select.group_by) or any(
            self._contains_aggregate(item.expr) for item in select.items
        ) or (select.having is not None and self._contains_aggregate(select.having))

        if has_aggregates:
            node = self._plan_aggregate(node, select)
        else:
            node = self._plan_projection(node, select)

        if select.distinct:
            node = Distinct(node)

        if select.set_op is not None:
            right = self._plan_query(select.set_op.right, cte_schemas)
            if len(right.schema) != len(node.schema):
                raise PlanError(
                    f"{select.set_op.op}: arity mismatch "
                    f"({len(node.schema)} vs {len(right.schema)})"
                )
            node = SetOperation(node, right, select.set_op.op)

        if select.order_by:
            node = self._plan_order_by(node, select.order_by)

        if select.limit is not None:
            node = Limit(node, select.limit, select.offset or 0)

        return node

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _plan_from(
        self,
        from_items: Sequence[ast.FromItem],
        cte_schemas: Dict[str, Tuple[Field, ...]],
    ) -> PlanNode:
        if not from_items:
            return OneRow()
        nodes = [self._plan_from_item(item, cte_schemas) for item in from_items]
        node = nodes[0]
        for right in nodes[1:]:  # comma list = cross join
            node = Join(node, right, "CROSS", None, node.schema + right.schema)
        return node

    def _plan_from_item(
        self, item: ast.FromItem, cte_schemas: Dict[str, Tuple[Field, ...]]
    ) -> PlanNode:
        if isinstance(item, ast.TableRef):
            binding = item.binding
            key = item.name.lower()
            if key in cte_schemas:
                schema = [
                    Field(f.name, f.sql_type, binding) for f in cte_schemas[key]
                ]
                return CteScan(item.name, binding, schema)
            table = self.catalog.get(item.name)
            schema = [
                Field(name, sql_type, binding) for name, sql_type in table.schema
            ]
            return Scan(item.name, binding, schema)
        if isinstance(item, ast.SubqueryRef):
            child = self._plan_query(item.query, cte_schemas)
            schema = [Field(f.name, f.sql_type, item.alias) for f in child.schema]
            return Requalify(child, schema)
        if isinstance(item, ast.TableFunctionRef):
            return self._plan_table_function(item, cte_schemas)
        if isinstance(item, ast.Join):
            left = self._plan_from_item(item.left, cte_schemas)
            right = self._plan_from_item(item.right, cte_schemas)
            return Join(
                left, right, item.kind, item.condition, left.schema + right.schema
            )
        raise PlanError(f"unsupported FROM item {type(item).__name__}")

    def _plan_table_function(
        self,
        item: ast.TableFunctionRef,
        cte_schemas: Dict[str, Tuple[Field, ...]],
    ) -> PlanNode:
        registered = self.resolver.udf(item.call.name)
        if registered is None or registered.kind is not UdfKind.TABLE:
            raise PlanError(f"{item.call.name!r} is not a registered table UDF")
        if len(item.subquery_args) > 1:
            raise PlanError("table UDFs accept at most one input subquery")
        input_plan = (
            self._plan_query(item.subquery_args[0], cte_schemas)
            if item.subquery_args
            else None
        )
        const_args = [_literal_value(a) for a in item.call.args]
        definition = registered.definition
        schema = [
            Field(name, sql_type, item.alias)
            for name, sql_type in zip(
                definition.out_columns, definition.signature.return_types
            )
        ]
        return TableFunctionScan(
            definition.name, item.alias, input_plan, const_args, schema
        )

    # ------------------------------------------------------------------
    # Projection (non-aggregate)
    # ------------------------------------------------------------------

    def _plan_projection(self, child: PlanNode, select: ast.Select) -> PlanNode:
        items = self._expand_stars(select.items, child)
        expand_indexes = [
            i for i, item in enumerate(items) if self._is_table_udf_call(item.expr)
        ]
        if len(expand_indexes) > 1:
            raise PlanError("at most one table UDF per select list")
        if expand_indexes:
            return self._plan_expand(child, items, expand_indexes[0])

        project_items = []
        fields = []
        for i, item in enumerate(items):
            name = _output_name(item, i)
            sql_type = infer_type(item.expr, child.schema, self.resolver)
            project_items.append(ProjectItem(item.expr, name))
            fields.append(Field(name, sql_type or SqlType.TEXT))
        return Project(child, project_items, fields)

    def _plan_expand(
        self, child: PlanNode, items: Sequence[ast.SelectItem], expand_at: int
    ) -> PlanNode:
        expand_item = items[expand_at]
        call = expand_item.expr
        assert isinstance(call, ast.FunctionCall)
        registered = self.resolver.udf(call.name)
        definition = registered.definition

        # Split the call's arguments into column expressions (the UDF's
        # streaming input) and trailing literal constants.
        arg_exprs: List[ast.Expr] = []
        const_args: List[Any] = []
        for arg in call.args:
            if isinstance(arg, ast.Literal):
                const_args.append(arg.value)
            else:
                if const_args:
                    raise PlanError(
                        f"table UDF {call.name!r}: constant arguments must "
                        f"follow column arguments"
                    )
                arg_exprs.append(arg)

        if len(definition.out_columns) == 1:
            out_names = [expand_item.alias or definition.out_columns[0]]
        else:
            out_names = list(definition.out_columns)

        passthrough = []
        fields: List[Field] = []
        for i, item in enumerate(items):
            if i == expand_at:
                for name, sql_type in zip(
                    out_names, definition.signature.return_types
                ):
                    fields.append(Field(name, sql_type))
                continue
            name = _output_name(item, i)
            sql_type = infer_type(item.expr, child.schema, self.resolver)
            passthrough.append(ProjectItem(item.expr, name))
            fields.append(Field(name, sql_type or SqlType.TEXT))

        # Order: passthrough items keep their relative positions; the
        # expand outputs sit where the call appeared.  The executor emits
        # columns in schema order.
        return Expand(
            child, call, arg_exprs, const_args, out_names, passthrough, fields
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def _plan_aggregate(self, child: PlanNode, select: ast.Select) -> PlanNode:
        items = self._expand_stars(select.items, child)
        alias_map = {
            item.alias.lower(): item.expr for item in items if item.alias
        }

        group_items: List[ProjectItem] = []
        group_fields: List[Field] = []
        for i, expr in enumerate(select.group_by):
            expr = self._substitute_alias(expr, alias_map, child)
            name = _group_name(expr, i)
            sql_type = infer_type(expr, child.schema, self.resolver)
            group_items.append(ProjectItem(expr, name))
            group_fields.append(Field(name, sql_type or SqlType.TEXT))

        agg_calls: List[AggCall] = []
        agg_fields: List[Field] = []

        def lift(expr: ast.Expr) -> ast.Expr:
            """Replace aggregate calls with refs to synthetic columns."""
            if isinstance(expr, ast.FunctionCall) and self.resolver.is_aggregate_call(
                expr.name
            ):
                out_name = f"__agg_{len(agg_calls)}"
                is_udf = self.resolver.builtin_aggregate(expr.name) is None
                agg_calls.append(
                    AggCall(expr.name.lower(), expr.args, expr.distinct, out_name, is_udf)
                )
                if is_udf:
                    sql_type = self.resolver.udf(
                        expr.name
                    ).definition.signature.return_types[0]
                else:
                    arg_types = [
                        infer_type(a, child.schema, self.resolver) for a in expr.args
                    ]
                    sql_type = self.resolver.builtin_aggregate(expr.name).result_type(
                        arg_types
                    )
                agg_fields.append(Field(out_name, sql_type))
                return ast.ColumnRef(out_name)
            return _rewrite_children(expr, lift)

        lifted_items = [ast.SelectItem(lift(item.expr), item.alias) for item in items]
        lifted_having = lift(select.having) if select.having is not None else None

        agg_schema = tuple(group_fields) + tuple(agg_fields)
        node: PlanNode = Aggregate(child, group_items, agg_calls, agg_schema)

        if lifted_having is not None:
            node = Filter(node, lifted_having)

        project_items: List[ProjectItem] = []
        out_fields: List[Field] = []
        for i, item in enumerate(lifted_items):
            name = _output_name(items[i], i)
            # Select items in an aggregate query must be group keys,
            # aggregate results, or expressions over them.
            expr = self._match_group_expr(item.expr, group_items)
            sql_type = infer_type(expr, node.schema, self.resolver)
            project_items.append(ProjectItem(expr, name))
            out_fields.append(Field(name, sql_type or SqlType.TEXT))
        return Project(node, project_items, out_fields)

    def _match_group_expr(
        self, expr: ast.Expr, group_items: Sequence[ProjectItem]
    ) -> ast.Expr:
        """Rewrite an expression that syntactically equals a group key into
        a reference to that key's output column."""
        for item in group_items:
            if expr == item.expr:
                return ast.ColumnRef(item.name)
        return _rewrite_children(
            expr, lambda e: self._match_group_expr(e, group_items)
        )

    def _substitute_alias(
        self,
        expr: ast.Expr,
        alias_map: Dict[str, ast.Expr],
        child: PlanNode,
    ) -> ast.Expr:
        """GROUP BY may name a select alias; substitute its definition."""
        if isinstance(expr, ast.ColumnRef) and expr.table is None:
            in_child = any(f.matches(expr) for f in child.schema)
            if not in_child and expr.name.lower() in alias_map:
                return alias_map[expr.name.lower()]
        return expr

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _expand_stars(
        self, items: Sequence[ast.SelectItem], child: PlanNode
    ) -> List[ast.SelectItem]:
        expanded: List[ast.SelectItem] = []
        for item in items:
            if isinstance(item.expr, ast.Star):
                for field in child.schema:
                    if item.expr.table is not None and (
                        field.qualifier is None
                        or field.qualifier.lower() != item.expr.table.lower()
                    ):
                        continue
                    expanded.append(
                        ast.SelectItem(
                            ast.ColumnRef(field.name, table=field.qualifier)
                        )
                    )
            else:
                expanded.append(item)
        return expanded

    def _contains_aggregate(self, expr: ast.Expr) -> bool:
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.FunctionCall) and self.resolver.is_aggregate_call(
                node.name
            ):
                return True
        return False

    def _is_table_udf_call(self, expr: ast.Expr) -> bool:
        return (
            isinstance(expr, ast.FunctionCall)
            and self.resolver.udf_kind(expr.name) is UdfKind.TABLE
        )

    def _plan_order_by(
        self, node: PlanNode, order_by: Sequence[ast.OrderItem]
    ) -> PlanNode:
        """Plan ORDER BY, including keys not present in the select list.

        Keys that only resolve against a projection's *input* are carried
        through as hidden sort columns and dropped afterwards (standard
        SQL behaviour for ``SELECT b FROM t ORDER BY a``).
        """
        keys: List[SortKey] = []
        hidden: List[Tuple[ast.OrderItem, int]] = []
        for item in order_by:
            if self._resolves(item.expr, node.schema):
                keys.append(SortKey(item.expr, item.ascending))
            elif isinstance(node, Project) and self._resolves(
                item.expr, node.child.schema
            ):
                hidden.append((item, len(keys)))
                keys.append(None)  # placeholder, filled below
            else:
                raise PlanError(
                    "ORDER BY key must be resolvable against the select "
                    "list or the FROM input"
                )
        if not hidden:
            return Sort(node, keys)
        assert isinstance(node, Project)
        items = list(node.items)
        fields = list(node.schema)
        for index, (item, key_pos) in enumerate(hidden):
            name = f"__sort_{index}"
            sql_type = infer_type(item.expr, node.child.schema, self.resolver)
            items.append(ProjectItem(item.expr, name))
            fields.append(Field(name, sql_type or SqlType.TEXT, "__sort"))
            keys[key_pos] = SortKey(
                ast.ColumnRef(name, table="__sort"), item.ascending
            )
        widened = Project(node.child, items, fields)
        sorted_node = Sort(widened, keys)
        # Final projection drops the hidden sort columns; positional refs
        # avoid ambiguity when output names repeat (self-join results).
        visible = [
            ProjectItem(ast.PositionRef(i), f.name)
            for i, f in enumerate(node.schema)
        ]
        return Project(sorted_node, visible, node.schema)

    def _resolves(self, expr: ast.Expr, schema: Sequence[Field]) -> bool:
        refs = [e for e in ast.walk_expr(expr) if isinstance(e, ast.ColumnRef)]
        return all(any(f.matches(r) for f in schema) for r in refs)


_rewrite_children = ast.rewrite_children


def _literal_value(expr: ast.Expr) -> Any:
    if isinstance(expr, ast.Literal):
        return expr.value
    if (
        isinstance(expr, ast.UnaryOp)
        and expr.op == "-"
        and isinstance(expr.operand, ast.Literal)
    ):
        return -expr.operand.value
    raise PlanError(
        "table UDF arguments in FROM must be literals or one subquery"
    )


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name
    if isinstance(item.expr, ast.FunctionCall):
        return item.expr.name.lower()
    return f"col{index}"


def _group_name(expr: ast.Expr, index: int) -> str:
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.FunctionCall):
        return expr.name.lower()
    return f"__key_{index}"
