"""Vectorized, operator-at-a-time executor (the MonetDB-style model).

Each operator consumes fully materialized input columns and produces fully
materialized output columns — intermediate results exist between every
pair of operators.  This is the execution model whose UDF-adjacent
materializations QFusor's fusion eliminates.

The executor returns ``(columns, size)`` pairs internally so zero-column
relations (FROM-less selects) are handled cleanly; the public entry point
wraps results into a :class:`~repro.storage.table.Table`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExecutionError
from ..obs import METRICS, OBS
from ..obs import tracer as obs_tracer
from ..resilience.governor import checkpoint, guarded_iter
from ..resilience.governor import current as governor_current
from ..sql import ast_nodes as ast
from ..storage.catalog import Catalog
from ..storage.column import Column
from ..storage.table import Table
from ..types import SqlType
from ..udf.definition import UdfKind
from .expressions import FunctionResolver, VectorEvaluator, RowEvaluator
from .plan import (
    Aggregate, CteScan, Distinct, Expand, Field, Filter, FusedFilter,
    Join, Limit, OneRow, PlanNode, Project, Requalify, Scan, SetOperation,
    Sort, TableFunctionScan,
)
from .planner import PlannedQuery

__all__ = ["VectorExecutor"]

Relation = Tuple[List[Column], int]


class VectorExecutor:
    def __init__(self, catalog: Catalog, resolver: FunctionResolver):
        self.catalog = catalog
        self.resolver = resolver

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def execute(self, planned: PlannedQuery, result_name: str = "result") -> Table:
        ctes: Dict[str, Relation] = {}
        for name, plan in planned.ctes:
            ctes[name.lower()] = self._run(plan, ctes)
        columns, size = self._run(planned.root, ctes)
        return _as_table(result_name, planned.root.schema, columns, size)

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------

    def _run(self, node: PlanNode, ctes: Dict[str, Relation]) -> Relation:
        checkpoint()  # operator boundary: cancellation/deadline check
        if OBS.tracing or OBS.metrics:
            result = self._run_observed(node, ctes)
        else:
            result = self._dispatch(node, ctes)
        # Charge the row budget per operator output, matching the tuple
        # engine's per-operator guarded_iter semantics (rows *processed*,
        # not final result rows).
        ctx = governor_current()
        if ctx is not None:
            ctx.charge_rows(result[1])
        return result

    def _run_observed(self, node: PlanNode, ctes: Dict[str, Relation]) -> Relation:
        """Per-operator span + rows/sec metrics (observability on only)."""
        name = type(node).__name__
        sp = (
            obs_tracer.span_start(f"operator:{name}", "operator")
            if OBS.tracing else None
        )
        start = time.perf_counter()
        result = self._dispatch(node, ctes)
        size = result[1]
        if OBS.metrics:
            METRICS.counter("repro_operator_rows_total", op=name).inc(size)
            METRICS.histogram("repro_operator_seconds", op=name).observe(
                time.perf_counter() - start
            )
        if sp is not None:
            obs_tracer.span_end(sp, rows=size)
        return result

    def _dispatch(self, node: PlanNode, ctes: Dict[str, Relation]) -> Relation:
        if isinstance(node, Scan):
            table = self.catalog.get(node.table_name)
            return list(table.columns), table.num_rows
        if isinstance(node, CteScan):
            columns, size = ctes[node.cte_name.lower()]
            return list(columns), size
        if isinstance(node, OneRow):
            return [], 1
        if isinstance(node, Requalify):
            return self._run(node.child, ctes)
        if isinstance(node, Filter):
            return self._filter(node, ctes)
        if isinstance(node, FusedFilter):
            return self._fused_filter(node, ctes)
        if isinstance(node, Project):
            return self._project(node, ctes)
        if isinstance(node, Expand):
            return self._expand(node, ctes)
        if isinstance(node, Aggregate):
            return self._aggregate(node, ctes)
        if isinstance(node, Join):
            return self._join(node, ctes)
        if isinstance(node, Sort):
            return self._sort(node, ctes)
        if isinstance(node, Distinct):
            return self._distinct(node, ctes)
        if isinstance(node, Limit):
            return self._limit(node, ctes)
        if isinstance(node, SetOperation):
            return self._set_operation(node, ctes)
        if isinstance(node, TableFunctionScan):
            return self._table_function(node, ctes)
        raise ExecutionError(f"cannot execute plan node {type(node).__name__}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _filter(self, node: Filter, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        mask = evaluator.predicate_mask(node.predicate, columns, size)
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _fused_filter(self, node: FusedFilter, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        arg_columns = [
            evaluator.evaluate(expr, columns, size) for expr in node.arg_exprs
        ]
        registered = self.resolver.udf(node.udf_name)
        # The fused predicate is a scalar bool UDF (Table 3): one batched
        # invocation, then the engine applies the mask.
        predicate = registered.call_scalar(arg_columns, size)
        mask = np.asarray(predicate.numpy(), dtype=bool) & ~predicate.null_mask()
        return [col.filter(mask) for col in columns], int(mask.sum())

    def _project(self, node: Project, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        out = [
            evaluator.evaluate(item.expr, columns, size, item.name)
            for item in node.items
        ]
        return out, size

    def _expand(self, node: Expand, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        arg_columns = [
            evaluator.evaluate(expr, columns, size) for expr in node.arg_exprs
        ]
        registered = self.resolver.udf(node.call.name)
        lineage, out_columns = registered.call_table_expand(
            arg_columns, size, node.const_args
        )
        pass_columns = [
            evaluator.evaluate(item.expr, columns, size, item.name).take(lineage)
            for item in node.passthrough
        ]
        out_columns = [
            col.renamed(name) for col, name in zip(out_columns, node.out_names)
        ]
        result: List[Column] = []
        for source, index in node.layout:
            if source == "expand":
                result.append(out_columns[index])
            else:
                result.append(pass_columns[index])
        return result, len(lineage)

    def _aggregate(self, node: Aggregate, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)

        if node.group_items:
            key_columns = [
                evaluator.evaluate(item.expr, columns, size, item.name)
                for item in node.group_items
            ]
            key_lists = [c.to_list() for c in key_columns]
            group_of: Dict[Tuple, int] = {}
            group_ids = np.empty(size, dtype=np.int64)
            first_row: List[int] = []
            for i, key in enumerate(guarded_iter(zip(*key_lists))):
                gid = group_of.get(key)
                if gid is None:
                    gid = len(group_of)
                    group_of[key] = gid
                    first_row.append(i)
                group_ids[i] = gid
            num_groups = len(group_of)
            out_key_columns = [col.take(first_row) for col in key_columns]
        else:
            group_ids = np.zeros(size, dtype=np.int64)
            num_groups = 1
            out_key_columns = []

        agg_columns: List[Column] = []
        for call, field in zip(node.agg_calls, node.schema[len(node.group_items):]):
            agg_columns.append(
                self._run_aggregate_call(
                    call, field, evaluator, columns, size, group_ids, num_groups
                )
            )
        return out_key_columns + agg_columns, num_groups

    def _run_aggregate_call(
        self,
        call,
        field: Field,
        evaluator: VectorEvaluator,
        columns: Sequence[Column],
        size: int,
        group_ids: np.ndarray,
        num_groups: int,
    ) -> Column:
        arg_columns = [
            evaluator.evaluate(arg, columns, size) for arg in call.args
        ]
        if call.is_udf:
            registered = self.resolver.udf(call.func_name)
            if registered is None or registered.kind is not UdfKind.AGGREGATE:
                raise ExecutionError(f"unknown aggregate UDF {call.func_name!r}")
            if call.distinct:
                raise ExecutionError("DISTINCT is not supported for aggregate UDFs")
            values = registered.call_aggregate(
                arg_columns, size, group_ids, num_groups
            )
            return Column(field.name, field.sql_type, values, validate=False)

        builtin = self.resolver.builtin_aggregate(call.func_name)
        # numpy fast path for the common grouped sum/count over numerics
        fast = self._fast_aggregate(
            builtin, call, arg_columns, size, group_ids, num_groups, field
        )
        if fast is not None:
            return fast
        states = [builtin.make_state() for _ in range(num_groups)]
        seen: Optional[List[set]] = (
            [set() for _ in range(num_groups)] if call.distinct else None
        )
        arg_lists = [c.to_list() for c in arg_columns]
        if arg_lists:
            for i, row in enumerate(guarded_iter(zip(*arg_lists))):
                if any(v is None for v in row):
                    continue
                gid = int(group_ids[i])
                if seen is not None:
                    if row in seen[gid]:
                        continue
                    seen[gid].add(row)
                states[gid].step(*row)
        else:  # count(*)
            for i in range(size):
                states[int(group_ids[i])].step()
        values = [s.final() for s in states]
        return Column(field.name, field.sql_type, values, validate=False)

    def _fast_aggregate(
        self, builtin, call, arg_columns, size, group_ids, num_groups, field
    ) -> Optional[Column]:
        if call.distinct or size == 0:
            return None
        if builtin.name == "count" and not arg_columns:
            counts = np.bincount(group_ids, minlength=num_groups)
            return Column.from_numpy(field.name, SqlType.INT, counts.astype(np.int64))
        if builtin.name not in ("sum", "count", "avg") or len(arg_columns) != 1:
            return None
        col = arg_columns[0]
        if col.sql_type not in (SqlType.INT, SqlType.FLOAT, SqlType.BOOL):
            return None
        null = col.null_mask()
        valid = ~null
        data = np.where(valid, col.numpy(), 0)
        counts = np.bincount(group_ids[valid], minlength=num_groups)
        if builtin.name == "count":
            return Column.from_numpy(field.name, SqlType.INT, counts.astype(np.int64))
        sums = np.bincount(group_ids, weights=data.astype(np.float64), minlength=num_groups)
        empty = counts == 0
        if builtin.name == "avg":
            with np.errstate(invalid="ignore", divide="ignore"):
                avgs = sums / counts
            return Column.from_numpy(field.name, SqlType.FLOAT, np.where(empty, 0.0, avgs), empty)
        if field.sql_type is SqlType.INT:
            return Column.from_numpy(field.name, SqlType.INT, sums.astype(np.int64), empty)
        return Column.from_numpy(field.name, SqlType.FLOAT, sums, empty)

    # ------------------------------------------------------------------
    # Join
    # ------------------------------------------------------------------

    def _join(self, node: Join, ctes) -> Relation:
        left_cols, left_size = self._run(node.left, ctes)
        right_cols, right_size = self._run(node.right, ctes)

        equi, residual = _split_join_condition(
            node.condition, node.left.schema, node.right.schema
        )

        if equi:
            left_idx, right_idx, unmatched_left = self._hash_join(
                equi, left_cols, left_size, right_cols, right_size,
                node.left.schema, node.right.schema,
            )
        else:
            left_idx = np.repeat(np.arange(left_size), right_size)
            right_idx = np.tile(np.arange(right_size), left_size)
            unmatched_left = np.array([], dtype=np.int64)

        out_left = [c.take(left_idx) for c in left_cols]
        out_right = [c.take(right_idx) for c in right_cols]
        columns = out_left + out_right
        size = len(left_idx)

        if residual is not None:
            evaluator = VectorEvaluator(node.schema, self.resolver)
            mask = evaluator.predicate_mask(residual, columns, size)
            if node.kind == "LEFT":
                # Left rows whose matches all fail the residual also survive.
                failed = ~mask
                matched_left = set(np.asarray(left_idx)[mask].tolist())
                extra = [
                    i for i in set(np.asarray(left_idx)[failed].tolist())
                    if i not in matched_left
                ]
                unmatched_left = np.concatenate(
                    [unmatched_left, np.array(sorted(extra), dtype=np.int64)]
                )
            columns = [c.filter(mask) for c in columns]
            size = int(mask.sum())

        if node.kind == "LEFT" and len(unmatched_left):
            pad_left = [c.take(unmatched_left) for c in left_cols]
            pad_right = [
                Column(c.name, c.sql_type, [None] * len(unmatched_left), validate=False)
                for c in right_cols
            ]
            columns = [
                Column.concat(c.name, [c, p])
                for c, p in zip(columns, pad_left + pad_right)
            ]
            size += len(unmatched_left)
        return columns, size

    def _hash_join(
        self, equi, left_cols, left_size, right_cols, right_size,
        left_schema, right_schema,
    ):
        left_eval = VectorEvaluator(left_schema, self.resolver)
        right_eval = VectorEvaluator(right_schema, self.resolver)
        left_keys = [
            left_eval.evaluate(l_expr, left_cols, left_size).to_list()
            for l_expr, _ in equi
        ]
        right_keys = [
            right_eval.evaluate(r_expr, right_cols, right_size).to_list()
            for _, r_expr in equi
        ]
        table: Dict[Tuple, List[int]] = {}
        for j, key in enumerate(zip(*right_keys)):
            if any(k is None for k in key):
                continue
            table.setdefault(key, []).append(j)
        left_idx: List[int] = []
        right_idx: List[int] = []
        matched = np.zeros(left_size, dtype=bool)
        for i, key in enumerate(guarded_iter(zip(*left_keys))):
            if any(k is None for k in key):
                continue
            for j in table.get(key, ()):
                left_idx.append(i)
                right_idx.append(j)
                matched[i] = True
        unmatched = np.flatnonzero(~matched)
        return (
            np.asarray(left_idx, dtype=np.int64),
            np.asarray(right_idx, dtype=np.int64),
            unmatched,
        )

    # ------------------------------------------------------------------
    # Sort / Distinct / Limit / SetOperation / TableFunctionScan
    # ------------------------------------------------------------------

    def _sort(self, node: Sort, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        evaluator = VectorEvaluator(node.child.schema, self.resolver)
        order = list(range(size))
        # Stable sorts applied from the least-significant key backwards.
        for key in reversed(node.keys):
            values = evaluator.evaluate(key.expr, columns, size).to_list()
            ascending = key.ascending
            order.sort(key=lambda i: _sort_key(values[i], ascending))
        return [c.take(order) for c in columns], size

    def _distinct(self, node: Distinct, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        lists = [c.to_list() for c in columns]
        seen = set()
        keep: List[int] = []
        for i, row in enumerate(
            guarded_iter(zip(*lists) if lists else ((),) * size)
        ):
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return [c.take(keep) for c in columns], len(keep)

    def _limit(self, node: Limit, ctes) -> Relation:
        columns, size = self._run(node.child, ctes)
        start = node.offset
        stop = size if node.limit is None else min(start + node.limit, size)
        start = min(start, size)
        return [c.slice(start, stop) for c in columns], max(stop - start, 0)

    def _set_operation(self, node: SetOperation, ctes) -> Relation:
        left_cols, left_size = self._run(node.left, ctes)
        right_cols, right_size = self._run(node.right, ctes)
        if node.op == "UNION ALL":
            columns = [
                Column.concat(l.name, [l, r.renamed(l.name)])
                for l, r in zip(left_cols, right_cols)
            ]
            return columns, left_size + right_size
        left_rows = list(zip(*[c.to_list() for c in left_cols])) if left_cols else []
        right_rows = list(zip(*[c.to_list() for c in right_cols])) if right_cols else []
        if node.op == "UNION":
            rows = list(dict.fromkeys(left_rows + right_rows))
        elif node.op == "INTERSECT":
            right_set = set(right_rows)
            rows = list(dict.fromkeys(r for r in left_rows if r in right_set))
        elif node.op == "EXCEPT":
            right_set = set(right_rows)
            rows = list(dict.fromkeys(r for r in left_rows if r not in right_set))
        else:
            raise ExecutionError(f"unknown set operation {node.op!r}")
        columns = [
            Column(f.name, f.sql_type, [row[i] for row in rows], validate=False)
            for i, f in enumerate(node.schema)
        ]
        return columns, len(rows)

    def _table_function(self, node: TableFunctionScan, ctes) -> Relation:
        registered = self.resolver.udf(node.udf_name)
        if node.input_plan is not None:
            in_columns, in_size = self._run(node.input_plan, ctes)
        else:
            in_columns, in_size = [], 0
        out_columns = registered.call_table(in_columns, in_size, node.const_args)
        out_columns = [
            col.renamed(f.name) for col, f in zip(out_columns, node.schema)
        ]
        size = len(out_columns[0]) if out_columns else 0
        return out_columns, size


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------


def _as_table(
    name: str, schema: Sequence[Field], columns: Sequence[Column], size: int
) -> Table:
    named = [col.renamed(field.name) for col, field in zip(columns, schema)]
    if not named:  # zero-column result (e.g. FROM-less with no items): empty
        return Table(name, [])
    return Table(name, named)


class _Descending:
    """Inverts comparisons so descending sorts can keep NULLs last."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other):
        return other.value < self.value

    def __eq__(self, other):
        return other.value == self.value


def _sort_key(value, ascending: bool = True):
    # NULLS LAST in both directions (the common analytic default).
    if value is None:
        return (True, 0 if ascending else _Descending(0))
    return (False, value if ascending else _Descending(value))


def _split_join_condition(
    condition: Optional[ast.Expr],
    left_schema: Sequence[Field],
    right_schema: Sequence[Field],
):
    """Split a join condition into hashable equi pairs and a residual."""
    if condition is None:
        return [], None
    conjuncts = _conjuncts(condition)
    equi: List[Tuple[ast.Expr, ast.Expr]] = []
    residual: List[ast.Expr] = []
    for conj in conjuncts:
        pair = _equi_pair(conj, left_schema, right_schema)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(conj)
    residual_expr: Optional[ast.Expr] = None
    for conj in residual:
        residual_expr = (
            conj if residual_expr is None else ast.BinaryOp("AND", residual_expr, conj)
        )
    return equi, residual_expr


def _conjuncts(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _equi_pair(expr, left_schema, right_schema):
    if not (isinstance(expr, ast.BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if _resolvable(left, left_schema) and _resolvable(right, right_schema):
        return (left, right)
    if _resolvable(right, left_schema) and _resolvable(left, right_schema):
        return (right, left)
    return None


def _resolvable(expr: ast.Expr, schema: Sequence[Field]) -> bool:
    refs = [e for e in ast.walk_expr(expr) if isinstance(e, ast.ColumnRef)]
    if not refs:
        return False
    return all(any(f.matches(r) for f in schema) for r in refs)
