"""The SQL query engine substrate: plans, planner, optimizer, executors.

This is the reproduction's stand-in for the DBMSs QFusor plugs into.  It
supports two execution models behind one plan format:

* :mod:`repro.engine.executor_vector` — vectorized, operator-at-a-time
  with materialized intermediates (the MonetDB-style column-store model);
* :mod:`repro.engine.executor_tuple` — pipelined tuple-at-a-time
  iterators (the SQLite/PostgreSQL-style model).

The native optimizer (:mod:`repro.engine.optimizer`) treats UDFs as black
boxes — exactly the behaviour QFusor's fusion optimizer complements.
"""

from .database import Database
from .plan import PlanNode
from .explain import explain_text

__all__ = ["Database", "PlanNode", "explain_text"]
