"""Logical plan nodes.

The planner lowers SQL ASTs into trees of these nodes; both executors
interpret them, the native optimizer rewrites them, and QFusor's client
parses them (through EXPLAIN) to build its data-flow graph.

Every node carries an output schema of :class:`Field` entries (name, type,
optional qualifier) plus optimizer annotations (row estimates).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from ..errors import PlanError
from ..sql import ast_nodes as ast
from ..types import SqlType

__all__ = [
    "Field", "PlanNode", "Scan", "CteScan", "Project", "ProjectItem",
    "Expand", "Filter", "Aggregate", "AggCall", "Join", "Sort", "SortKey",
    "Distinct", "Limit", "SetOperation", "TableFunctionScan", "OneRow",
    "Requalify", "FusedFilter", "walk_plan",
]


@dataclass(frozen=True)
class Field:
    """One output column of a plan node."""

    name: str
    sql_type: SqlType
    qualifier: Optional[str] = None

    def matches(self, ref: ast.ColumnRef) -> bool:
        if ref.name.lower() != self.name.lower():
            return False
        if ref.table is None:
            return True
        return self.qualifier is not None and ref.table.lower() == self.qualifier.lower()

    def __str__(self) -> str:
        prefix = f"{self.qualifier}." if self.qualifier else ""
        return f"{prefix}{self.name}:{self.sql_type}"


class PlanNode:
    """Base class for logical plan nodes."""

    #: Output schema, set by the planner.
    schema: Tuple[Field, ...]
    #: Optimizer row estimate (None = unknown).
    est_rows: Optional[float]

    def __init__(self, schema: Sequence[Field]):
        self.schema = tuple(schema)
        self.est_rows = None

    @property
    def children(self) -> Tuple["PlanNode", ...]:
        return ()

    def with_children(self, children: Sequence["PlanNode"]) -> "PlanNode":
        """Return a copy of this node with the given children."""
        raise NotImplementedError

    def label(self) -> str:
        """Short human-readable operator label used by EXPLAIN."""
        return type(self).__name__

    def resolve(self, ref: ast.ColumnRef) -> int:
        """Resolve a column reference against this node's output schema."""
        matches = [i for i, f in enumerate(self.schema) if f.matches(ref)]
        if not matches:
            raise PlanError(
                f"unknown column {ref.qualified!r}; available: "
                f"{[str(f) for f in self.schema]}"
            )
        if len(matches) > 1:
            # Prefer an exact qualifier match when the name is ambiguous.
            if ref.table is not None:
                raise PlanError(f"ambiguous column {ref.qualified!r}")
            unqualified = [i for i in matches if self.schema[i].qualifier is None]
            if len(unqualified) == 1:
                return unqualified[0]
            raise PlanError(f"ambiguous column {ref.qualified!r}")
        return matches[0]


class Scan(PlanNode):
    """Read a base table from the catalog."""

    def __init__(self, table_name: str, binding: str, schema: Sequence[Field]):
        super().__init__(schema)
        self.table_name = table_name
        self.binding = binding

    def with_children(self, children):
        if children:
            raise PlanError("Scan takes no children")
        return self

    def label(self) -> str:
        return f"Scan({self.table_name} AS {self.binding})"


class CteScan(PlanNode):
    """Read a materialized common table expression."""

    def __init__(self, cte_name: str, binding: str, schema: Sequence[Field]):
        super().__init__(schema)
        self.cte_name = cte_name
        self.binding = binding

    def with_children(self, children):
        if children:
            raise PlanError("CteScan takes no children")
        return self

    def label(self) -> str:
        return f"CteScan({self.cte_name} AS {self.binding})"


@dataclass(frozen=True)
class ProjectItem:
    """One projected expression with its output name."""

    expr: ast.Expr
    name: str


class Project(PlanNode):
    """Evaluate expressions over the child's rows."""

    def __init__(
        self, child: PlanNode, items: Sequence[ProjectItem], schema: Sequence[Field]
    ):
        super().__init__(schema)
        self.child = child
        self.items = tuple(items)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Project(child, self.items, self.schema)

    def label(self) -> str:
        rendered = ", ".join(i.name for i in self.items)
        return f"Project({rendered})"


class Expand(PlanNode):
    """A table UDF in a select list: one input row -> many output rows.

    The paper's Expand variant (section 5.3, Table 2): sibling select items
    are replicated along the UDF's row lineage.
    """

    def __init__(
        self,
        child: PlanNode,
        call: ast.FunctionCall,
        arg_exprs: Sequence[ast.Expr],
        const_args: Sequence[Any],
        out_names: Sequence[str],
        passthrough: Sequence[ProjectItem],
        schema: Sequence[Field],
        layout: Optional[Sequence[Tuple[str, int]]] = None,
    ):
        super().__init__(schema)
        self.child = child
        self.call = call
        self.arg_exprs = tuple(arg_exprs)
        self.const_args = tuple(const_args)
        self.out_names = tuple(out_names)
        self.passthrough = tuple(passthrough)
        # Layout maps each schema position to its source: ("expand", i)
        # for the i-th UDF output column, ("pass", i) for the i-th
        # passthrough item.  Defaults to contiguous expand outputs at the
        # position where the call appeared.
        if layout is not None:
            self.layout = tuple(layout)
        else:
            offset = self._find_expand_offset()
            entries: List[Tuple[str, int]] = []
            pass_index = 0
            for i in range(len(self.schema)):
                if offset <= i < offset + len(self.out_names):
                    entries.append(("expand", i - offset))
                else:
                    entries.append(("pass", pass_index))
                    pass_index += 1
            self.layout = tuple(entries)

    @property
    def expand_offset(self) -> int:
        for i, (source, index) in enumerate(self.layout):
            if source == "expand" and index == 0:
                return i
        raise PlanError("Expand layout lacks expand outputs")

    def _find_expand_offset(self) -> int:
        names = [f.name for f in self.schema]
        for i in range(len(names) - len(self.out_names) + 1):
            if tuple(names[i : i + len(self.out_names)]) == self.out_names:
                return i
        raise PlanError("Expand schema does not contain its output columns")

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Expand(
            child, self.call, self.arg_exprs, self.const_args,
            self.out_names, self.passthrough, self.schema, self.layout,
        )

    def label(self) -> str:
        return f"Expand({self.call.name})"


class Filter(PlanNode):
    """Keep rows satisfying a predicate."""

    def __init__(self, child: PlanNode, predicate: ast.Expr):
        super().__init__(child.schema)
        self.child = child
        self.predicate = predicate

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Filter(child, self.predicate)

    def label(self) -> str:
        from ..sql.printer import to_sql

        return f"Filter({to_sql(self.predicate)})"


@dataclass(frozen=True)
class AggCall:
    """One aggregate invocation inside an Aggregate node."""

    func_name: str
    args: Tuple[ast.Expr, ...]
    distinct: bool
    out_name: str
    is_udf: bool = False


class Aggregate(PlanNode):
    """Group rows and evaluate aggregates per group."""

    def __init__(
        self,
        child: PlanNode,
        group_items: Sequence[ProjectItem],
        agg_calls: Sequence[AggCall],
        schema: Sequence[Field],
    ):
        super().__init__(schema)
        self.child = child
        self.group_items = tuple(group_items)
        self.agg_calls = tuple(agg_calls)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Aggregate(child, self.group_items, self.agg_calls, self.schema)

    def label(self) -> str:
        keys = ", ".join(i.name for i in self.group_items)
        aggs = ", ".join(f"{c.func_name}->{c.out_name}" for c in self.agg_calls)
        return f"Aggregate(keys=[{keys}], aggs=[{aggs}])"


class Join(PlanNode):
    """Join two inputs."""

    def __init__(
        self,
        left: PlanNode,
        right: PlanNode,
        kind: str,
        condition: Optional[ast.Expr],
        schema: Sequence[Field],
    ):
        super().__init__(schema)
        self.left = left
        self.right = right
        self.kind = kind
        self.condition = condition

    @property
    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return Join(left, right, self.kind, self.condition, self.schema)

    def label(self) -> str:
        return f"Join({self.kind})"


@dataclass(frozen=True)
class SortKey:
    expr: ast.Expr
    ascending: bool = True


class Sort(PlanNode):
    """Order rows by one or more keys (blocking)."""

    def __init__(self, child: PlanNode, keys: Sequence[SortKey]):
        super().__init__(child.schema)
        self.child = child
        self.keys = tuple(keys)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Sort(child, self.keys)

    def label(self) -> str:
        return f"Sort({len(self.keys)} keys)"


class Distinct(PlanNode):
    """Remove duplicate rows."""

    def __init__(self, child: PlanNode):
        super().__init__(child.schema)
        self.child = child

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Distinct(child)


class Limit(PlanNode):
    """Keep the first N rows (after an optional offset)."""

    def __init__(self, child: PlanNode, limit: Optional[int], offset: int = 0):
        super().__init__(child.schema)
        self.child = child
        self.limit = limit
        self.offset = offset

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Limit(child, self.limit, self.offset)

    def label(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"


class SetOperation(PlanNode):
    """UNION / UNION ALL / INTERSECT / EXCEPT."""

    def __init__(self, left: PlanNode, right: PlanNode, op: str):
        super().__init__(left.schema)
        self.left = left
        self.right = right
        self.op = op

    @property
    def children(self):
        return (self.left, self.right)

    def with_children(self, children):
        left, right = children
        return SetOperation(left, right, self.op)

    def label(self) -> str:
        return f"SetOperation({self.op})"


class TableFunctionScan(PlanNode):
    """A table UDF in the FROM clause, fed by an optional input subplan."""

    def __init__(
        self,
        udf_name: str,
        binding: str,
        input_plan: Optional[PlanNode],
        const_args: Sequence[Any],
        schema: Sequence[Field],
    ):
        super().__init__(schema)
        self.udf_name = udf_name
        self.binding = binding
        self.input_plan = input_plan
        self.const_args = tuple(const_args)

    @property
    def children(self):
        return (self.input_plan,) if self.input_plan is not None else ()

    def with_children(self, children):
        input_plan = children[0] if children else None
        return TableFunctionScan(
            self.udf_name, self.binding, input_plan, self.const_args, self.schema
        )

    def label(self) -> str:
        return f"TableFunctionScan({self.udf_name} AS {self.binding})"


class FusedFilter(PlanNode):
    """A QFusor-generated node: a fused table UDF evaluated in expand
    mode whose *lineage* filters the child's rows.

    Produced when a Filter's UDF-bearing predicate is offloaded into the
    UDF environment (paper section 5.3.2, filter case) but no projection
    consumes the fused pipeline's value outputs.
    """

    def __init__(
        self,
        child: PlanNode,
        udf_name: str,
        arg_exprs: Sequence[ast.Expr],
        const_args: Sequence[Any] = (),
    ):
        super().__init__(child.schema)
        self.child = child
        self.udf_name = udf_name
        self.arg_exprs = tuple(arg_exprs)
        self.const_args = tuple(const_args)

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return FusedFilter(child, self.udf_name, self.arg_exprs, self.const_args)

    def label(self) -> str:
        return f"FusedFilter({self.udf_name})"


class OneRow(PlanNode):
    """A single-row, zero-column input for FROM-less selects."""

    def __init__(self):
        super().__init__(())

    def with_children(self, children):
        return self

    def label(self) -> str:
        return "OneRow"


class Requalify(PlanNode):
    """Renames a subquery's output qualifiers to its FROM-clause alias."""

    def __init__(self, child: PlanNode, schema: Sequence[Field]):
        super().__init__(schema)
        self.child = child

    @property
    def children(self):
        return (self.child,)

    def with_children(self, children):
        (child,) = children
        return Requalify(child, self.schema)

    def label(self) -> str:
        qualifier = self.schema[0].qualifier if self.schema else "?"
        return f"Subquery({qualifier})"


def walk_plan(node: PlanNode) -> Iterator[PlanNode]:
    """Yield ``node`` and all descendants, pre-order."""
    yield node
    for child in node.children:
        yield from walk_plan(child)
