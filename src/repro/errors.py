"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Sub-hierarchies mirror the major subsystems: SQL frontend,
engine, UDF runtime, JIT, and the QFusor optimizer itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexError(SqlError):
    """Raised when the lexer meets an unrecognized character sequence."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the tokens."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class TypeMismatchError(ReproError):
    """Raised when a value does not match its declared SQL type."""


class CatalogError(ReproError):
    """Raised for unknown tables/columns or duplicate registrations."""


class PlanError(ReproError):
    """Raised when a logical plan cannot be built or is malformed."""


class ExecutionError(ReproError):
    """Raised when query execution fails."""


class UdfError(ReproError):
    """Base class for UDF runtime errors."""


class UdfRegistrationError(UdfError):
    """Raised when a UDF cannot be registered (bad signature, duplicate)."""


#: Sentinel distinguishing "no offending value" from "the value was None".
_UNSET = object()


class UdfExecutionError(UdfError):
    """Raised when a UDF raises during execution.

    Wrapper functions catch arbitrary exceptions from user code and re-raise
    them as this type, preserving the original as ``__cause__`` (the paper's
    try/except wrapper robustness requirement, section 5.3.2).

    ``row``/``value``/``phase`` localize the failure when the wrapper knows
    them: the batch row index, the offending input value(s), and the
    aggregate phase (``"step"``/``"final"``) respectively.
    """

    def __init__(
        self,
        udf_name: str,
        original: BaseException,
        *,
        row: "int | None" = None,
        value: object = _UNSET,
        phase: "str | None" = None,
    ):
        parts = [f"UDF {udf_name!r} failed"]
        if phase is not None:
            parts.append(f"in {phase}()")
        if row is not None:
            parts.append(f"at row {row}")
        if value is not _UNSET:
            parts.append(f"on value {value!r}")
        super().__init__(" ".join(parts) + f": {original!r}")
        self.udf_name = udf_name
        self.original = original
        self.row = row
        self.value = None if value is _UNSET else value
        self.has_value = value is not _UNSET
        self.phase = phase


class QueryInterrupt(BaseException):
    """Base class of the query-governance interrupts.

    Deliberately derives from :class:`BaseException` (the
    ``asyncio.CancelledError`` precedent): the broad ``except Exception``
    recovery paths inside generated wrappers and row-level policies must
    never swallow a cancellation or deadline — an interrupt always unwinds
    to the governance boundary, which annotates it with the adapter and
    query before re-raising.

    All subclasses are zero-argument constructible because the watchdog
    delivers them asynchronously via ``PyThreadState_SetAsyncExc`` (which
    instantiates the class itself); details are attached afterwards at the
    governance boundaries through the mutable attributes.
    """

    def __init__(self, message: str = "", *, adapter: "str | None" = None,
                 query: "str | None" = None):
        super().__init__(message)
        self.adapter = adapter
        self.query = query

    def _detail(self) -> "list[str]":
        parts = []
        if self.adapter is not None:
            parts.append(f"adapter={self.adapter!r}")
        if self.query is not None:
            query = self.query
            if len(query) > 120:
                query = query[:117] + "..."
            parts.append(f"query={query!r}")
        return parts

    def __str__(self) -> str:
        base = super().__str__() or self.__class__.__name__
        detail = self._detail()
        return f"{base} [{', '.join(detail)}]" if detail else base


class QueryCancelledError(QueryInterrupt):
    """The query's cancellation token was triggered."""

    def __init__(self, message: str = "query cancelled", *,
                 reason: "str | None" = None, adapter: "str | None" = None,
                 query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.reason = reason

    def _detail(self) -> "list[str]":
        parts = []
        if self.reason is not None:
            parts.append(f"reason={self.reason!r}")
        return parts + super()._detail()


class QueryTimeoutError(QueryInterrupt):
    """A query deadline or per-batch UDF wall-clock cap was exceeded.

    ``kind`` distinguishes the whole-query deadline (``"query"``) from
    the per-batch UDF cap (``"udf_batch"``); ``udf_name`` names the UDF
    that was running when the watchdog fired (for fused traces this is
    the fused name, with constituents in ``udf_chain``).
    """

    def __init__(self, message: str = "query timed out", *,
                 timeout_s: "float | None" = None, kind: str = "query",
                 udf_name: "str | None" = None,
                 udf_chain: "tuple[str, ...]" = (),
                 adapter: "str | None" = None, query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.timeout_s = timeout_s
        self.kind = kind
        self.udf_name = udf_name
        self.udf_chain = tuple(udf_chain)

    def _detail(self) -> "list[str]":
        parts = []
        if self.timeout_s is not None:
            parts.append(f"after {self.timeout_s:.3g}s")
        if self.kind != "query":
            parts.append(f"kind={self.kind!r}")
        if self.udf_name is not None:
            parts.append(f"udf={self.udf_name!r}")
        if self.udf_chain:
            parts.append(f"chain={list(self.udf_chain)!r}")
        return parts + super()._detail()


class QueryBudgetExceededError(QueryInterrupt):
    """The query consumed more than its row budget."""

    def __init__(self, message: str = "query row budget exceeded", *,
                 rows: "int | None" = None, budget: "int | None" = None,
                 adapter: "str | None" = None, query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.rows = rows
        self.budget = budget

    def _detail(self) -> "list[str]":
        parts = []
        if self.rows is not None and self.budget is not None:
            parts.append(f"rows={self.rows} budget={self.budget}")
        return parts + super()._detail()


class GovernanceError(ReproError):
    """Base class for synchronous admission/breaker refusals.

    Unlike :class:`QueryInterrupt` these are ordinary exceptions: they
    are raised before any query work starts, so there is no in-flight
    state a broad handler could corrupt by swallowing them.
    """


class AdmissionTimeoutError(GovernanceError):
    """The admission gate's wait queue timed out (load shedding)."""

    def __init__(self, message: str = "admission queue timed out", *,
                 waited_s: "float | None" = None,
                 max_concurrent: "int | None" = None):
        super().__init__(message)
        self.waited_s = waited_s
        self.max_concurrent = max_concurrent


class CircuitOpenError(GovernanceError):
    """A per-UDF circuit breaker is open and policy is fail-fast."""

    def __init__(self, udf_name: str = "?", *,
                 retry_in_s: "float | None" = None):
        detail = f"circuit breaker open for UDF {udf_name!r}"
        if retry_in_s is not None:
            detail += f" (retry in {retry_in_s:.3g}s)"
        super().__init__(detail)
        self.udf_name = udf_name
        self.retry_in_s = retry_in_s


class ChannelError(ReproError):
    """Base class for out-of-process channel failures."""


class ChannelTimeoutError(ChannelError):
    """Raised when a channel transfer exceeds its per-batch timeout."""


class ChannelCorruptionError(ChannelError):
    """Raised when a channel payload fails to round-trip (corrupt pickle)."""


class JitError(ReproError):
    """Raised when trace code generation or compilation fails."""


class FusionError(ReproError):
    """Raised when the fusion optimizer produces an invalid section."""


class DialectError(ReproError):
    """Raised for unsupported engine dialect operations."""
