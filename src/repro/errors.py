"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Sub-hierarchies mirror the major subsystems: SQL frontend,
engine, UDF runtime, JIT, and the QFusor optimizer itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexError(SqlError):
    """Raised when the lexer meets an unrecognized character sequence."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the tokens."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class TypeMismatchError(ReproError):
    """Raised when a value does not match its declared SQL type."""


class CatalogError(ReproError):
    """Raised for unknown tables/columns or duplicate registrations."""


class PlanError(ReproError):
    """Raised when a logical plan cannot be built or is malformed."""


class ExecutionError(ReproError):
    """Raised when query execution fails."""


class UdfError(ReproError):
    """Base class for UDF runtime errors."""


class UdfRegistrationError(UdfError):
    """Raised when a UDF cannot be registered (bad signature, duplicate)."""


#: Sentinel distinguishing "no offending value" from "the value was None".
_UNSET = object()


class UdfExecutionError(UdfError):
    """Raised when a UDF raises during execution.

    Wrapper functions catch arbitrary exceptions from user code and re-raise
    them as this type, preserving the original as ``__cause__`` (the paper's
    try/except wrapper robustness requirement, section 5.3.2).

    ``row``/``value``/``phase`` localize the failure when the wrapper knows
    them: the batch row index, the offending input value(s), and the
    aggregate phase (``"step"``/``"final"``) respectively.
    """

    def __init__(
        self,
        udf_name: str,
        original: BaseException,
        *,
        row: "int | None" = None,
        value: object = _UNSET,
        phase: "str | None" = None,
    ):
        parts = [f"UDF {udf_name!r} failed"]
        if phase is not None:
            parts.append(f"in {phase}()")
        if row is not None:
            parts.append(f"at row {row}")
        if value is not _UNSET:
            parts.append(f"on value {value!r}")
        super().__init__(" ".join(parts) + f": {original!r}")
        self.udf_name = udf_name
        self.original = original
        self.row = row
        self.value = None if value is _UNSET else value
        self.has_value = value is not _UNSET
        self.phase = phase


class ChannelError(ReproError):
    """Base class for out-of-process channel failures."""


class ChannelTimeoutError(ChannelError):
    """Raised when a channel transfer exceeds its per-batch timeout."""


class ChannelCorruptionError(ChannelError):
    """Raised when a channel payload fails to round-trip (corrupt pickle)."""


class JitError(ReproError):
    """Raised when trace code generation or compilation fails."""


class FusionError(ReproError):
    """Raised when the fusion optimizer produces an invalid section."""


class DialectError(ReproError):
    """Raised for unsupported engine dialect operations."""
