"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Sub-hierarchies mirror the major subsystems: SQL frontend,
engine, UDF runtime, JIT, and the QFusor optimizer itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SqlError(ReproError):
    """Base class for SQL frontend errors."""


class LexError(SqlError):
    """Raised when the lexer meets an unrecognized character sequence."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised when the parser cannot derive a statement from the tokens."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class TypeMismatchError(ReproError):
    """Raised when a value does not match its declared SQL type."""


class CatalogError(ReproError):
    """Raised for unknown tables/columns or duplicate registrations."""


class CsvFormatError(ReproError):
    """A malformed cell or row in a CSV file being loaded.

    Carries the file, the 1-based physical line number, the column name,
    and the offending text, so a bad cell in a million-row ingest is
    locatable without re-parsing the file by hand.
    """

    def __init__(self, message: str, *, path: "str | None" = None,
                 line: "int | None" = None, column: "str | None" = None,
                 text: "str | None" = None):
        detail = [message]
        if path is not None:
            detail.append(f"in {path!r}")
        if line is not None:
            detail.append(f"at line {line}")
        if column is not None:
            detail.append(f"column {column!r}")
        if text is not None:
            detail.append(f"value {text!r}")
        super().__init__(" ".join(detail))
        self.path = path
        self.line = line
        self.column = column
        self.text = text


class DurabilityError(ReproError):
    """Base class for WAL / checkpoint / recovery failures."""


class WalCorruptionError(DurabilityError):
    """A WAL frame failed validation somewhere other than the tail.

    Torn *tails* are expected after a crash and are truncated silently;
    a bad frame followed by good frames, or a bad file header, means the
    log itself is damaged and recovery must not guess.
    """

    def __init__(self, message: str, *, path: "str | None" = None,
                 offset: "int | None" = None):
        detail = [message]
        if path is not None:
            detail.append(f"in {path!r}")
        if offset is not None:
            detail.append(f"at offset {offset}")
        super().__init__(" ".join(detail))
        self.path = path
        self.offset = offset


class CheckpointError(DurabilityError):
    """A checkpoint file failed validation (magic or checksum).

    Checkpoints are installed with an atomic temp-file + ``os.replace``
    protocol, so a corrupt checkpoint indicates external damage, not a
    crash window — recovery refuses rather than silently starting empty.
    """


class RecoveryError(DurabilityError):
    """Recovery could not restore a consistent database state."""


class WalPoisonedError(DurabilityError):
    """The WAL is fail-stopped after an I/O error tore the log.

    An ``OSError`` escaping mid-append (ENOSPC, EIO, a yanked disk)
    leaves a torn frame at the log tail; any *later* append that
    succeeded would be truncated by the next recovery's torn-tail scan —
    an acknowledged write that silently never happened.  The first I/O
    failure therefore poisons the log: every subsequent append or
    checkpoint fails fast with this error until the process restarts and
    recovery re-seals the file.
    """

    def __init__(self, message: str = "write-ahead log is poisoned", *,
                 path: "str | None" = None,
                 cause: "BaseException | None" = None):
        detail = [message]
        if path is not None:
            detail.append(f"in {path!r}")
        if cause is not None:
            detail.append(f"after {type(cause).__name__}: {cause}")
        super().__init__(" ".join(detail))
        self.path = path
        self.cause = cause


class ReplicationError(DurabilityError):
    """Base class for hot-standby replication failures."""


class ReplicationProtocolError(ReplicationError):
    """A replication peer violated the wire protocol (bad magic, CRC
    mismatch on a shipped frame, LSN gap, undecodable handshake)."""


class NodeFencedError(ReplicationError):
    """This node presented a stale fencing term and has been fenced.

    Raised by the replication handshake when a peer holds a strictly
    higher promotion term, and by every subsequent local write on the
    fenced node — a revived old primary can neither ship frames nor
    acknowledge new writes, which is what makes split-brain structurally
    impossible rather than merely unlikely.
    """

    def __init__(self, message: str = "node is fenced", *,
                 local_term: "int | None" = None,
                 remote_term: "int | None" = None):
        detail = [message]
        if local_term is not None:
            detail.append(f"local term {local_term}")
        if remote_term is not None:
            detail.append(f"fenced by term {remote_term}")
        super().__init__(" ".join(detail))
        self.local_term = local_term
        self.remote_term = remote_term


class SimulatedCrash(BaseException):
    """An injected process death for the in-process crash harness.

    Derives from :class:`BaseException` so no recovery handler on the
    write path can absorb it — exactly like a real ``SIGKILL``, the
    "process" ends mid-operation and only the bytes already handed to
    the OS survive.  Raised by durability fault points
    (:meth:`repro.testing.faults.FaultInjector.durability_crash`).
    """


class PlanError(ReproError):
    """Raised when a logical plan cannot be built or is malformed."""


class ExecutionError(ReproError):
    """Raised when query execution fails."""


class UdfError(ReproError):
    """Base class for UDF runtime errors."""


class UdfRegistrationError(UdfError):
    """Raised when a UDF cannot be registered (bad signature, duplicate)."""


#: Sentinel distinguishing "no offending value" from "the value was None".
_UNSET = object()


class UdfExecutionError(UdfError):
    """Raised when a UDF raises during execution.

    Wrapper functions catch arbitrary exceptions from user code and re-raise
    them as this type, preserving the original as ``__cause__`` (the paper's
    try/except wrapper robustness requirement, section 5.3.2).

    ``row``/``value``/``phase`` localize the failure when the wrapper knows
    them: the batch row index, the offending input value(s), and the
    aggregate phase (``"step"``/``"final"``) respectively.
    """

    def __init__(
        self,
        udf_name: str,
        original: BaseException,
        *,
        row: "int | None" = None,
        value: object = _UNSET,
        phase: "str | None" = None,
    ):
        parts = [f"UDF {udf_name!r} failed"]
        if phase is not None:
            parts.append(f"in {phase}()")
        if row is not None:
            parts.append(f"at row {row}")
        if value is not _UNSET:
            parts.append(f"on value {value!r}")
        super().__init__(" ".join(parts) + f": {original!r}")
        self.udf_name = udf_name
        self.original = original
        self.row = row
        self.value = None if value is _UNSET else value
        self.has_value = value is not _UNSET
        self.phase = phase


#: The concrete exception set one UDF invocation is expected to produce:
#: user-code failures that the row-level policies (reinterpret / null /
#: skip / raise) may absorb.  Deliberately excludes the library's own
#: infrastructure failures (:class:`ChannelError`, :class:`WorkerError`,
#: :class:`GovernanceError`) and the ``BaseException``-derived
#: :class:`QueryInterrupt` family — those must unwind to their own
#: boundaries, never be swallowed as a bad row.  :class:`UdfExecutionError`
#: is included because nested invocation paths re-raise already-wrapped
#: failures through the same handlers (which pass them through unchanged).
UDF_INVOCATION_ERRORS = (
    TypeError,
    ValueError,
    ArithmeticError,
    LookupError,
    AttributeError,
    RuntimeError,
    UnicodeError,
    OSError,
    StopIteration,
    UdfExecutionError,
)


class QueryInterrupt(BaseException):
    """Base class of the query-governance interrupts.

    Deliberately derives from :class:`BaseException` (the
    ``asyncio.CancelledError`` precedent): the broad ``except Exception``
    recovery paths inside generated wrappers and row-level policies must
    never swallow a cancellation or deadline — an interrupt always unwinds
    to the governance boundary, which annotates it with the adapter and
    query before re-raising.

    All subclasses are zero-argument constructible because the watchdog
    delivers them asynchronously via ``PyThreadState_SetAsyncExc`` (which
    instantiates the class itself); details are attached afterwards at the
    governance boundaries through the mutable attributes.
    """

    def __init__(self, message: str = "", *, adapter: "str | None" = None,
                 query: "str | None" = None):
        super().__init__(message)
        self.adapter = adapter
        self.query = query

    def _detail(self) -> "list[str]":
        parts = []
        if self.adapter is not None:
            parts.append(f"adapter={self.adapter!r}")
        if self.query is not None:
            query = self.query
            if len(query) > 120:
                query = query[:117] + "..."
            parts.append(f"query={query!r}")
        return parts

    def __str__(self) -> str:
        base = super().__str__() or self.__class__.__name__
        detail = self._detail()
        return f"{base} [{', '.join(detail)}]" if detail else base


class QueryCancelledError(QueryInterrupt):
    """The query's cancellation token was triggered."""

    def __init__(self, message: str = "query cancelled", *,
                 reason: "str | None" = None, adapter: "str | None" = None,
                 query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.reason = reason

    def _detail(self) -> "list[str]":
        parts = []
        if self.reason is not None:
            parts.append(f"reason={self.reason!r}")
        return parts + super()._detail()


class QueryTimeoutError(QueryInterrupt):
    """A query deadline or per-batch UDF wall-clock cap was exceeded.

    ``kind`` distinguishes the whole-query deadline (``"query"``) from
    the per-batch UDF cap (``"udf_batch"``); ``udf_name`` names the UDF
    that was running when the watchdog fired (for fused traces this is
    the fused name, with constituents in ``udf_chain``).
    """

    def __init__(self, message: str = "query timed out", *,
                 timeout_s: "float | None" = None, kind: str = "query",
                 udf_name: "str | None" = None,
                 udf_chain: "tuple[str, ...]" = (),
                 adapter: "str | None" = None, query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.timeout_s = timeout_s
        self.kind = kind
        self.udf_name = udf_name
        self.udf_chain = tuple(udf_chain)

    def _detail(self) -> "list[str]":
        parts = []
        if self.timeout_s is not None:
            parts.append(f"after {self.timeout_s:.3g}s")
        if self.kind != "query":
            parts.append(f"kind={self.kind!r}")
        if self.udf_name is not None:
            parts.append(f"udf={self.udf_name!r}")
        if self.udf_chain:
            parts.append(f"chain={list(self.udf_chain)!r}")
        return parts + super()._detail()


class QueryBudgetExceededError(QueryInterrupt):
    """The query consumed more than its row budget."""

    def __init__(self, message: str = "query row budget exceeded", *,
                 rows: "int | None" = None, budget: "int | None" = None,
                 adapter: "str | None" = None, query: "str | None" = None):
        super().__init__(message, adapter=adapter, query=query)
        self.rows = rows
        self.budget = budget

    def _detail(self) -> "list[str]":
        parts = []
        if self.rows is not None and self.budget is not None:
            parts.append(f"rows={self.rows} budget={self.budget}")
        return parts + super()._detail()


class GovernanceError(ReproError):
    """Base class for synchronous admission/breaker refusals.

    Unlike :class:`QueryInterrupt` these are ordinary exceptions: they
    are raised before any query work starts, so there is no in-flight
    state a broad handler could corrupt by swallowing them.
    """


class AdmissionTimeoutError(GovernanceError):
    """The admission gate's wait queue timed out (load shedding).

    Carries the observed queue state at shed time so operators can tell
    a momentary blip (short wait, shallow queue) from sustained overload
    (long wait, deep queue) straight from the error text.
    """

    def __init__(self, message: str = "admission queue timed out", *,
                 waited_s: "float | None" = None,
                 max_concurrent: "int | None" = None,
                 queue_depth: "int | None" = None):
        detail = [message]
        if waited_s is not None:
            detail.append(f"after waiting {waited_s:.3g}s")
        if queue_depth is not None:
            detail.append(f"with {queue_depth} queued behind")
        if max_concurrent is not None:
            detail.append(f"(max_concurrent={max_concurrent})")
        super().__init__(" ".join(detail))
        self.waited_s = waited_s
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth


class ServiceError(ReproError):
    """Base class for multi-tenant query-service errors."""


class UnknownTenantError(ServiceError):
    """A query referenced a tenant the service has no session for."""

    def __init__(self, tenant: str):
        super().__init__(f"unknown tenant {tenant!r}")
        self.tenant = tenant


class ServiceOverloadError(GovernanceError):
    """The service shed a query to protect itself (typed, never silent).

    ``reason`` localizes the watermark that tripped: ``"queue_full"``
    (global queue-depth watermark), ``"tenant_queue_full"`` (per-tenant
    pending cap), ``"latency"`` (p95 service latency above watermark),
    or ``"queue_timeout"`` (queued but not dispatched in time).
    ``retry_after_s`` is the service's backoff hint — clients honoring
    it (see :class:`repro.service.retry.RetryPolicy`) spread the retry
    storm instead of hammering an overloaded gate.
    """

    def __init__(self, message: str = "service overloaded", *,
                 tenant: "str | None" = None, reason: str = "overload",
                 queue_depth: "int | None" = None,
                 waited_s: "float | None" = None,
                 retry_after_s: "float | None" = None):
        detail = [message, f"reason={reason!r}"]
        if tenant is not None:
            detail.append(f"tenant={tenant!r}")
        if queue_depth is not None:
            detail.append(f"queue_depth={queue_depth}")
        if waited_s is not None:
            detail.append(f"after waiting {waited_s:.3g}s")
        if retry_after_s is not None:
            detail.append(f"retry after {retry_after_s:.3g}s")
        super().__init__(" ".join(detail))
        self.tenant = tenant
        self.reason = reason
        self.queue_depth = queue_depth
        self.waited_s = waited_s
        self.retry_after_s = retry_after_s


class TenantRecoveryError(ServiceError):
    """One tenant's directory failed to recover during a warm restart.

    Carries the tenant id and the underlying durability failure so a
    fleet restart can surface exactly which tenant is damaged while the
    remaining tenants recover and serve — one corrupt directory must
    never take down the whole service.
    """

    def __init__(self, tenant: str, cause: BaseException):
        super().__init__(
            f"tenant {tenant!r} failed to recover: "
            f"{type(cause).__name__}: {cause}"
        )
        self.tenant = tenant
        self.cause = cause


class RetryBudgetExhaustedError(ServiceError):
    """A client retry policy ran out of attempts or wall-clock budget.

    Wraps the final refusal as ``__cause__``/``last_error`` so callers
    still see the service's diagnostics (reason, queue depth, hints).
    """

    def __init__(self, message: str = "retry budget exhausted", *,
                 attempts: "int | None" = None,
                 elapsed_s: "float | None" = None,
                 last_error: "BaseException | None" = None):
        detail = [message]
        if attempts is not None:
            detail.append(f"after {attempts} attempts")
        if elapsed_s is not None:
            detail.append(f"over {elapsed_s:.3g}s")
        if last_error is not None:
            detail.append(f"last: {last_error}")
        super().__init__(" ".join(detail))
        self.attempts = attempts
        self.elapsed_s = elapsed_s
        self.last_error = last_error


class CircuitOpenError(GovernanceError):
    """A per-UDF circuit breaker is open and policy is fail-fast."""

    def __init__(self, udf_name: str = "?", *,
                 retry_in_s: "float | None" = None):
        detail = f"circuit breaker open for UDF {udf_name!r}"
        if retry_in_s is not None:
            detail += f" (retry in {retry_in_s:.3g}s)"
        super().__init__(detail)
        self.udf_name = udf_name
        self.retry_in_s = retry_in_s


class ChannelError(ReproError):
    """Base class for out-of-process channel failures."""


class WorkerError(ReproError):
    """Base class for UDF worker-pool failures (process isolation)."""


class WorkerCrashError(WorkerError):
    """A worker process died while (or before) executing a UDF batch.

    ``kind`` localizes the death: ``"crash"`` (the process exited — a
    signal, ``os._exit``, or an interpreter abort), ``"hang"`` (the batch
    exceeded its governance-derived deadline slack and the supervisor
    killed the worker), or ``"oom"`` (the worker's ``RLIMIT_AS`` memory
    cap was hit).  ``exitcode`` is the process exit status when known
    (negative values are ``-signum``, POSIX convention).
    """

    def __init__(self, message: str = "UDF worker crashed", *,
                 udf_name: "str | None" = None, kind: str = "crash",
                 exitcode: "int | None" = None, pid: "int | None" = None,
                 attempt: int = 0):
        detail = [message]
        if udf_name is not None:
            detail.append(f"udf={udf_name!r}")
        if kind != "crash":
            detail.append(f"kind={kind!r}")
        if exitcode is not None:
            detail.append(f"exitcode={exitcode}")
        if pid is not None:
            detail.append(f"pid={pid}")
        super().__init__(" ".join(detail))
        self.udf_name = udf_name
        self.kind = kind
        self.exitcode = exitcode
        self.pid = pid
        self.attempt = attempt


class WorkerRestartBudgetError(WorkerError):
    """The pool's max-restart budget is exhausted; supervision gave up."""

    def __init__(self, message: str = "worker restart budget exhausted", *,
                 restarts: "int | None" = None,
                 budget: "int | None" = None):
        if restarts is not None and budget is not None:
            message += f" ({restarts}/{budget} restarts)"
        super().__init__(message)
        self.restarts = restarts
        self.budget = budget


class BatchQuarantinedError(WorkerError):
    """A batch crashed its worker repeatedly and policy is fail-fast.

    Raised when the same batch (same UDF, same inputs) has killed
    ``max_batch_retries`` workers and the pool's quarantine policy is
    ``"fail"``; with the default ``"degrade"`` policy the batch runs
    in-process instead and no error surfaces.
    """

    def __init__(self, message: str = "batch quarantined", *,
                 udf_name: "str | None" = None, crashes: "int | None" = None,
                 fingerprint: "str | None" = None):
        detail = [message]
        if udf_name is not None:
            detail.append(f"udf={udf_name!r}")
        if crashes is not None:
            detail.append(f"after {crashes} worker crashes")
        super().__init__(" ".join(detail))
        self.udf_name = udf_name
        self.crashes = crashes
        self.fingerprint = fingerprint


class ChannelTimeoutError(ChannelError):
    """Raised when a channel transfer exceeds its per-batch timeout."""


class ChannelCorruptionError(ChannelError):
    """Raised when a channel payload fails to round-trip (corrupt pickle)."""


class JitError(ReproError):
    """Raised when trace code generation or compilation fails."""


class FusionError(ReproError):
    """Raised when the fusion optimizer produces an invalid section."""


class DialectError(ReproError):
    """Raised for unsupported engine dialect operations."""
