"""Figure 6a: physio-logical optimization — five techniques, three
engines, on the running example (Q3).

Techniques (cumulative, as in the paper):
  (a) default Python UDF execution (no fusion, no JIT);
  (b) JIT only;
  (c) + fusion of scalar and table UDFs;
  (d) + offloading of scalar relational operators (case, filters);
  (e) + offloading of aggregations (sum + engine-internal group-by).

Engines: the vectorized column store (MonetDB model), the in-process
tuple engine (SQLite model), and the out-of-process row store
(PostgreSQL model) — whose optimizer does not push filters below
UDF-bearing projections, the paper's "3x more UDF invocations" effect.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter, RowStoreAdapter, TupleDbAdapter
from repro.workloads import udfbench

TECHNIQUES = [
    ("a-default", QFusorConfig.disabled()),
    ("b-jit", QFusorConfig.jit_only()),
    ("c-fusion", QFusorConfig.fusion_no_offload()),
    ("d-offload-rel", QFusorConfig.no_aggregation_offload()),
    ("e-offload-agg", QFusorConfig()),
]

ENGINES = {
    "minidb": MiniDbAdapter,
    "tupledb": TupleDbAdapter,
    "rowstore": RowStoreAdapter,
}


def run_figure(scale: str) -> FigureReport:
    report = FigureReport(
        "fig6a", "physio-logical optimization ladder on Q3"
    )
    sql = udfbench.QUERIES["Q3"]
    for engine_name, factory in ENGINES.items():
        for technique, config in TECHNIQUES:
            adapter = factory()
            udfbench.setup(adapter, scale)
            qfusor = QFusor(adapter, config)
            qfusor.execute(sql)  # warm: compile + caches
            elapsed, _ = time_call(lambda: qfusor.execute(sql), repeats=3)
            report.add(engine_name, technique, elapsed)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig6a")
def test_fig6a_physiological(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    for engine_name in ENGINES:
        baseline = report.value(engine_name, "a-default")
        full = report.value(engine_name, "e-offload-agg")
        # The full ladder wins on the vectorized and out-of-process
        # engines; on the in-process tuple engine (which invokes UDFs per
        # row either way) the reproduction target is no regression.
        if engine_name == "tupledb":
            assert full < baseline * 1.15
        else:
            assert full < baseline
    # The vectorized engine accelerates most aggressively (the paper's
    # MonetDB observation); the out-of-process row store also gains from
    # fewer IPC round trips.
    minidb_gain = report.value("minidb", "a-default") / report.value(
        "minidb", "e-offload-agg"
    )
    rowstore_gain = report.value("rowstore", "a-default") / report.value(
        "rowstore", "e-offload-agg"
    )
    assert minidb_gain > 1.5
    assert rowstore_gain > 1.1
