"""Multi-tier cache benchmark: hot-query speedup and disabled overhead.

Two enforced bounds:

1. **Hot-query speedup** — with every tier enabled, the second
   execution of each UDFBench query is served from the result cache and
   must run at least ``SPEEDUP_FLOOR`` (2x) faster than the uncached
   engine's steady-state time for the same query.

2. **Disabled-path overhead** — with every tier disabled (the default
   config), the caching subsystem's entire cost is a handful of
   ``caches.active`` / ``registry.memo`` guard evaluations.  As in
   ``bench_obs_overhead``, the bound is structural: a conservative
   overcount of guard sites times the measured per-guard cost must stay
   under ``OVERHEAD_BUDGET`` (<3%) of each query's wall time.
"""

import timeit

import pytest

from repro.bench import FigureReport
from repro.bench.harness import setup_adapter, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter
from repro.workloads import udfbench

SPEEDUP_FLOOR = 2.0     # hot (result-cache hit) vs uncached steady state
OVERHEAD_BUDGET = 0.03  # the <3% disabled-path acceptance bound

#: Conservative overcount of cache-guard branches one query reaches with
#: every tier disabled: one ``caches.active`` in ``_execute_pipeline``,
#: one in ``_execute_select``, plus a ``registry.memo is None`` check
#: per UDF batch (UDFBench queries run a handful of batches at most).
GUARDS_PER_QUERY = 16

QUERY_IDS = sorted(udfbench.QUERIES)


def measure_guard_cost() -> float:
    """Seconds per disabled-path guard (``caches.active`` on a manager
    with every tier off)."""
    loops = 200_000
    total = min(
        timeit.repeat(
            "caches.active",
            setup=(
                "from repro.cache import CacheManager\n"
                "from repro.core.config import QFusorConfig\n"
                "from repro.engines import MiniDbAdapter\n"
                "caches = CacheManager(MiniDbAdapter(), QFusorConfig())"
            ),
            repeat=5, number=loops,
        )
    )
    return total / loops


def run_report(scale: str, repeats: int = 3) -> FigureReport:
    report = FigureReport(
        "cache",
        "Multi-tier cache: hot-query speedup and disabled-path overhead",
        unit="x",
    )
    # Separate adapters: the cached manager attaches a memo to its
    # adapter's registry, which must not leak into the baseline.
    plain = QFusor(setup_adapter(MiniDbAdapter(), scale))
    cached = QFusor(
        setup_adapter(MiniDbAdapter(), scale), QFusorConfig.cached()
    )
    guard_cost = measure_guard_cost()
    report.add("guard-ns", "cost", guard_cost * 1e9)
    for query_id in QUERY_IDS:
        sql = udfbench.QUERIES[query_id]
        plain.execute(sql)  # steady state: traces compiled
        base_wall, _ = time_call(lambda: plain.execute(sql), repeats=repeats)
        cold_wall, _ = time_call(lambda: cached.execute(sql), repeats=1)
        hot_wall, _ = time_call(lambda: cached.execute(sql), repeats=repeats)
        outcome = cached.last_report.cache_outcome("result")
        speedup = base_wall / hot_wall if hot_wall else float("inf")
        overhead = (
            GUARDS_PER_QUERY * guard_cost / base_wall if base_wall else 0.0
        )
        report.add("base-ms", query_id, base_wall * 1000)
        report.add("cold-ms", query_id, cold_wall * 1000)
        report.add("hot-ms", query_id, hot_wall * 1000)
        report.add("hot-hit", query_id, 1.0 if outcome == "hit" else 0.0)
        report.add("speedup", query_id, speedup)
        report.add("disabled-overhead-pct", query_id, overhead * 100)
    report.emit()
    return report


@pytest.mark.benchmark(group="cache")
def test_cache_hot_query_speedup_and_disabled_overhead(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_report(bench_scale), rounds=1, iterations=1
    )
    for query_id in QUERY_IDS:
        assert report.value("hot-hit", query_id) == 1.0, (
            f"{query_id}: warm run was not served from the result cache"
        )
        speedup = report.value("speedup", query_id)
        assert speedup is not None and speedup >= SPEEDUP_FLOOR, (
            f"{query_id}: hot-query speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_FLOOR:.0f}x floor"
        )
        pct = report.value("disabled-overhead-pct", query_id)
        assert pct is not None and pct < OVERHEAD_BUDGET * 100, (
            f"{query_id}: structural disabled-path overhead {pct:.3f}% "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
        )


if __name__ == "__main__":
    import os

    run_report(os.environ.get("REPRO_BENCH_SCALE", "small"))
