"""Ablation bench: the design choices DESIGN.md calls out, isolated.

Not a paper figure — a per-choice breakdown of where QFusor's speedup
comes from on the two headline queries (Q3, the running example; Q11,
the Zillow pipeline):

  * **inlining** — simple UDF bodies textually inlined vs called;
  * **trace cache** — compiled pipelines reused across repeat queries;
  * **reordering (F3)** — permutation search on fusible sections;
  * **cost-based decisions** — the F2 inequality vs heuristics only.

Each row reports hot runtime with the choice ON vs OFF.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter
from repro.workloads import udfbench, zillow

ABLATIONS = {
    "inline": {"inline": False},
    "trace-cache": {"trace_cache": False},
    "reorder-F3": {"reorder": False},
    "cost-based": {"cost_based": False},
}

QUERIES = {"Q3": ("udfbench", None), "Q11": ("zillow", None)}


def make_qfusor(config):
    adapter = MiniDbAdapter()
    udfbench.setup(adapter, "small")
    zillow.setup(adapter, "small")
    return QFusor(adapter, config)


def run_figure() -> FigureReport:
    report = FigureReport("ablation", "design-choice ablations (hot)")
    sqls = {"Q3": udfbench.QUERIES["Q3"], "Q11": zillow.QUERIES["Q11"]}

    full = make_qfusor(QFusorConfig())
    for query, sql in sqls.items():
        full.execute(sql)
        elapsed, _ = time_call(lambda: full.execute(sql), repeats=3)
        report.add("full", query, elapsed)

    for name, changes in ABLATIONS.items():
        ablated = make_qfusor(QFusorConfig().ablated(**changes))
        for query, sql in sqls.items():
            ablated.execute(sql)
            elapsed, _ = time_call(lambda: ablated.execute(sql), repeats=3)
            report.add(f"no-{name}", query, elapsed)
    report.emit()
    return report


@pytest.mark.benchmark(group="ablation")
def test_ablations(benchmark):
    report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # No single ablation may regress dramatically (each is an
    # optimization, not a correctness requirement) and the full
    # configuration is never the slowest by a wide margin.
    for query in ("Q3", "Q11"):
        full = report.value("full", query)
        for name in ABLATIONS:
            assert report.value(f"no-{name}", query) > full * 0.5
