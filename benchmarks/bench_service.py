"""Multi-tenant service benchmark: sustained QPS and overload behaviour.

Two phases over the same three-tenant mix (a ``high``-lane vip, a
``normal`` tenant, and a ``low``-lane batch tenant):

1. **Steady state** — offered load below service capacity.  Measures
   sustained QPS and the p50/p95/p99 end-to-end latency per tenant;
   nothing should shed.

2. **Overload ramp** — closed-loop clients far beyond capacity with a
   short queue budget.  The service must shed (typed, with retry-after
   hints), and — the acceptance gate — the p95 latency of the queries
   it *does* serve must stay bounded: shedding converts overload into
   explicit refusals instead of unbounded queueing for everyone.

Enforced bounds:

- steady phase: shed fraction < ``STEADY_SHED_CEILING`` (5%);
- overload phase: at least one query shed, every outcome typed;
- overload phase: served p95 < ``OVERLOAD_P95_BOUND_S``.
"""

import threading
import time

import pytest

from repro.bench import FigureReport
from repro.service import QueryService, TenantQuota, TERMINAL_STATUSES
from repro.storage import Table
from repro.types import SqlType
from repro.udf import scalar_udf

STEADY_SHED_CEILING = 0.05   # steady state must serve ~everything
OVERLOAD_P95_BOUND_S = 1.0   # served latency stays bounded while shedding

#: Per-row UDF service time; with ROWS rows this puts each query at a
#: few milliseconds, so both phases finish in a couple of seconds.
WORK_S = 0.002
ROWS = 4

SQL = "SELECT b_work(a) AS v FROM numbers"

TENANTS = {
    "vip": TenantQuota(weight=2.0, lane="high"),
    "acme": TenantQuota(weight=1.0),
    "batch": TenantQuota(weight=0.5, lane="low"),
}


@scalar_udf
def b_work(x: int) -> int:
    time.sleep(WORK_S)
    return x + 1


def _numbers() -> Table:
    return Table.from_rows(
        "numbers",
        [("a", SqlType.INT), ("b", SqlType.INT)],
        [(i, i * 10) for i in range(ROWS)],
    )


def _percentile(samples, q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _make_service(**knobs) -> QueryService:
    service = QueryService(**knobs)
    for tenant_id, quota in TENANTS.items():
        session = service.add_tenant(tenant_id, quota)
        session.register_table(_numbers(), replace=True)
        session.register_udf(b_work, replace=True)
    return service


def _drive(service, clients_per_tenant: int, duration_s: float):
    """Closed-loop clients per tenant; returns the outcome list."""
    outcomes = []
    lock = threading.Lock()
    deadline = time.monotonic() + duration_s

    def client(tenant_id):
        while time.monotonic() < deadline:
            started = time.perf_counter()
            outcome = service.execute(tenant_id, SQL)
            latency = time.perf_counter() - started
            with lock:
                outcomes.append((tenant_id, outcome, latency))
            if outcome.shed:
                # Well-behaved clients honor the retry-after hint
                # (capped so the phase still exercises sustained shed).
                time.sleep(min(outcome.retry_after_s or 0.01, 0.05))

    threads = [
        threading.Thread(target=client, args=(tenant_id,))
        for tenant_id in TENANTS
        for _ in range(clients_per_tenant)
    ]
    started = time.monotonic()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes, time.monotonic() - started


def _phase_stats(outcomes, elapsed_s):
    served = [lat for _, o, lat in outcomes if o.ok]
    shed = [o for _, o, _ in outcomes if o.shed]
    return {
        "total": len(outcomes),
        "qps": len(served) / elapsed_s if elapsed_s else 0.0,
        "shed_pct": 100.0 * len(shed) / len(outcomes) if outcomes else 0.0,
        "p50_ms": _percentile(served, 0.50) * 1000,
        "p95_ms": _percentile(served, 0.95) * 1000,
        "p99_ms": _percentile(served, 0.99) * 1000,
        "served_p95_s": _percentile(served, 0.95),
        "shed": shed,
        "outcomes": outcomes,
    }


def run_report(duration_s: float = 1.5) -> FigureReport:
    report = FigureReport(
        "service",
        "Multi-tenant service: steady QPS and overload shedding",
        unit="mixed",
    )
    phases = {}
    # Steady: 3 closed-loop clients against capacity 4 — under-offered.
    with _make_service(capacity=4, queue_timeout_s=2.0) as service:
        outcomes, elapsed = _drive(service, 1, duration_s)
        phases["steady"] = _phase_stats(outcomes, elapsed)
    # Overload: 12 clients against capacity 2 with a 100 ms queue
    # budget and a shallow queue — the service must shed to keep the
    # served tail bounded.
    with _make_service(
        capacity=2, queue_timeout_s=0.1, max_queue_depth=8
    ) as service:
        outcomes, elapsed = _drive(service, 4, duration_s)
        phases["overload"] = _phase_stats(outcomes, elapsed)
        gate = service.stats()["gate"]
        report.add("gate-rejected", "overload", gate["rejected"])
        report.add(
            "gate-wait-mean-ms", "overload",
            gate["queue_wait_mean_s"] * 1000,
        )
    for name, stats in phases.items():
        report.add("queries", name, stats["total"])
        report.add("served-qps", name, stats["qps"])
        report.add("shed-pct", name, stats["shed_pct"])
        report.add("p50-ms", name, stats["p50_ms"])
        report.add("p95-ms", name, stats["p95_ms"])
        report.add("p99-ms", name, stats["p99_ms"])
        for tenant_id in TENANTS:
            served = sum(
                1 for t, o, _ in stats["outcomes"] if t == tenant_id and o.ok
            )
            report.add(f"served-{tenant_id}", name, served)
    report.emit()
    report.phases = phases  # stash for the assertions below
    return report


@pytest.mark.benchmark(group="service")
def test_service_overload_keeps_served_p95_bounded(benchmark):
    report = benchmark.pedantic(run_report, rounds=1, iterations=1)
    steady = report.phases["steady"]
    overload = report.phases["overload"]
    assert steady["shed_pct"] < STEADY_SHED_CEILING * 100, (
        f"steady phase shed {steady['shed_pct']:.1f}% — the service is "
        "refusing load it has capacity for"
    )
    assert overload["shed"], (
        "overload phase shed nothing — watermarks/queue budget inactive"
    )
    for outcome in overload["shed"]:
        assert outcome.retry_after_s is not None and outcome.retry_after_s > 0
    for _, outcome, _ in overload["outcomes"]:
        assert outcome.status in TERMINAL_STATUSES
    assert overload["served_p95_s"] < OVERLOAD_P95_BOUND_S, (
        f"served p95 {overload['served_p95_s']:.3f}s under overload "
        f"exceeds the {OVERLOAD_P95_BOUND_S}s bound — shedding is not "
        "protecting admitted queries"
    )


if __name__ == "__main__":
    run_report()
