"""Figure 4 (top): QFusor vs SOTA systems on udfbench Q1/Q2/Q3.

Reproduces the cross-system comparison: QFusor and the YeSQL profile on
the vectorized engine, the native engine profiles (MonetDB-, SQLite-,
PostgreSQL-, DuckDB-, dbX-like), and the pipeline baselines (Tuplex,
UDO, Weld, Pandas, PySpark).  Unsupported (system, query) pairs render
as "n/a", matching the paper's compatibility matrix.
"""

import pytest

from repro.bench import FigureReport, build_engine_systems, build_pipeline_systems, time_call

QUERIES = ["Q1", "Q2", "Q3"]


def run_figure(scale: str) -> FigureReport:
    report = FigureReport("fig4_top", "udfbench Q1-Q3 across systems")
    systems = {}
    systems.update(build_engine_systems(scale))
    systems.update(build_pipeline_systems(scale))
    for query in QUERIES:
        for name, system in systems.items():
            if not system.supports(query):
                report.add(name, query, None)
                continue
            system.run(query)  # warm (compile traces, prime caches)
            elapsed, _ = time_call(lambda: system.run(query), repeats=2)
            report.add(name, query, elapsed)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig4-top")
def test_fig4_udfbench(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # Shape assertions from the paper's discussion:
    # Q2/Q3 have fusion opportunities -> QFusor beats the native engine
    # (at tiny scales per-query optimization overhead can eat the Q2 win,
    # hence the small tolerance).
    assert report.speedup("minidb", "qfusor", "Q2") > 0.9
    assert report.speedup("minidb", "qfusor", "Q3") > 1.0
    # Q3 is where relational offload pays: QFusor >= YeSQL.
    assert report.speedup("yesql", "qfusor", "Q3") >= 0.9
    # Tuple-at-a-time engines trail the fused system on UDF-heavy Q3.
    assert report.speedup("tupledb", "qfusor", "Q3") > 1.5
