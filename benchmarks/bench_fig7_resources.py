"""Figure 7: resource utilization (CPU %, memory, runtime) of QFusor,
Tuplex, UDO, and PySpark on the Zillow pipeline.

A sampler thread reads /proc/self while each system runs.  The paper's
shape: QFusor finishes fastest with modest CPU (GIL-bound) and moderate
memory; UDO's operator-at-a-time materialization is the memory hog;
PySpark is the slowest with sustained serialization work.
"""

import gc

import pytest

from repro.baselines import PySparkLike, TuplexLike, UdoLike, programs
from repro.bench import FigureReport, ResourceSampler
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.workloads import zillow


def run_figure(scale: str) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig7", "resource utilization on Q11")
    rows = max(scale_rows(scale), 8_000)
    listings = zillow.build_listings(rows)
    tables = {"listings": listings}

    adapter = MiniDbAdapter()
    adapter.register_table(listings)
    for udf in zillow.ALL_UDFS:
        adapter.register_udf(udf)
    qfusor = QFusor(adapter)

    systems = {
        "qfusor": lambda: qfusor.execute(zillow.QUERIES["Q11"]),
        "tuplex": lambda: TuplexLike(tables).run(programs.build_program("Q11")),
        "udo": lambda: UdoLike(tables).run(programs.build_program("Q11")),
        "pyspark": lambda: PySparkLike(tables).run(programs.build_program("Q11")),
    }
    for name, run in systems.items():
        gc.collect()
        with ResourceSampler(interval=0.01) as sampler:
            for _ in range(5):  # sustain the phase long enough to sample
                run()
        last = sampler.samples[-1] if sampler.samples else None
        report.add(name, "runtime_s", last.elapsed if last else 0.0)
        report.add(name, "mean_cpu_%", sampler.mean_cpu_percent())
        report.add(name, "peak_rss_mb", sampler.peak_rss_mb())
    report.emit()
    return report


@pytest.mark.benchmark(group="fig7")
def test_fig7_resources(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # QFusor completes the sustained workload fastest (paper: 92 s vs
    # 190-460 s for the others); PySpark is slowest of the four.
    qf = report.value("qfusor", "runtime_s")
    assert qf < report.value("pyspark", "runtime_s")
    assert qf < report.value("udo", "runtime_s")
    # CPU utilisation is bounded by the GIL for all Python systems.
    assert report.value("qfusor", "mean_cpu_%") < 400
