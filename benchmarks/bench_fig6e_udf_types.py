"""Figure 6e: fusing the different UDF-type combinations (Q4-Q7).

Q4 scalar-scalar (TF1), Q5 scalar-aggregate (TF2), Q6 scalar-table
(TF3), Q7 table-aggregate (TF6).  The paper reports speedups up to 6x
with hot caches; the reproduction target is fused > unfused on every
combination.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter
from repro.workloads import udfbench

QUERIES = ["Q4", "Q5", "Q6", "Q7"]


def run_figure(scale: str) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig6e", "UDF-type fusion (Q4-Q7, hot caches)")
    rows = max(scale_rows(scale), 8_000)
    adapter_plain = MiniDbAdapter()
    udfbench.setup(adapter_plain, rows)
    unfused = QFusor(adapter_plain, QFusorConfig.disabled())
    adapter_fused = MiniDbAdapter()
    udfbench.setup(adapter_fused, rows)
    fused = QFusor(adapter_fused)
    for query in QUERIES:
        sql = udfbench.QUERIES[query]
        unfused.execute(sql)
        unfused_time, _ = time_call(lambda: unfused.execute(sql), repeats=2)
        fused.execute(sql)
        fused_time, _ = time_call(lambda: fused.execute(sql), repeats=2)
        report.add("unfused", query, unfused_time)
        report.add("fused", query, fused_time)
        report.add("speedup", query, unfused_time / fused_time)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig6e")
def test_fig6e_udf_types(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    for query in QUERIES:
        assert report.value("speedup", query) > 0.95
    # At least the scalar-scalar and table-aggregate pairs show clear
    # wins (interior boundary + materialization eliminated).
    assert report.value("speedup", "Q4") > 1.05
    assert report.value("speedup", "Q7") > 1.05
