"""Replication overhead, lag, and failover-time benchmarks.

Three acceptance gates ride here:

1. **Zero replication syscalls when disabled.**  The wire protocol's
   ``REPL_IO_CALLS`` counters are incremented inside every connect/
   accept/send/recv.  Running a full durability workload with no
   ``manager.replication`` configured must leave them untouched — the
   replication-disabled path provably touches no socket, syscall by
   syscall (the structural analogue of ``bench_durability``'s WAL
   ledger gate).

2. **Async shipping stays off the commit path.**  The per-op wall time
   with an async standby attached must stay within a small factor of
   the standalone write path — frames are handed to the sender thread,
   never awaited.

3. **Failover is fast.**  Kill the primary, promote the standby, serve
   a query: the whole transition lands in tens of milliseconds, not
   seconds, because promotion is a fenced metadata flip plus ordinary
   recovery.

Plus the headline numbers for EXPERIMENTS.md: replication lag drain
time, sync-ack commit cost vs async, and failover time by WAL length.
"""

import time

import pytest

from repro.bench import FigureReport
from repro.bench.harness import time_call
from repro.storage.catalog import Catalog
from repro.storage.durability import DurabilityManager
from repro.storage.replication import ReplicationPrimary, ReplicationStandby
from repro.storage.replication.protocol import (
    REPL_IO_CALLS,
    reset_repl_io_calls,
)
from repro.testing.crash import apply_op, build_workload, catalog_state

#: Async shipping must not multiply commit latency by more than this.
ASYNC_OVERHEAD_FACTOR = 3.0


def _wait_for(predicate, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return predicate()


def _commit_wall(directory, ops, *, replicate_to=None, sync=False):
    """Per-op wall time of a workload, with optional replication."""
    catalog = Catalog()
    manager = DurabilityManager(directory)
    manager.attach(catalog)
    primary = None
    if replicate_to is not None:
        primary = ReplicationPrimary(
            manager, replicate_to, sync=sync, ack_timeout_s=5.0
        )
        manager.replication = primary
    start = time.perf_counter()
    for op in ops:
        apply_op(catalog, op)
    wall = time.perf_counter() - start
    tail = manager.wal.last_lsn
    manager.close()
    return wall / max(1, len(ops)), tail


def run_disabled_gate_report(tmp_base) -> FigureReport:
    report = FigureReport(
        "replication_disabled_gate",
        "Replication syscalls with no standby configured", unit="calls",
    )
    reset_repl_io_calls()
    before = dict(REPL_IO_CALLS)
    catalog = Catalog()
    manager = DurabilityManager(tmp_base / "solo")
    manager.attach(catalog)
    for op in build_workload(5, 200):
        apply_op(catalog, op)
    manager.checkpoint()
    manager.close()
    # Recovery too: reopening a never-replicated directory must not
    # touch the replication layer either.
    manager2 = DurabilityManager(tmp_base / "solo")
    manager2.attach(Catalog())
    manager2.close()
    for op in sorted(REPL_IO_CALLS):
        report.add("io-calls-delta", op, REPL_IO_CALLS[op] - before[op])
    report.emit()
    return report


def run_lag_report(tmp_base) -> FigureReport:
    report = FigureReport(
        "replication_lag",
        "Commit cost and drain time, async vs sync shipping", unit="ms",
    )
    ops = build_workload(9, 150)

    # Baseline: durability only.
    base_per_op, _ = _commit_wall(tmp_base / "baseline", ops)
    report.add("per-op-us", "standalone", base_per_op * 1e6)

    # Async: commit returns before the standby flushes; measure the
    # residual lag drain after the last commit.
    standby = ReplicationStandby(tmp_base / "async-standby")
    catalog = Catalog()
    manager = DurabilityManager(tmp_base / "async-primary")
    manager.attach(catalog)
    manager.replication = ReplicationPrimary(manager, standby.address)
    start = time.perf_counter()
    for op in ops:
        apply_op(catalog, op)
    async_per_op = (time.perf_counter() - start) / len(ops)
    tail = manager.wal.last_lsn
    drain_start = time.perf_counter()
    assert _wait_for(lambda: standby.flushed_lsn >= tail)
    drain = time.perf_counter() - drain_start
    assert catalog_state(standby.catalog) == catalog_state(catalog)
    manager.close()
    standby.close()
    report.add("per-op-us", "async", async_per_op * 1e6)
    report.add("drain-ms", "async", drain * 1000)

    # Sync: every commit waits for the standby's fsync ack.
    standby2 = ReplicationStandby(tmp_base / "sync-standby")
    sync_per_op, _ = _commit_wall(
        tmp_base / "sync-primary", ops,
        replicate_to=standby2.address, sync=True,
    )
    standby2.close()
    report.add("per-op-us", "sync", sync_per_op * 1e6)
    report.emit()
    return report


def run_failover_report(tmp_base) -> FigureReport:
    report = FigureReport(
        "replication_failover",
        "Failover time (kill primary -> promoted standby serves)",
        unit="ms",
    )
    for label, n_ops in (("short-log", 20), ("long-log", 300)):
        standby = ReplicationStandby(tmp_base / f"{label}-standby")
        catalog = Catalog()
        manager = DurabilityManager(tmp_base / f"{label}-primary")
        manager.attach(catalog)
        manager.replication = ReplicationPrimary(manager, standby.address)
        for op in build_workload(13, n_ops):
            apply_op(catalog, op)
        tail = manager.wal.last_lsn
        assert _wait_for(lambda: standby.flushed_lsn >= tail)
        expected = catalog_state(catalog)
        manager.abandon()  # the primary dies

        def fail_over():
            standby.promote()
            promoted = Catalog()
            mgr = DurabilityManager(tmp_base / f"{label}-standby")
            mgr.attach(promoted)
            mgr.abandon()
            return promoted

        start = time.perf_counter()
        promoted = fail_over()
        wall = time.perf_counter() - start
        assert catalog_state(promoted) == expected
        report.add("failover-ms", label, wall * 1000)
        report.add("wal-records", label, tail)
    report.emit()
    return report


@pytest.mark.benchmark(group="replication")
def test_disabled_path_is_zero_syscalls(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: run_disabled_gate_report(tmp_path), rounds=1, iterations=1
    )
    for op in ("connect", "accept", "send", "recv"):
        assert report.value("io-calls-delta", op) == 0, (
            f"replication-disabled path performed {op} syscalls"
        )


@pytest.mark.benchmark(group="replication")
def test_async_shipping_stays_off_commit_path(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: run_lag_report(tmp_path), rounds=1, iterations=1
    )
    base = report.value("per-op-us", "standalone")
    async_cost = report.value("per-op-us", "async")
    sync_cost = report.value("per-op-us", "sync")
    assert async_cost < base * ASYNC_OVERHEAD_FACTOR, (
        f"async shipping {async_cost:.0f}us vs standalone {base:.0f}us "
        f"exceeds the {ASYNC_OVERHEAD_FACTOR}x budget"
    )
    # Sync waits for a network round-trip + remote fsync per commit; it
    # must cost more than async or the ack wait is not real.
    assert sync_cost > async_cost


@pytest.mark.benchmark(group="replication")
def test_failover_time_report(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: run_failover_report(tmp_path), rounds=1, iterations=1
    )
    for label in ("short-log", "long-log"):
        assert report.value("failover-ms", label) < 5_000


if __name__ == "__main__":
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        run_disabled_gate_report(Path(tmp) / "gate")
        run_lag_report(Path(tmp) / "lag")
        run_failover_report(Path(tmp) / "failover")
