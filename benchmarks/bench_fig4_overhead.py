"""Figure 4 (bottom): QFusor's own overheads per query (milliseconds).

fus-optim = discovery (Algorithm 1) + fusion optimization (Algorithm 2);
code-gen = fused-UDF generation/compilation + plan rewrite.  The paper's
point: both are milliseconds and "do not affect much query runtime".
"""

import pytest

from repro.bench import FigureReport
from repro.bench.harness import ALL_SQL, setup_adapter
from repro.core import QFusor
from repro.engines import MiniDbAdapter


def run_figure(scale: str) -> FigureReport:
    report = FigureReport(
        "fig4_bottom", "QFusor overheads per query", unit="ms"
    )
    adapter = setup_adapter(MiniDbAdapter(), scale)
    qfusor = QFusor(adapter)
    for query_id in sorted(ALL_SQL):
        analysis = qfusor.analyze(ALL_SQL[query_id])
        report.add("fus-optim", query_id, analysis.fus_optim_seconds * 1000)
        report.add("code-gen", query_id, analysis.codegen_seconds * 1000)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig4-bottom")
def test_fig4_overheads(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # Overheads are milliseconds for every query in the suite.
    for query_id in sorted(ALL_SQL):
        fus_optim = report.value("fus-optim", query_id)
        code_gen = report.value("code-gen", query_id)
        assert fus_optim is not None and fus_optim < 1000
        assert code_gen is not None and code_gen < 1000
