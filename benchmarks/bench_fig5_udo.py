"""Figure 5 (right): QFusor vs UDO on the split-arrays (Q17) and
contains-database (Q18) pipelines.

These have no fusion opportunities, so the comparison isolates QFusor's
JIT-compiled execution against UDO's out-of-the-box operator execution
(the paper reports QFusor 27 % / 39 % faster with hot caches).
"""

import pytest

from repro.baselines import UdoLike, programs
from repro.bench import FigureReport, time_call
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.workloads import udo_wl


def run_figure(scale: str) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig5_udo", "QFusor vs UDO (Q17/Q18, hot caches)")
    adapter = MiniDbAdapter()
    # Per-row effects need volume; per-query overheads dominate below
    # ~10k rows for these single-UDF pipelines.
    udo_wl.setup(adapter, max(scale_rows(scale), 12_000))
    qfusor = QFusor(adapter)
    tables = {t.name: t for t in adapter.database.catalog}
    udo = UdoLike(tables)
    for query in ("Q17", "Q18"):
        udo.run(programs.build_program(query))  # hot caches
        udo_time, _ = time_call(
            lambda: udo.run(programs.build_program(query)), repeats=4
        )
        qfusor.execute(udo_wl.QUERIES[query])
        qfusor_time, _ = time_call(
            lambda: qfusor.execute(udo_wl.QUERIES[query]), repeats=4
        )
        report.add("udo", query, udo_time)
        report.add("qfusor", query, qfusor_time)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig5-udo")
def test_fig5_udo(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # Q18 (filter pipeline): QFusor's batched fused predicate beats
    # UDO's per-operator materialization.  Q17 (flat-map) has no fusion
    # opportunity at all; the paper's 27 % margin there comes from the
    # tracing JIT compiling the generator body, which CPython cannot
    # replicate — the reproduction band is parity within generator cost.
    assert report.speedup("udo", "qfusor", "Q18") > 1.0
    assert report.speedup("udo", "qfusor", "Q17") > 0.6
