"""Figure 6b: operator offloading — Q8's selectivity sweep.

Q8 applies ``cleandate`` before a range filter.  The benchmark varies the
filter's pass fraction from ~6 % to 100 % and compares non-fused
execution (filter in the engine) against fused execution (filter
offloaded into the UDF loop).  Expected shape: fusion wins at low pass
fractions (it avoids materializing UDF outputs for dropped rows) and
yields diminishing returns at high pass fractions.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter, RowStoreAdapter
from repro.workloads import udfbench

#: Dates span 2008-2023, so the threshold year controls selectivity.
THRESHOLDS = [2008, 2011, 2015, 2019, 2023]

ENGINES = {"minidb": MiniDbAdapter, "rowstore": RowStoreAdapter}


def pass_label(year: int) -> str:
    fraction = (year - 2007) / 16
    return f"{fraction:.0%}"


def run_figure(scale: str) -> FigureReport:
    report = FigureReport("fig6b", "filter offloading vs selectivity (Q8)")
    fused_config = QFusorConfig()
    nofus_config = QFusorConfig.jit_only()
    from repro.workloads import scale_rows

    for engine_name, factory in ENGINES.items():
        adapter = factory()
        # Selectivity effects need volume to separate from per-query
        # optimization overheads.
        udfbench.setup(adapter, max(scale_rows(scale), 8_000))
        fused = QFusor(adapter, fused_config)
        nofus = QFusor(adapter, nofus_config)
        for year in THRESHOLDS:
            sql = udfbench.q8_selectivity(year)
            nofus.execute(sql)
            nofus_time, _ = time_call(lambda: nofus.execute(sql), repeats=2)
            fused.execute(sql)
            fused_time, _ = time_call(lambda: fused.execute(sql), repeats=2)
            label = pass_label(year)
            report.add(f"{engine_name}-no-fus", label, nofus_time)
            report.add(f"{engine_name}-fused", label, fused_time)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig6b")
def test_fig6b_offloading(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    low = pass_label(THRESHOLDS[0])
    high = pass_label(THRESHOLDS[-1])
    low_speedup = report.value("minidb-no-fus", low) / report.value(
        "minidb-fused", low
    )
    high_speedup = report.value("minidb-no-fus", high) / report.value(
        "minidb-fused", high
    )
    # Fusion helps at low pass fractions and its advantage shrinks as
    # more rows pass (the paper's diminishing-returns shape).  The
    # out-of-process row store gains most (reduced IPC materialization).
    assert low_speedup > 0.85
    rowstore_low = report.value("rowstore-no-fus", low) / report.value(
        "rowstore-fused", low
    )
    assert rowstore_low > 1.2
