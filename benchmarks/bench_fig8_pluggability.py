"""Figure 8: pluggability — Q12 (three chained UDFs on the url column)
on six engine profiles, native vs enhanced, two sizes.

"native" runs the query as-is on each engine; "enhanced" attaches
QFusor (JIT always on, fusion on).  The sixth engine is Python's real
stdlib sqlite3, integrated through ``create_function`` and accelerated
through the SQL-rewrite path — genuine third-party pluggability.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor
from repro.engines import (
    DuckDbLikeAdapter, MiniDbAdapter, ParallelDbAdapter, RowStoreAdapter,
    SqliteAdapter, TupleDbAdapter,
)
from repro.workloads import zillow

ENGINES = {
    "minidb": MiniDbAdapter,
    "tupledb": TupleDbAdapter,
    "rowstore": RowStoreAdapter,
    "duckdb": DuckDbLikeAdapter,
    "dbx": ParallelDbAdapter,
    "sqlite3": SqliteAdapter,
}

SIZES = {"7k-scaled": 3_500, "14k-scaled": 7_000}


def run_figure() -> FigureReport:
    report = FigureReport("fig8", "pluggability: Q12 native vs enhanced")
    sql = zillow.QUERIES["Q12"]
    for size_label, rows in SIZES.items():
        for engine_name, factory in ENGINES.items():
            native_adapter = factory()
            zillow.setup(native_adapter, rows)
            native_adapter.execute_sql(sql)
            native, _ = time_call(
                lambda: native_adapter.execute_sql(sql), repeats=2
            )
            report.add(f"{engine_name}-native", size_label, native)

            enhanced_adapter = factory()
            zillow.setup(enhanced_adapter, rows)
            qfusor = QFusor(enhanced_adapter)
            qfusor.execute(sql)
            enhanced, _ = time_call(lambda: qfusor.execute(sql), repeats=2)
            report.add(f"{engine_name}-enhanced", size_label, enhanced)
            report.add(
                f"{engine_name}-speedup", size_label, native / enhanced
            )
    report.emit()
    return report


@pytest.mark.benchmark(group="fig8")
def test_fig8_pluggability(benchmark):
    report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # The benefit of QFusor is evident across engines (paper's words):
    # every profile must show a speedup at the larger size.
    for engine_name in ENGINES:
        speedup = report.value(f"{engine_name}-speedup", "14k-scaled")
        assert speedup > 0.95, engine_name
    # The per-row engines gain the most from fusion.
    assert report.value("tupledb-speedup", "14k-scaled") > 1.2
