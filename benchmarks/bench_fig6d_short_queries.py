"""Figure 6d (and section 6.4.5): compilation latency and a workload of
100 short-running queries under varying parallelism.

Part 1 — per-query compilation latency: QFusor's per-UDF trace
compilation stays flat with query complexity, while the Tuplex/LLVM
model's whole-pipeline compilation grows (Q13 simple vs Q14 complex).

Part 2 — 100 short queries (variants of Q11-Q14 differing in constants,
grouping, and ordering) executed by QFusor, QFusor with the trace cache
(zero recompilation for repeated pipeline shapes), the YeSQL profile,
and the Tuplex model, with 1-8 worker threads.
"""

import itertools
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.baselines import TuplexLike, programs
from repro.bench import FigureReport
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter
from repro.workloads import zillow

THREAD_COUNTS = [1, 2, 4, 8]


def make_workload():
    """100 short query variants over the tiny zillow snapshot.

    Variants reuse the same UDF pipelines with different relational
    constants/orderings, so the trace cache can hit across them.
    """
    queries = []
    for i in range(25):
        bd = 1 + (i % 5)
        queries.append(
            f"SELECT extract_bd(bedrooms) AS bd FROM listings "
            f"WHERE extract_bd(bedrooms) >= {bd}"
        )
        queries.append(
            f"SELECT url_depth(strip_params(lower(url))) AS d "
            f"FROM listings LIMIT {100 + i}"
        )
        queries.append(
            "SELECT extract_type(type) AS t, count(*) AS n FROM listings "
            f"GROUP BY t ORDER BY n {'DESC' if i % 2 else 'ASC'}"
        )
        queries.append(
            f"SELECT extract_price(price) AS p FROM listings "
            f"WHERE extract_price(price) < {(300 + 10 * i) * 1000}"
        )
    return queries[:100]


def run_compile_latency(report: FigureReport) -> None:
    adapter = MiniDbAdapter()
    zillow.setup(adapter, "small")
    qfusor = QFusor(adapter)
    for query in ("Q13", "Q14"):
        analysis = qfusor.analyze(zillow.QUERIES[query])
        report.add("qfusor-compile", query, analysis.total_overhead_seconds)
    tables = {t.name: t for t in adapter.database.catalog}
    tuplex = TuplexLike(tables)
    for query in ("Q13", "Q14"):
        tuplex.compile(programs.build_program(query))
        report.add("tuplex-compile", query, tuplex.last_compile_seconds)


def run_workload_sweep(report: FigureReport) -> None:
    workload = make_workload()

    def qfusor_system(cache_enabled: bool):
        adapter = MiniDbAdapter()
        zillow.setup(adapter, "small")
        config = QFusorConfig(trace_cache=cache_enabled)
        qfusor = QFusor(adapter, config)
        return lambda sql: qfusor.execute(sql)

    def yesql_system():
        adapter = MiniDbAdapter()
        zillow.setup(adapter, "small")
        qfusor = QFusor(adapter, QFusorConfig.yesql_like())
        return lambda sql: qfusor.execute(sql)

    def tuplex_runner(threads):
        adapter = MiniDbAdapter()
        zillow.setup(adapter, "small")
        tables = {t.name: t for t in adapter.database.catalog}
        tuplex = TuplexLike(tables, threads=1)
        # Tuplex compiles each pipeline per query (LLVM per submission).
        program_cycle = itertools.cycle(["Q13", "Q12", "Q14", "Q13"])

        def run_one(_sql):
            name = next(program_cycle)
            return tuplex.run(programs.build_program(name))

        return run_one

    for threads in THREAD_COUNTS:
        systems = {
            "qfusor": qfusor_system(cache_enabled=False),
            "qfusor-cache": qfusor_system(cache_enabled=True),
            "yesql": yesql_system(),
            "tuplex": tuplex_runner(threads),
        }
        for name, run_one in systems.items():
            start = time.perf_counter()
            if threads == 1:
                for sql in workload:
                    run_one(sql)
            else:
                with ThreadPoolExecutor(max_workers=threads) as pool:
                    list(pool.map(run_one, workload))
            report.add(name, f"{threads}t", time.perf_counter() - start)


def run_figure() -> FigureReport:
    report = FigureReport(
        "fig6d", "compilation latency + 100 short queries"
    )
    run_compile_latency(report)
    run_workload_sweep(report)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig6d")
def test_fig6d_short_queries(benchmark):
    report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # QFusor's compilation overhead stays flat with complexity; the
    # LLVM-style model grows (section 6.4.5's crossover).
    qf_growth = report.value("qfusor-compile", "Q14") / report.value(
        "qfusor-compile", "Q13"
    )
    tx_growth = report.value("tuplex-compile", "Q14") / report.value(
        "tuplex-compile", "Q13"
    )
    assert tx_growth > qf_growth * 0.8
    # The trace cache pays off across the 100-query workload.
    for threads in THREAD_COUNTS:
        cached = report.value("qfusor-cache", f"{threads}t")
        uncached = report.value("qfusor", f"{threads}t")
        assert cached <= uncached * 1.1
