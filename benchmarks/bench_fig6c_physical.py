"""Figure 6c: physical optimization ladder on Q9 (lightweight UDFs over a
large table) and Q10 (complex JSON types), on the vectorized column
store and the out-of-process row store.

The paper's seven techniques collapse onto this substrate's ablation
axes (see EXPERIMENTS.md for the mapping):

  baseline   - native Python UDF execution;
  jit        - per-UDF trace compilation, no fusion (techniques b-d);
  fused      - loop fusion: one loop, no interior C<->JIT conversions,
               no interior (de-)serialization (techniques e-g).

Alongside wall time, the bench reports boundary counters: Q10's fused
run eliminates the interior JSON (de-)serializations entirely — the
paper's "remove serialization" step.
"""

import pytest

from repro.bench import FigureReport, time_call
from repro.core import QFusor, QFusorConfig
from repro.engines import MiniDbAdapter, RowStoreAdapter
from repro.udf import boundary
from repro.workloads import udfbench

LADDER = [
    ("baseline", QFusorConfig.disabled()),
    ("jit", QFusorConfig.jit_only()),
    ("fused", QFusorConfig()),
]

ENGINES = {"minidb": MiniDbAdapter, "rowstore": RowStoreAdapter}


def run_figure(scale: str) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig6c", "physical optimization ladder (Q9/Q10)")
    rows = max(scale_rows(scale), 8_000)
    for engine_name, factory in ENGINES.items():
        for technique, config in LADDER:
            adapter = factory()
            udfbench.setup(adapter, rows)
            qfusor = QFusor(adapter, config)
            for query in ("Q9", "Q10"):
                sql = udfbench.QUERIES[query]
                qfusor.execute(sql)  # warm
                elapsed, _ = time_call(lambda: qfusor.execute(sql), repeats=2)
                report.add(f"{engine_name}-{technique}", query, elapsed)
    report.emit()

    # Serialization ablation (Q10): count JSON serde at the boundary.
    serde_report = FigureReport(
        "fig6c_serde", "Q10 interior (de-)serializations", unit="count"
    )
    for technique, config in LADDER:
        adapter = MiniDbAdapter()
        udfbench.setup(adapter, rows)
        qfusor = QFusor(adapter, config)
        qfusor.execute(udfbench.QUERIES["Q10"])  # warm/compile
        boundary.counters.reset()
        qfusor.execute(udfbench.QUERIES["Q10"])
        snap = boundary.counters.snapshot()
        serde_report.add(technique, "serializations", snap["serializations"])
        serde_report.add(technique, "deserializations", snap["deserializations"])
    serde_report.emit()
    report.serde = serde_report  # attach for assertions
    return report


@pytest.mark.benchmark(group="fig6c")
def test_fig6c_physical(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # Q10 (serialization heavy) is a clear win everywhere; Q9's UDFs are
    # regex-bound, so on the in-process vectorized engine the boundary
    # saving is small (the paper's 16x on Q9 comes from PyPy compiling
    # the UDF bodies themselves, which CPython cannot replicate) —
    # break-even is the reproduction target there.
    for engine_name in ENGINES:
        baseline = report.value(f"{engine_name}-baseline", "Q10")
        fused = report.value(f"{engine_name}-fused", "Q10")
        assert fused < baseline * 0.7
    assert report.value("rowstore-fused", "Q9") < report.value(
        "rowstore-baseline", "Q9"
    )
    assert report.value("minidb-fused", "Q9") < report.value(
        "minidb-baseline", "Q9"
    ) * 1.2
    # Q10: fusion removes the intermediate JSON round trip entirely
    # (jpack's output feeds jsoncount in-loop, unserialized).
    serde = report.serde
    assert serde.value("fused", "serializations") < serde.value(
        "baseline", "serializations"
    )
    assert serde.value("fused", "deserializations") < serde.value(
        "baseline", "deserializations"
    )
