"""Export a Chrome trace_event JSON (plus the text report) for one
benchmark query — CI uploads the JSON as a build artifact.

Usage::

    PYTHONPATH=src python benchmarks/export_chrome_trace.py [QUERY_ID] [OUT]
"""

import sys

from repro.bench.harness import ALL_SQL, setup_adapter
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.obs import QueryReport, tracer, write_chrome_trace


def main(query_id: str = "Q1", out: str = "chrome_trace_q1.json",
         scale: str = "small") -> None:
    qfusor = QFusor(setup_adapter(MiniDbAdapter(), scale))
    qfusor.execute(ALL_SQL[query_id])  # warm, so the trace shows a cache hit
    with tracer.trace_query(query_id, adapter="minidb") as trace:
        qfusor.execute(ALL_SQL[query_id])
    print(QueryReport.from_trace(trace).render())
    write_chrome_trace(trace, out)  # atomic: no torn artifact
    print(f"wrote {out}")


if __name__ == "__main__":
    main(*sys.argv[1:])
