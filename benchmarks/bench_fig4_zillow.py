"""Figure 4 (middle): the Zillow pipeline (Q11) across systems and sizes.

The string-heavy regime: every predicate and aggregate input is a dirty
string parsed by a Python UDF.  The paper shows QFusor clearly ahead of
all systems here; tuple-at-a-time engines suffer most from per-row
conversion costs.
"""

import pytest

from repro.bench import (
    FigureReport, build_engine_systems, build_pipeline_systems, time_call,
)

SIZES = {"small": 2_000, "medium": 6_000, "large": 12_000}


def run_figure() -> FigureReport:
    report = FigureReport("fig4_middle", "Zillow Q11 across systems/sizes")
    for label, rows in SIZES.items():
        systems = {}
        systems.update(
            build_engine_systems(rows, names=(
                "qfusor", "yesql", "minidb", "tupledb", "rowstore", "dbx",
            ))
        )
        systems.update(
            build_pipeline_systems(rows, names=(
                "tuplex", "udo", "pandas", "pyspark",
            ))
        )
        for name, system in systems.items():
            if not system.supports("Q11"):
                report.add(name, label, None)
                continue
            system.run("Q11")  # warm
            elapsed, _ = time_call(lambda: system.run("Q11"), repeats=2)
            report.add(name, label, elapsed)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig4-middle")
def test_fig4_zillow(benchmark):
    report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # QFusor outperforms the native engine and the tuple engines on the
    # string pipeline at every size (the paper's headline for Zillow);
    # PySpark's serialization costs only dominate once data grows.
    for label in SIZES:
        assert report.speedup("minidb", "qfusor", label) > 1.0
        assert report.speedup("tupledb", "qfusor", label) > 1.5
    for label in ("medium", "large"):
        assert report.speedup("pyspark", "qfusor", label) > 1.0
