"""Figure 6g: thread scaling (1-12 threads) on the Zillow pipeline.

QFusor runs on the thread-parallel engine profile; Tuplex partitions its
input per thread; UDO is single-stream.  The expected shape matches the
paper: QFusor gains modestly (Python's GIL bounds UDF-side parallelism —
the paper itself reports only ~45 % at 12 threads), Tuplex plateaus as
partitioning overheads grow, and UDO barely moves.
"""

import pytest

from repro.baselines import TuplexLike, UdoLike, programs
from repro.bench import FigureReport, time_call
from repro.core import QFusor
from repro.engines import ParallelDbAdapter
from repro.workloads import zillow

THREADS = [1, 2, 4, 8, 12]


def run_figure(scale: str) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig6g", "thread scaling on Q11")
    rows = max(scale_rows(scale), 6_000)
    listings = zillow.build_listings(rows)
    tables = {"listings": listings}

    for threads in THREADS:
        adapter = ParallelDbAdapter(threads=threads)
        adapter.register_table(listings)
        for udf in zillow.ALL_UDFS:
            adapter.register_udf(udf)
        qfusor = QFusor(adapter)
        qfusor.execute(zillow.QUERIES["Q11"])  # warm
        elapsed, _ = time_call(
            lambda: qfusor.execute(zillow.QUERIES["Q11"]), repeats=2
        )
        report.add("qfusor", f"{threads}t", elapsed)

        tuplex = TuplexLike(tables, threads=threads)
        compiled = tuplex.compile(programs.build_program("Q11"))
        elapsed, _ = time_call(
            lambda: tuplex.run(programs.build_program("Q11"), compiled=compiled),
            repeats=2,
        )
        report.add("tuplex", f"{threads}t", elapsed)

        udo = UdoLike(tables)  # UDO: no intra-query threading
        udo.run(programs.build_program("Q11"))
        elapsed, _ = time_call(
            lambda: udo.run(programs.build_program("Q11")), repeats=2
        )
        report.add("udo", f"{threads}t", elapsed)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig6g")
def test_fig6g_parallelism(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # UDO gains nothing from extra threads.
    udo_1 = report.value("udo", "1t")
    udo_12 = report.value("udo", "12t")
    assert abs(udo_1 - udo_12) / udo_1 < 0.5
    # GIL-bound: nobody shows superlinear scaling; QFusor stays within
    # a modest band of its single-thread time (the paper's observation).
    qf_1 = report.value("qfusor", "1t")
    qf_12 = report.value("qfusor", "12t")
    assert qf_12 < qf_1 * 1.5
