"""Figure 5 (left/middle): QFusor vs Weld on get_population_stats (Q15)
and data_cleaning (Q16), three sizes, with load phases reported.

Weld loads in two phases (CSV preprocess + runtime load) before its
compute; QFusor reads engine tables and computes.  The paper reports
QFusor ahead on total compute time for both queries.
"""

import pytest

from repro.baselines import WeldLike, programs
from repro.bench import FigureReport, time_call
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.workloads import weld_wl

SIZES = {"small": 2_000, "medium": 6_000, "large": 12_000}


def run_figure() -> FigureReport:
    report = FigureReport("fig5_weld", "QFusor vs Weld (Q15/Q16)")
    for label, rows in SIZES.items():
        adapter = MiniDbAdapter()
        weld_wl.setup(adapter, rows)
        qfusor = QFusor(adapter)
        tables = {t.name: t for t in adapter.database.catalog}
        weld = WeldLike(tables)
        report.add("weld-load", label,
                   weld.preprocess_seconds + weld.load_seconds)
        for query in ("Q15", "Q16"):
            program = programs.build_program(query)
            weld.run(program)  # warm
            weld_time, _ = time_call(
                lambda: weld.run(programs.build_program(query)), repeats=2
            )
            qfusor.execute(weld_wl.QUERIES[query])  # warm (compile)
            qfusor_time, _ = time_call(
                lambda: qfusor.execute(weld_wl.QUERIES[query]), repeats=2
            )
            report.add(f"weld-{query}", label, weld_time)
            report.add(f"qfusor-{query}", label, qfusor_time)
    report.emit()
    return report


@pytest.mark.benchmark(group="fig5-weld")
def test_fig5_weld(benchmark):
    report = benchmark.pedantic(run_figure, rounds=1, iterations=1)
    # QFusor's fused execution beats Weld's IR interpretation of the
    # non-native (string/UDF) parts on the larger sizes.
    for query in ("Q15", "Q16"):
        assert report.speedup(f"weld-{query}", f"qfusor-{query}", "large") > 1.0
    # Weld pays a real two-phase load.
    assert report.value("weld-load", "large") > 0
