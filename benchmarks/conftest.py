"""Shared benchmark configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_figX_*`` module regenerates one figure/table of the paper's
evaluation: it prints the measured series (and writes it under
``benchmarks/results/``) in the same layout the paper reports.

Scale defaults to "small" (see ``repro.workloads.SCALES``); set
``REPRO_BENCH_SCALE=medium`` for longer, more contrasted runs.
"""

import pytest


@pytest.fixture(scope="session")
def bench_scale():
    from repro.bench import bench_scale as _scale

    return _scale("small")
