"""Froid-style translation speedup and disabled-path overhead.

Two acceptance gates ride here:

1. **≥2× on sqlite for translatable queries.**  When every UDF
   reference compiles to plain SQL, sqlite executes the whole query in
   C with no per-row Python callback.  For at least three translatable
   UDF queries the translated configuration must beat the untranslated
   one (full fusion ladder, still boundary-crossing) by 2× or more.

2. **<3% structural overhead when ``translate_enabled=False``.**  The
   disabled path is one ``self.translator = None`` assignment at QFusor
   construction plus one ``if self.translator is not None`` branch per
   query.  Like ``bench_durability``, we prove this structurally: a
   zero-call ledger (no ``UdfTranslator`` is ever constructed, no
   translation runs) times the measured per-branch cost, not a noisy
   wall-clock diff.
"""

import timeit

import pytest

from repro.bench import FigureReport
from repro.bench.harness import time_call
from repro.core import QFusor
from repro.core.config import QFusorConfig
from repro.engines import SqliteAdapter
from repro.storage import Column, Table
from repro.types import SqlType
from repro.udf.decorators import scalar_udf

SPEEDUP_FLOOR = 2.0
OVERHEAD_BUDGET = 0.03

_ROWS = 40_000


@scalar_udf(name="b_tax", args=["int"], returns="float", deterministic=True)
def b_tax(cents):
    return cents * 107 / 100


@scalar_udf(name="b_grade", args=["int"], returns="int", deterministic=True)
def b_grade(score):
    if score < 40:
        return 0
    elif score < 70:
        return 1
    elif score < 90:
        return 2
    return 3


@scalar_udf(name="b_clip", args=["int", "int"], returns="int",
            deterministic=True)
def b_clip(v, hi):
    return v if v < hi else hi


@scalar_udf(name="b_initial", args=["text"], returns="text",
            deterministic=True)
def b_initial(name):
    return name[:1] + "."


QUERIES = {
    "tax-sum": "SELECT SUM(b_tax(a)) FROM bt",
    "grade-filter": "SELECT COUNT(*) FROM bt WHERE b_grade(a) >= 2",
    "clip-proj": "SELECT b_clip(a, 75) FROM bt",
    "initial-proj": "SELECT b_initial(s) FROM bt",
}

_UDFS = (b_tax, b_grade, b_clip, b_initial)


def _adapter() -> SqliteAdapter:
    adapter = SqliteAdapter()
    names = ["Ada", "Grace", "Edsger", "Barbara", "Tony"]
    adapter.register_table(
        Table(
            "bt",
            [
                Column("a", SqlType.INT, [i % 100 for i in range(_ROWS)]),
                Column(
                    "s", SqlType.TEXT,
                    [names[i % len(names)] for i in range(_ROWS)],
                ),
            ],
        )
    )
    for udf in _UDFS:
        adapter.register_udf(udf, deterministic=True)
    return adapter


def run_speedup_report(repeats: int = 3) -> FigureReport:
    report = FigureReport(
        "translate_speedup",
        "translated vs untranslated on sqlite", unit="x",
    )
    off = QFusor(_adapter(), QFusorConfig())
    on = QFusor(_adapter(), QFusorConfig.translated())
    for query_id, sql in sorted(QUERIES.items()):
        off.execute(sql)  # warm both systems (plans, sqlite page cache)
        on.execute(sql)
        assert on.last_report.translate_outcome() == "hit", (
            f"{query_id} did not translate: "
            f"{on.last_report.translate_events}"
        )
        wall_off, _ = time_call(lambda: off.execute(sql), repeats=repeats)
        wall_on, _ = time_call(lambda: on.execute(sql), repeats=repeats)
        report.add("untranslated-ms", query_id, wall_off * 1000)
        report.add("translated-ms", query_id, wall_on * 1000)
        report.add(
            "speedup", query_id,
            wall_off / wall_on if wall_on else float("inf"),
        )
    report.emit()
    return report


# ----------------------------------------------------------------------
# Disabled-path overhead, structurally
# ----------------------------------------------------------------------


def measure_branch_cost() -> float:
    """Seconds per disabled translation check (attribute load + is)."""
    loops = 200_000
    total = min(
        timeit.repeat(
            "qf.translator is not None",
            setup=(
                "class QF:\n"
                "    translator = None\n"
                "qf = QF()"
            ),
            repeat=5, number=loops,
        )
    )
    return total / loops


def run_overhead_report(repeats: int = 3) -> FigureReport:
    report = FigureReport(
        "translate_disabled_overhead",
        "translate_enabled=False structural overhead", unit="%",
    )
    constructions = []
    import repro.sql.translate as translate_mod

    original = translate_mod.UdfTranslator

    class _Ledger(original):
        def __init__(self, *args, **kwargs):
            constructions.append(1)
            super().__init__(*args, **kwargs)

    translate_mod.UdfTranslator = _Ledger
    try:
        qfusor = QFusor(_adapter(), QFusorConfig())
    finally:
        translate_mod.UdfTranslator = original
    assert qfusor.translator is None
    branch_cost = measure_branch_cost()
    report.add("branch-ns", "cost", branch_cost * 1e9)
    for query_id, sql in sorted(QUERIES.items()):
        qfusor.execute(sql)  # warm
        assert qfusor.last_report.translate_events == []
        wall, _ = time_call(lambda: qfusor.execute(sql), repeats=repeats)
        # The disabled path reaches exactly one translator branch per
        # statement executed (selects here are single statements).
        estimate = branch_cost / wall if wall else 0.0
        report.add("wall-ms", query_id, wall * 1000)
        report.add("overhead-pct", query_id, estimate * 100)
    # The zero-call ledger: no translator was ever constructed.
    report.add("translator-constructions", "total", len(constructions))
    report.emit()
    return report


@pytest.mark.benchmark(group="translate")
def test_translated_speedup_on_sqlite(benchmark):
    report = benchmark.pedantic(run_speedup_report, rounds=1, iterations=1)
    fast_enough = [
        query_id for query_id in sorted(QUERIES)
        if report.value("speedup", query_id) >= SPEEDUP_FLOOR
    ]
    assert len(fast_enough) >= 3, (
        f"need >=3 queries at {SPEEDUP_FLOOR}x, got {fast_enough}: "
        + ", ".join(
            f"{q}={report.value('speedup', q):.2f}x"
            for q in sorted(QUERIES)
        )
    )


@pytest.mark.benchmark(group="translate")
def test_disabled_overhead_within_budget(benchmark):
    report = benchmark.pedantic(run_overhead_report, rounds=1, iterations=1)
    assert report.value("translator-constructions", "total") == 0, (
        "translate_enabled=False constructed a translator"
    )
    for query_id in sorted(QUERIES):
        pct = report.value("overhead-pct", query_id)
        assert pct is not None
        assert pct < OVERHEAD_BUDGET * 100, (
            f"{query_id}: structural translate overhead {pct:.3f}% "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
        )


if __name__ == "__main__":
    run_speedup_report()
    run_overhead_report()
