"""Disabled-observability overhead on the benchmark queries.

The obs layer's contract: with tracing and metrics off, every
checkpoint costs exactly one attribute-load branch (``if OBS.tracing:``
/ ``if OBS.metrics:``).  This benchmark bounds that cost two ways:

1. **Structurally** — count the checkpoints a query actually reaches
   (by enabling obs and counting spans, events, and metric touches),
   multiply by the measured per-branch cost, and divide by the query's
   untraced wall time.  This estimate is stable because the branch cost
   (~tens of nanoseconds) is measured in a tight loop, independent of
   scheduler noise.
2. **Empirically** — compare repeated disabled-obs runs against the
   seed's obs-free baseline shape: the per-query minimum over several
   repeats, which suppresses one-off scheduling outliers.

The structural estimate is the enforced bound (<3%); the wall-clock
comparison is reported for context.
"""

import timeit

import pytest

from repro.bench import FigureReport
from repro.bench.harness import ALL_SQL, setup_adapter, time_call
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.obs import METRICS, tracer

OVERHEAD_BUDGET = 0.03  # the <3% acceptance bound


def measure_branch_cost() -> float:
    """Seconds per disabled ``if OBS.tracing:`` check (one attr load)."""
    loops = 200_000
    total = min(
        timeit.repeat(
            "OBS.tracing or OBS.metrics",
            setup="from repro.obs import OBS",
            repeat=5, number=loops,
        )
    )
    return total / loops


def count_checkpoints(qfusor: QFusor, query_id: str) -> int:
    """Checkpoints the query reaches: spans opened, events recorded,
    and metric-instrument touches, with obs fully enabled.  Each one
    maps back to a single guarded branch when obs is disabled."""
    METRICS.reset()
    with tracer.trace_query(query_id) as trace:
        with tracer.enabled_scope(tracing=True, metrics=True):
            qfusor.execute(ALL_SQL[query_id])
    spans = len(trace.spans())
    events = sum(len(span.events) for span in trace.root.walk())
    snap = METRICS.snapshot()
    metric_touches = sum(snap["counters"].values()) + sum(
        hist["count"] for hist in snap["histograms"].values()
    )
    return spans + events + metric_touches


def run_report(scale: str, repeats: int = 3) -> FigureReport:
    report = FigureReport(
        "obs_overhead", "Disabled-observability overhead per query",
        unit="%",
    )
    adapter = setup_adapter(MiniDbAdapter(), scale)
    qfusor = QFusor(adapter)
    branch_cost = measure_branch_cost()
    report.add("branch-ns", "cost", branch_cost * 1e9)
    for query_id in sorted(ALL_SQL):
        qfusor.execute(ALL_SQL[query_id])  # warm caches
        checkpoints = count_checkpoints(qfusor, query_id)
        wall, _ = time_call(
            lambda: qfusor.execute(ALL_SQL[query_id]), repeats=repeats
        )
        estimate = checkpoints * branch_cost / wall if wall else 0.0
        report.add("checkpoints", query_id, checkpoints)
        report.add("wall-ms", query_id, wall * 1000)
        report.add("overhead-pct", query_id, estimate * 100)
    report.emit()
    return report


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_disabled_overhead_within_budget(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_report(bench_scale), rounds=1, iterations=1
    )
    for query_id in sorted(ALL_SQL):
        pct = report.value("overhead-pct", query_id)
        assert pct is not None
        assert pct < OVERHEAD_BUDGET * 100, (
            f"{query_id}: structural obs overhead estimate {pct:.3f}% "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
        )


if __name__ == "__main__":
    import os

    run_report(os.environ.get("REPRO_BENCH_SCALE", "small"))
