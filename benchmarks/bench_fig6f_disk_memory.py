"""Figure 6f: disk vs main memory, cold vs hot caches, on the Zillow
pipeline.

"Disk" means the CSV ingest path: the engine (and Tuplex's row loader)
parse the file before computing — a cold run pays load + compute, a hot
run only compute.  Systems: QFusor, Tuplex (CSV reader), UDO (manually
fused variant), PySpark.
"""

import pytest

from repro.baselines import PySparkLike, TuplexLike, UdoLike, programs
from repro.bench import FigureReport, time_call
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.storage import csvio
from repro.workloads import zillow


def run_figure(scale: str, tmp_dir) -> FigureReport:
    from repro.workloads import scale_rows

    report = FigureReport("fig6f", "disk vs memory, cold vs hot (Q11)")
    rows = max(scale_rows(scale), 6_000)
    listings = zillow.build_listings(rows)
    csv_path = tmp_dir / "listings.csv"
    csvio.save_csv(listings, csv_path)

    # ---- QFusor ------------------------------------------------------
    def qfusor_cold():
        adapter = MiniDbAdapter()
        adapter.register_table(csvio.load_csv(csv_path, "listings"))
        for udf in zillow.ALL_UDFS:
            adapter.register_udf(udf)
        return QFusor(adapter).execute(zillow.QUERIES["Q11"])

    cold, _ = time_call(qfusor_cold, repeats=1)
    report.add("qfusor", "cold-disk", cold)
    adapter = MiniDbAdapter()
    adapter.register_table(listings)
    for udf in zillow.ALL_UDFS:
        adapter.register_udf(udf)
    qfusor = QFusor(adapter)
    qfusor.execute(zillow.QUERIES["Q11"])  # warm
    hot, _ = time_call(lambda: qfusor.execute(zillow.QUERIES["Q11"]), repeats=2)
    report.add("qfusor", "hot-memory", hot)

    # ---- Tuplex ------------------------------------------------------
    def tuplex_cold():
        loaded = {"listings": csvio.load_csv(csv_path, "listings")}
        tuplex = TuplexLike(loaded)
        return tuplex.run(programs.build_program("Q11"))

    cold, _ = time_call(tuplex_cold, repeats=1)
    report.add("tuplex", "cold-disk", cold)
    tuplex = TuplexLike({"listings": listings})
    compiled = tuplex.compile(programs.build_program("Q11"))
    hot, _ = time_call(
        lambda: tuplex.run(programs.build_program("Q11"), compiled=compiled),
        repeats=2,
    )
    report.add("tuplex", "hot-memory", hot)

    # ---- UDO (manually fused) and PySpark ----------------------------
    for name, factory in (
        ("udo-fused", lambda t: UdoLike(t, fused=True)),
        ("pyspark", lambda t: PySparkLike(t)),
    ):
        def cold_run():
            loaded = {"listings": csvio.load_csv(csv_path, "listings")}
            return factory(loaded).run(programs.build_program("Q11"))

        cold, _ = time_call(cold_run, repeats=1)
        report.add(name, "cold-disk", cold)
        system = factory({"listings": listings})
        system.run(programs.build_program("Q11"))
        hot, _ = time_call(
            lambda: system.run(programs.build_program("Q11")), repeats=2
        )
        report.add(name, "hot-memory", hot)

    report.emit()
    return report


@pytest.mark.benchmark(group="fig6f")
def test_fig6f_disk_memory(benchmark, bench_scale, tmp_path):
    report = benchmark.pedantic(
        lambda: run_figure(bench_scale, tmp_path), rounds=1, iterations=1
    )
    # Cold runs pay the CSV ingest everywhere.
    for system in ("qfusor", "tuplex", "udo-fused", "pyspark"):
        assert report.value(system, "cold-disk") > report.value(
            system, "hot-memory"
        )
    # Hot compute: QFusor ahead of PySpark (the paper's 5.75x average;
    # the gap on this substrate is smaller but the ordering holds).
    assert report.speedup("pyspark", "qfusor", "hot-memory") > 1.0
