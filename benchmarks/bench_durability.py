"""Durability overhead and recovery-time benchmarks.

Two acceptance gates ride here:

1. **WAL-disabled overhead < 3%, structurally.**  With no durability
   manager attached, every catalog mutation costs exactly one
   ``if self.durability is not None:`` attribute-load branch (plus one
   ``getattr(catalog, "generation", 0)`` per result-cache key probe).
   Like ``bench_obs_overhead``, we count the branches a query actually
   reaches (by attaching a counting stub) and multiply by the measured
   per-branch cost — an estimate immune to scheduler noise.

2. **Zero durability syscalls when disabled.**  The WAL module's
   ``IO_CALLS`` counters are incremented inside every durability
   write/fsync/truncate.  Running the whole UDFBench query set with no
   manager attached must leave them untouched — the disabled path
   provably performs no I/O, syscall by syscall.

Plus the headline robustness numbers for EXPERIMENTS.md: recovery time
vs WAL length (replay-heavy) and vs checkpoint freshness.
"""

import timeit

import pytest

from repro.bench import FigureReport
from repro.bench.harness import ALL_SQL, setup_adapter, time_call
from repro.core import QFusor
from repro.engines import MiniDbAdapter
from repro.storage import Catalog, Column, Table
from repro.storage.durability import DurabilityManager
from repro.storage.durability.wal import IO_CALLS
from repro.types import SqlType

OVERHEAD_BUDGET = 0.03  # the <3% acceptance bound


def measure_branch_cost() -> float:
    """Seconds per disabled durability check (one attribute load + is)."""
    loops = 200_000
    total = min(
        timeit.repeat(
            "catalog.durability is not None",
            setup=(
                "from repro.storage import Catalog; catalog = Catalog()"
            ),
            repeat=5, number=loops,
        )
    )
    return total / loops


class _CountingStub:
    """Stands in for a DurabilityManager: counts the guarded calls a
    query reaches without doing any I/O.  Each count maps back to one
    disabled-path branch."""

    def __init__(self):
        self.calls = 0

    def log_table(self, table, epoch):
        self.calls += 1

    def log_drop(self, name, epoch):
        self.calls += 1

    def log_touch(self, name, epoch):
        self.calls += 1


def count_checkpoints(qfusor: QFusor, query_id: str) -> int:
    """Durability branch sites one execution of the query reaches."""
    catalog = qfusor.adapter.database.catalog
    stub = _CountingStub()
    catalog.durability = stub
    try:
        qfusor.execute(ALL_SQL[query_id])
    finally:
        catalog.durability = None
    # +1 for the generation getattr in every result-key derivation.
    return stub.calls + 1


def run_overhead_report(scale: str, repeats: int = 3) -> FigureReport:
    report = FigureReport(
        "durability_overhead",
        "WAL-disabled durability overhead per query", unit="%",
    )
    adapter = setup_adapter(MiniDbAdapter(), scale)
    qfusor = QFusor(adapter)
    branch_cost = measure_branch_cost()
    report.add("branch-ns", "cost", branch_cost * 1e9)
    io_before = dict(IO_CALLS)
    for query_id in sorted(ALL_SQL):
        qfusor.execute(ALL_SQL[query_id])  # warm
        checkpoints = count_checkpoints(qfusor, query_id)
        wall, _ = time_call(
            lambda: qfusor.execute(ALL_SQL[query_id]), repeats=repeats
        )
        estimate = checkpoints * branch_cost / wall if wall else 0.0
        report.add("checkpoints", query_id, checkpoints)
        report.add("wall-ms", query_id, wall * 1000)
        report.add("overhead-pct", query_id, estimate * 100)
    # The zero-syscall ledger across the whole sweep.
    for op in ("write", "fsync", "truncate"):
        report.add("io-calls-delta", op, IO_CALLS[op] - io_before[op])
    report.emit()
    return report


def _filled_directory(directory, n_ops: int, checkpoint_threshold: int):
    """A crashed database directory with ``n_ops`` logged mutations."""
    catalog = Catalog()
    manager = DurabilityManager(
        directory, checkpoint_threshold=checkpoint_threshold
    )
    manager.attach(catalog)
    rows = list(range(64))
    for i in range(n_ops):
        catalog.register(
            Table(
                f"t{i % 8}",
                [
                    Column("a", SqlType.INT, rows),
                    Column("b", SqlType.FLOAT, [r / 3.0 for r in rows]),
                ],
            ),
            replace=True,
        )
    manager.abandon()  # crash


def run_recovery_report(tmp_base, scale: str) -> FigureReport:
    report = FigureReport(
        "durability_recovery", "Recovery time vs log shape", unit="ms",
    )
    scenarios = [
        ("replay-100", 100, 1 << 30),   # no checkpoint: pure replay
        ("replay-500", 500, 1 << 30),
        ("ckpt+tail", 500, 64 << 10),   # checkpoints keep the tail short
    ]
    for label, n_ops, threshold in scenarios:
        directory = tmp_base / label
        _filled_directory(directory, n_ops, threshold)

        def recover():
            catalog = Catalog()
            manager = DurabilityManager(
                directory, checkpoint_threshold=threshold
            )
            rep = manager.attach(catalog)
            manager.abandon()  # leave the directory crashed for re-runs
            return rep

        wall, rep = time_call(recover, repeats=3)
        report.add("recovery-ms", label, wall * 1000)
        report.add("replayed", label, rep.records_replayed)
        report.add("ckpt-tables", label, rep.tables_restored)
    report.emit()
    return report


@pytest.mark.benchmark(group="durability")
def test_wal_disabled_overhead_within_budget(benchmark, bench_scale):
    report = benchmark.pedantic(
        lambda: run_overhead_report(bench_scale), rounds=1, iterations=1
    )
    for query_id in sorted(ALL_SQL):
        pct = report.value("overhead-pct", query_id)
        assert pct is not None
        assert pct < OVERHEAD_BUDGET * 100, (
            f"{query_id}: structural durability overhead {pct:.3f}% "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget"
        )
    # Zero-syscall gate: the whole disabled sweep performed no
    # durability I/O whatsoever.
    for op in ("write", "fsync", "truncate"):
        assert report.value("io-calls-delta", op) == 0, (
            f"disabled path performed durability {op} syscalls"
        )


@pytest.mark.benchmark(group="durability")
def test_recovery_time_report(benchmark, bench_scale, tmp_path):
    report = benchmark.pedantic(
        lambda: run_recovery_report(tmp_path, bench_scale),
        rounds=1, iterations=1,
    )
    # 500 ops + the writer's generation record (+ one gen record per
    # prior timing repeat — each recovery appends its own).
    assert report.value("replayed", "replay-500") >= 501
    # Checkpointing must keep recovery cheaper than full replay.
    assert report.value("recovery-ms", "ckpt+tail") < report.value(
        "recovery-ms", "replay-500"
    )


if __name__ == "__main__":
    import os
    import tempfile
    from pathlib import Path

    scale = os.environ.get("REPRO_BENCH_SCALE", "small")
    run_overhead_report(scale)
    with tempfile.TemporaryDirectory() as tmp:
        run_recovery_report(Path(tmp), scale)
