"""Columnar data plane: kernel speedup, morsel scaling, shipped bytes.

Four measurements, one JSON artifact (``benchmarks/results/BENCH_morsel.json``):

1. **Serial kernel speedup** — classic vector executor vs the columnar
   plane at one thread.  The win comes from batch kernels crossing the
   engine<->UDF boundary once per column instead of four times per value;
   the acceptance gate (>=2x) is asserted on the *scan-heavy, cheap-body*
   queries where boundary overhead dominates (labelled ``scan_*`` below).
   Official UDFBench queries whose bodies are regex/JSON-bound (Q1, Q5)
   are reported alongside for honesty — their UDF bodies put a hard
   ceiling on any data-plane speedup.
2. **Morsel thread scaling** — 1->8 threads.  The GIL bounds UDF-side
   parallelism (the paper reports ~45% at 12 threads), so the gate is the
   Figure-6g band: more threads must never cost more than 1.5x the
   single-thread time.
3. **Shipped bytes** — one 4096-row scalar batch through the process
   pool with and without buffer transport; gate: >=5x fewer bytes.
4. **Disabled overhead** — the columnar plane attached but disabled must
   cost <3% on the classic path (ratio of best-of-interleaved-rounds
   times, the additive-noise-robust estimator, so the gate holds on
   noisy runners).
"""

import json
import os
from pathlib import Path

import pytest

from repro.bench import FigureReport, time_call
from repro.engines import MiniDbAdapter
from repro.resilience.workers import WorkerPool
from repro.udf import scalar_udf
from repro.workloads import udfbench

RESULTS_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_RESULTS", Path(__file__).resolve().parent / "results"
    )
)

THREADS = [1, 2, 4, 8]


@scalar_udf
def venue_tag(s: str) -> str:
    return s.lower()


@scalar_udf
def pub_bump(x: int) -> int:
    return x + 1


#: Cheap-body scan queries: boundary overhead dominates, so these carry
#: the >=2x kernel gate.
SCAN_QUERIES = {
    "scan_text": "SELECT venue_tag(venue) FROM pubs",
    "scan_int": "SELECT pub_bump(pubid) FROM pubs",
}

#: Official UDFBench queries reported for context (bodies are the floor).
OFFICIAL = ["Q1", "Q5"]


def make_adapter(scale, *, columnar, threads=1, attach_disabled=False):
    adapter = MiniDbAdapter(
        columnar=columnar, morsel_threads=threads
    )
    if attach_disabled:
        adapter.enable_columnar(enabled=False)
    udfbench.setup(adapter, scale, seed=11)
    adapter.register_udf(venue_tag)
    adapter.register_udf(pub_bump)
    return adapter


def timed(adapter, sql, repeats=3):
    adapter.execute_sql(sql)  # warm
    elapsed, _ = time_call(lambda: adapter.execute_sql(sql), repeats=repeats)
    return elapsed


def measure_bytes():
    """Shipped bytes for one 4096-row scalar batch, both transports."""
    raw = [list(range(4096))]
    out = {}
    for label, buffered in (("pickle", False), ("buffers", True)):
        pool = WorkerPool(pool_size=1, buffer_transport=buffered)
        try:
            pool.run_batch(
                pub_bump.__udf__, "scalar", (raw, 4096), size=4096,
                fallback=lambda: [v + 1 for v in raw[0]],
            )
            batch = pool.last_batch_bytes
            out[label] = batch["sent"] + batch["received"]
        finally:
            pool.shutdown()
    out["reduction_x"] = out["pickle"] / max(out["buffers"], 1)
    return out


def measure_disabled_overhead(scale, sql, rounds=7, batch=5):
    """Classic-vs-attached-but-disabled ratio of best-of-all-rounds times.

    Same-instance A/B: one adapter alternates between no policy and an
    attached-but-disabled policy, toggled *outside* the timed region.
    Two separate adapter instances running byte-identical code differ
    by several percent from memory layout alone, so a cross-instance
    ratio can never hold a 3% gate; on one instance the only variable
    left is the disabled-policy dispatch itself.  Each sample times
    ``batch`` consecutive executions, the global minimum over
    interleaved rounds is kept per side (noise is strictly additive),
    and GC is paused so a collection landing in one side's sample
    doesn't read as overhead.
    """
    import gc

    adapter = make_adapter(scale, columnar=False)
    try:
        # Structural half of the gate: a disabled policy must select the
        # classic executor, not a sharding executor with an
        # enabled=False check inside the hot loop.
        plain_executor = type(adapter.database._make_executor())
        adapter.enable_columnar(enabled=False)
        assert type(adapter.database._make_executor()) is plain_executor
        adapter.disable_columnar()

        def sample():
            elapsed, _ = time_call(
                lambda: [adapter.execute_sql(sql) for _ in range(batch)],
                repeats=1,
            )
            return elapsed

        timed(adapter, sql, repeats=1)
        best_plain = float("inf")
        best_disabled = float("inf")
        gc_was_enabled = gc.isenabled()
        gc.collect()
        gc.disable()
        try:
            for _ in range(rounds):
                adapter.disable_columnar()
                best_plain = min(best_plain, sample())
                adapter.enable_columnar(enabled=False)
                best_disabled = min(best_disabled, sample())
        finally:
            if gc_was_enabled:
                gc.enable()
        return best_disabled / best_plain
    finally:
        adapter.close()


def run_figure(scale: str) -> dict:
    report = FigureReport("morsel", "columnar/morsel data plane")
    queries = dict(SCAN_QUERIES)
    queries.update({name: udfbench.QUERIES[name] for name in OFFICIAL})

    classic = make_adapter(scale, columnar=False)
    columnar = make_adapter(scale, columnar=True, threads=1)
    speedups = {}
    try:
        for name, sql in queries.items():
            t_classic = timed(classic, sql)
            t_columnar = timed(columnar, sql)
            report.add("classic", name, t_classic)
            report.add("columnar", name, t_columnar)
            speedups[name] = t_classic / t_columnar
    finally:
        classic.close()
        columnar.close()

    # Thread scaling runs over a dedicated wide scan (~15 morsels at the
    # default morsel size) so each sample is milliseconds, not the
    # sub-millisecond tiny-scale scans where pool jitter swamps the
    # 1.5x band the gate asserts.
    from repro.storage import Table
    from repro.types import SqlType

    scale_rows = Table.from_rows(
        "scan_wide", [("x", SqlType.INT)], [(i,) for i in range(60_000)]
    )
    scaling = {}
    for threads in THREADS:
        adapter = make_adapter(scale, columnar=True, threads=threads)
        adapter.register_table(scale_rows)
        try:
            elapsed = timed(
                adapter, "SELECT pub_bump(x) FROM scan_wide", repeats=5
            )
            report.add("scaling", f"{threads}t", elapsed)
            scaling[str(threads)] = elapsed
        finally:
            adapter.close()

    bytes_shipped = measure_bytes()
    overhead = measure_disabled_overhead(scale, udfbench.QUERIES["Q1"])
    report.add("overhead", "disabled", overhead)
    report.emit()

    payload = {
        "figure": "morsel",
        "scale": scale,
        "speedup_vs_classic": speedups,
        "scan_gate_queries": sorted(SCAN_QUERIES),
        "thread_scaling_s": scaling,
        "boundary_bytes": bytes_shipped,
        "disabled_overhead_ratio": overhead,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_morsel.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return payload


@pytest.mark.benchmark(group="morsel")
def test_morsel_data_plane(benchmark, bench_scale):
    payload = benchmark.pedantic(
        lambda: run_figure(bench_scale), rounds=1, iterations=1
    )
    # Gate 1: >=2x on the scan-heavy, cheap-body queries.
    for name in SCAN_QUERIES:
        assert payload["speedup_vs_classic"][name] >= 2.0, (
            f"{name}: kernel speedup below the 2x gate"
        )
    # Gate 2: Figure-6g band — threads never cost more than 1.5x serial.
    scaling = payload["thread_scaling_s"]
    for threads in THREADS[1:]:
        assert scaling[str(threads)] < scaling["1"] * 1.5
    # Gate 3: >=5x fewer shipped bytes per UDF batch.
    assert payload["boundary_bytes"]["reduction_x"] >= 5.0
    # Gate 4: attached-but-disabled plane costs <3% (best-of-rounds).
    assert payload["disabled_overhead_ratio"] < 1.03
