#!/usr/bin/env python3
"""Fail if any process-isolated UDF worker outlived the test suite.

Workers rename themselves (``/proc/self/comm``) to the marker defined
in :mod:`repro.resilience.workers`, so a post-suite scan of the process
table finds any worker whose pool failed to tear it down — the CI
``worker-isolation`` job runs this after pytest exits.  Exits 0 when
the table is clean (or on platforms without ``/proc``), 1 otherwise.
"""

from __future__ import annotations

import os
import sys

#: Must match repro.resilience.workers.WORKER_COMM.  Hardcoded so the
#: scan never has to import (and thereby re-initialize) the package it
#: is auditing.
WORKER_COMM = "repro-udf-wkr"


def find_orphans() -> list:
    orphans = []
    for pid in os.listdir("/proc"):
        if not pid.isdigit():
            continue
        try:
            with open(f"/proc/{pid}/comm") as fh:
                comm = fh.read().strip()
        except OSError:
            continue  # raced a process exit, or not ours to read
        if comm == WORKER_COMM:
            orphans.append(int(pid))
    return orphans


def main() -> int:
    if not os.path.isdir("/proc"):
        print("check_worker_orphans: no /proc, skipping scan")
        return 0
    orphans = find_orphans()
    if not orphans:
        print("check_worker_orphans: OK — no orphaned UDF workers")
        return 0
    for pid in orphans:
        try:
            with open(f"/proc/{pid}/cmdline", "rb") as fh:
                cmdline = fh.read().replace(b"\0", b" ").decode(
                    "utf-8", errors="replace"
                ).strip()
        except OSError:
            cmdline = "<gone>"
        print(f"orphaned worker pid={pid}: {cmdline}", file=sys.stderr)
    print(
        f"check_worker_orphans: FAIL — {len(orphans)} orphaned UDF "
        "worker process(es) survived the suite",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
