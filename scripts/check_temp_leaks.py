#!/usr/bin/env python3
"""Fail if any atomic-write temp file survived the test suite.

Every atomic installer in the repo (CSV saves, Chrome trace exports,
durability checkpoints, node-meta fencing records) stages through a
same-directory ``.<name>.*.tmp`` file that is either renamed into place
or unlinked, and replicated checkpoint images are staged on standbys as
``.repl-ckpt.*.spool`` files swept on the next recovery.  A staging
file that outlives the suite means an installer leaked on an error path
the tests exercised — the CI ``crash-recovery`` and
``replication-chaos`` jobs run this after pytest exits.

Scans the given directories (default: the repo checkout and pytest's
base temp directory if passed).  Deliberately crashed durability
directories are exempt only until their next recovery, which sweeps
them — so a post-suite scan must still come up clean.  Exits 0 when no
temp files remain, 1 otherwise.
"""

from __future__ import annotations

import os
import sys


def find_temp_files(roots) -> list:
    leaks = []
    for root in roots:
        if not os.path.isdir(root):
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            # Skip VCS internals; nothing of ours stages there.
            dirnames[:] = [d for d in dirnames if d != ".git"]
            for name in filenames:
                if name.endswith((".tmp", ".spool")) and name.startswith("."):
                    leaks.append(os.path.join(dirpath, name))
    return leaks


def main(argv) -> int:
    roots = argv[1:] or ["."]
    leaks = find_temp_files(roots)
    if not leaks:
        print(
            f"check_temp_leaks: OK — no leaked atomic-write temp files "
            f"under {', '.join(roots)}"
        )
        return 0
    for path in leaks:
        print(f"leaked temp file: {path}", file=sys.stderr)
    print(
        f"check_temp_leaks: FAIL — {len(leaks)} atomic-write temp "
        f"file(s) survived the suite",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
